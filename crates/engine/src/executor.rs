//! The work-stealing campaign executor.
//!
//! Workers pull case indices from a shared atomic cursor (work stealing by
//! construction: a worker stuck on a slow mixed-signal simulation simply
//! stops claiming work while the others drain the queue). Each case gets a
//! bounded retry budget with exponential backoff, an optional wall-clock
//! timeout, and panic isolation — one diverging solver no longer kills a
//! million-case campaign. Completed cases stream to the results
//! [`journal`](crate::journal) as they finish, so a run can be killed at
//! any instant and resumed.

use crate::journal::{
    self, Journal, JournalEntry, JournalError, JournalMeta, QuarantinedCase, SkippedCase,
};
use crate::shard::Shard;
use crate::stats::{EngineStats, Stage, StatsSnapshot};
use crate::BoxError;
use amsfi_core::{
    classify, injection_stops, CampaignResult, CaseOutcome, CaseResult, ClassifySpec, FaultCase,
    OnlineClassifier, SimFailure,
};
use amsfi_telemetry::{Event, GuardKind, KernelMetrics, Telemetry};
use amsfi_waves::{
    CancelToken, Checkpoint, ForkableSim, SimBudget, SimObserver, Time, Trace, LANES,
};
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// What the engine does when a case exhausts its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Stop claiming new work and return the first error. Cases already
    /// journaled are kept, so a fail-fast run is still resumable.
    FailFast,
    /// Record the case as skipped (journal + report) and keep going. This
    /// is the default: large campaigns should survive individual diverging
    /// simulations.
    #[default]
    SkipAndRecord,
}

/// Tuning knobs for one engine run. All fields have workable defaults;
/// use the `with_*` builders to override.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. `0` (the default) means one per available core.
    pub workers: usize,
    /// Wall-clock budget per attempt. `None` disables the timeout.
    pub timeout: Option<Duration>,
    /// Extra attempts after the first failure.
    pub retries: u32,
    /// Sleep before retry `n` is `backoff * 2^(n-1)`.
    pub backoff: Duration,
    /// See [`ErrorPolicy`].
    pub error_policy: ErrorPolicy,
    /// The slice of the case list this process executes.
    pub shard: Shard,
    /// Where to stream results; `None` keeps them in memory only.
    pub journal: Option<PathBuf>,
    /// Continue an existing journal instead of refusing to overwrite it.
    pub resume: bool,
    /// Emit a progress line to stderr this often; `None` disables.
    pub progress: Option<Duration>,
    /// Run cases by forking from golden-prefix checkpoints instead of
    /// re-simulating the fault-free prefix per case. Requires the campaign
    /// to carry a [`ForkSpec`]; campaigns without one fall back to their
    /// from-scratch runner.
    pub checkpoint: bool,
    /// Per-attempt simulation step cap (see [`SimBudget::with_max_steps`]).
    /// `None` leaves the step count unguarded.
    pub max_steps: Option<u64>,
    /// Adaptive-timestep floor: a kernel proposing a step strictly below
    /// this trips a timestep-collapse guard. `None` leaves it unguarded.
    pub min_dt: Option<Time>,
    /// Quarantine poison cases: a case that exhausts its retry budget is
    /// journaled as quarantined and excluded from every future `--resume`
    /// of that journal, instead of being re-attempted on each resume.
    pub quarantine: bool,
    /// Telemetry sink: structured JSONL events plus kernel metrics. The
    /// default [`Telemetry::disabled`] handle is a near-zero-cost no-op.
    pub telemetry: Telemetry,
    /// Classify each case *while* it simulates and cooperatively abort it
    /// the moment its verdict is sealed (see
    /// [`amsfi_core::OnlineClassifier`]). Off by default: the default path
    /// stays post-hoc and bit-for-bit unchanged.
    pub early_abort: bool,
    /// How long every monitored signal must match the golden run before an
    /// early-abort verdict of no-effect/transient may seal. `None` derives
    /// the settle window from the campaign's recovery threshold.
    pub settle: Option<Time>,
    /// Called with every finished case's journal v2 record line (done,
    /// skipped or quarantined), as it is written. This is how a remote
    /// worker streams results to the distributed coordinator while the
    /// shard is still running; it fires whether or not a local
    /// [`EngineConfig::journal`] is configured.
    pub record_sink: Option<RecordSink>,
    /// Case indices to treat as already completed and never claim, on top
    /// of whatever a resumed journal contains. A re-leased shard carries
    /// the indices its dead predecessor already streamed to the
    /// coordinator, so a partially-completed shard resumes instead of
    /// re-running (and double-reporting) finished cases.
    pub completed: Vec<usize>,
    /// Run cases bit-parallel: workers claim *groups* of up to
    /// [`amsfi_waves::LANES`] cases and simulate them lock-step against one
    /// golden machine (see [`BatchSpec`]). Per-lane verdicts stay
    /// byte-identical to scalar runs; a lane that fails in isolation falls
    /// back to the scalar path for that case alone. Campaigns without a
    /// [`Campaign::batch`] spec fall back to the scalar path entirely.
    pub batch: bool,
    /// With [`EngineConfig::batch`], run each group through the campaign's
    /// *word-parallel* spec ([`Campaign::word`]): one event wheel evaluating
    /// all lanes of a group as plane arithmetic, instead of 64 cloned
    /// scalar machines stepped in lock step. Groups shrink to
    /// [`amsfi_waves::LANES`]` - 1` cases because one in-word lane carries
    /// the golden machine. Campaigns without a word spec fall back to the
    /// lane-cloned batch spec (and failing that, the scalar path). Ignored
    /// without `batch`.
    pub word: bool,
}

type RecordFn = dyn Fn(usize, &str) + Send + Sync;

/// A callback receiving `(case index, journal v2 record line)` for every
/// finished case; see [`EngineConfig::record_sink`].
#[derive(Clone)]
pub struct RecordSink(Arc<RecordFn>);

impl RecordSink {
    /// Wraps a callback.
    pub fn new(f: impl Fn(usize, &str) + Send + Sync + 'static) -> Self {
        RecordSink(Arc::new(f))
    }

    /// Delivers one record line.
    pub fn deliver(&self, index: usize, line: &str) {
        (self.0)(index, line);
    }
}

impl fmt::Debug for RecordSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RecordSink(..)")
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            timeout: None,
            retries: 0,
            backoff: Duration::from_millis(50),
            error_policy: ErrorPolicy::default(),
            shard: Shard::FULL,
            journal: None,
            resume: false,
            progress: None,
            checkpoint: false,
            max_steps: None,
            min_dt: None,
            quarantine: false,
            telemetry: Telemetry::disabled(),
            early_abort: false,
            settle: None,
            record_sink: None,
            completed: Vec::new(),
            batch: false,
            word: false,
        }
    }
}

impl EngineConfig {
    /// Sets the worker-thread count (`0` = one per core).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-attempt wall-clock timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the retry budget (extra attempts after the first failure).
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the base backoff between attempts.
    #[must_use]
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Sets the [`ErrorPolicy`].
    #[must_use]
    pub fn with_error_policy(mut self, policy: ErrorPolicy) -> Self {
        self.error_policy = policy;
        self
    }

    /// Restricts this run to one [`Shard`] of the case list.
    #[must_use]
    pub fn with_shard(mut self, shard: Shard) -> Self {
        self.shard = shard;
        self
    }

    /// Streams results to (and resumes from) a journal file.
    #[must_use]
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Allows continuing an existing journal.
    #[must_use]
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Enables periodic progress lines on stderr.
    #[must_use]
    pub fn with_progress(mut self, interval: Duration) -> Self {
        self.progress = Some(interval);
        self
    }

    /// Enables golden-prefix checkpoint & fork execution.
    #[must_use]
    pub fn with_checkpoint(mut self, checkpoint: bool) -> Self {
        self.checkpoint = checkpoint;
        self
    }

    /// Caps the simulation steps each attempt may take.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Floors the adaptive timestep for every attempt.
    #[must_use]
    pub fn with_min_dt(mut self, min_dt: Time) -> Self {
        self.min_dt = Some(min_dt);
        self
    }

    /// Enables poison-case quarantine under [`ErrorPolicy::SkipAndRecord`].
    #[must_use]
    pub fn with_quarantine(mut self, quarantine: bool) -> Self {
        self.quarantine = quarantine;
        self
    }

    /// Routes structured events and kernel metrics through `telemetry`.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables early-verdict streaming classification (see
    /// [`EngineConfig::early_abort`]).
    #[must_use]
    pub fn with_early_abort(mut self, early_abort: bool) -> Self {
        self.early_abort = early_abort;
        self
    }

    /// Overrides the early-abort settle window (see
    /// [`EngineConfig::settle`]).
    #[must_use]
    pub fn with_settle(mut self, settle: Time) -> Self {
        self.settle = Some(settle);
        self
    }

    /// Streams every finished case's journal record line to `sink` (see
    /// [`EngineConfig::record_sink`]).
    #[must_use]
    pub fn with_record_sink(mut self, sink: RecordSink) -> Self {
        self.record_sink = Some(sink);
        self
    }

    /// Marks `indices` as already completed elsewhere (see
    /// [`EngineConfig::completed`]).
    #[must_use]
    pub fn with_completed(mut self, indices: Vec<usize>) -> Self {
        self.completed = indices;
        self
    }

    /// Enables bit-parallel group execution (see [`EngineConfig::batch`]).
    #[must_use]
    pub fn with_batch(mut self, batch: bool) -> Self {
        self.batch = batch;
        self
    }

    /// Runs batch groups through the word-parallel kernel (see
    /// [`EngineConfig::word`]).
    #[must_use]
    pub fn with_word(mut self, word: bool) -> Self {
        self.word = word;
        self
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }
}

/// Per-attempt context handed to a campaign's run closure.
///
/// Tells the closure which case to inject (`None` = golden run) and lets it
/// attribute wall-clock time to pipeline stages via [`CaseCtx::stage`]. The
/// classify stage is timed by the engine itself.
#[derive(Debug)]
pub struct CaseCtx {
    index: Option<usize>,
    attempt: u32,
    stats: Option<Arc<EngineStats>>,
    budget: SimBudget,
    telemetry: Telemetry,
    timer: Mutex<(Instant, Option<Stage>)>,
    observer: Mutex<Option<SimObserver>>,
}

impl CaseCtx {
    fn attached(
        index: Option<usize>,
        attempt: u32,
        stats: Arc<EngineStats>,
        budget: SimBudget,
        telemetry: Telemetry,
        observer: Option<SimObserver>,
    ) -> Self {
        CaseCtx {
            index,
            attempt,
            stats: Some(stats),
            budget,
            telemetry,
            timer: Mutex::new((Instant::now(), None)),
            observer: Mutex::new(observer),
        }
    }

    /// A context with no stats sink, for driving an engine-style runner
    /// through the legacy [`amsfi_core::run_campaign_parallel`] path (the
    /// old-vs-new comparisons in `crates/bench`).
    pub fn detached(index: Option<usize>) -> Self {
        CaseCtx {
            index,
            attempt: 0,
            stats: None,
            budget: SimBudget::unlimited(),
            telemetry: Telemetry::disabled(),
            timer: Mutex::new((Instant::now(), None)),
            observer: Mutex::new(None),
        }
    }

    /// Takes the attempt's streaming trace observer, armed by the engine
    /// under [`EngineConfig::with_early_abort`] (`None` otherwise, and on
    /// every call after the first). Runners hand it to their kernel —
    /// [`Campaign::forked`] does this automatically via
    /// [`ForkableSim::install_observer`] right after installing the
    /// budget — so the engine's online classifier sees the trace grow and
    /// can cancel the attempt's budget token the moment a verdict seals.
    pub fn take_observer(&self) -> Option<SimObserver> {
        self.observer.lock().expect("observer slot poisoned").take()
    }

    /// Which case to inject; `None` asks for the golden (fault-free) run.
    pub fn index(&self) -> Option<usize> {
        self.index
    }

    /// Zero-based attempt number (`> 0` on retries).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The attempt's simulation budget (step cap, timestep floor and
    /// deadline token from the engine config). Runners install a clone on
    /// their kernel — [`Campaign::forked`] does this automatically via
    /// [`ForkableSim::install_budget`] — so guard trips surface as
    /// structured [`SimFailure`] verdicts instead of hung attempts.
    pub fn budget(&self) -> &SimBudget {
        &self.budget
    }

    /// Marks the start of `stage`, closing (and crediting) the previous one.
    ///
    /// Calling this is optional — a runner that never calls it simply
    /// contributes nothing to the stage breakdown.
    pub fn stage(&self, stage: Stage) {
        let mut timer = self.timer.lock().expect("stage timer poisoned");
        let now = Instant::now();
        if let (Some(stats), Some(open)) = (&self.stats, timer.1) {
            stats.record_stage(open, now - timer.0);
            self.emit_stage(open, now - timer.0);
        }
        *timer = (now, Some(stage));
    }

    fn finish(&self) {
        let mut timer = self.timer.lock().expect("stage timer poisoned");
        if let (Some(stats), Some(open)) = (&self.stats, timer.1.take()) {
            stats.record_stage(open, timer.0.elapsed());
            self.emit_stage(open, timer.0.elapsed());
        }
    }

    fn emit_stage(&self, stage: Stage, elapsed: Duration) {
        self.telemetry.emit_with(|| {
            let scope = if self.index.is_some() {
                "case"
            } else {
                "golden"
            };
            let mut event = Event::new("span", format!("{scope}/{stage}"))
                .with_dur_us(elapsed.as_micros() as u64)
                .with_field("attempt", self.attempt);
            if let Some(index) = self.index {
                event = event.with_case(index);
            }
            event
        });
    }
}

/// Shared simulation callback: produces the trace for `ctx.index()`
/// (golden when `None`).
///
/// `Arc` + `'static` because a timed-out attempt keeps running on its
/// (abandoned) thread and must not borrow from the engine's stack.
pub type CaseRunner = Arc<dyn Fn(&CaseCtx) -> Result<Trace, BoxError> + Send + Sync>;

/// A type-erased simulator checkpoint held by the engine's per-worker
/// caches. Snapshots are `Send` (they move between threads) but not
/// `Sync` — simulator component trait objects are `Send`-only — so the
/// engine deep-clones them instead of sharing references.
pub trait AnySnapshot: Send {
    /// Deep-clones the snapshot.
    fn clone_snapshot(&self) -> Snapshot;
    /// Downcast access for the campaign's fork closure.
    fn as_any(&self) -> &dyn Any;
}

impl<T: Any + Clone + Send> AnySnapshot for T {
    fn clone_snapshot(&self) -> Snapshot {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// An owned, type-erased checkpoint (see [`AnySnapshot`]).
pub type Snapshot = Box<dyn AnySnapshot>;

/// Emits `(time, snapshot)` pairs during the checkpointed golden run.
pub type SnapshotSink<'a> = dyn FnMut(Time, Snapshot) + 'a;

/// How a campaign supports golden-prefix checkpoint & fork execution
/// (enabled per run with [`EngineConfig::with_checkpoint`]).
///
/// Most campaigns should not build this by hand: [`Campaign::forked`]
/// derives both the from-scratch runner and this spec from one pair of
/// build/inject closures, which is what guarantees forked and from-scratch
/// traces are byte-identical (they share the `advance_to` stop sequence,
/// so adaptive-step solvers take identical step grids).
#[derive(Clone)]
pub struct ForkSpec {
    /// The distinct injection instants the golden run snapshots at,
    /// ascending (see [`amsfi_core::injection_stops`]).
    pub stops: Vec<Time>,
    /// The simulation horizon every run advances to.
    pub t_end: Time,
    /// Runs the golden simulation, handing a snapshot to the sink at every
    /// stop, and returns the golden trace.
    #[allow(clippy::type_complexity)]
    pub golden: Arc<
        dyn for<'a> Fn(&CaseCtx, &mut SnapshotSink<'a>) -> Result<Trace, BoxError> + Send + Sync,
    >,
    /// Forks one faulty run from a snapshot taken at the case's injection
    /// instant and returns its full-length trace.
    #[allow(clippy::type_complexity)]
    pub fork: Arc<dyn Fn(&CaseCtx, &Snapshot) -> Result<Trace, BoxError> + Send + Sync>,
}

impl fmt::Debug for ForkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ForkSpec")
            .field("stops", &self.stops.len())
            .field("t_end", &self.t_end)
            .finish_non_exhaustive()
    }
}

/// One case's outcome inside a bit-parallel group run (see [`BatchSpec`]).
#[derive(Debug)]
pub enum BatchCaseOutcome {
    /// The lane produced a full-horizon trace, byte-identical to what a
    /// scalar run of the same case would record. `sealed_at` is the
    /// reconvergence-seal instant when the lane was retired early because
    /// its machine state rejoined the golden machine's.
    Done {
        /// The lane's full-length trace.
        trace: Trace,
        /// Reconvergence-seal instant, `None` if the lane ran to the end.
        sealed_at: Option<Time>,
    },
    /// The lane failed in isolation (guard trip, cooperative cancellation,
    /// injection error). The engine consults the lane's online classifier
    /// and otherwise falls back to the scalar path for this case alone.
    Error(String),
}

/// Installs per-lane plumbing on a freshly cloned lane simulator: called
/// with the lane's position in the group, returns the [`SimBudget`] (guards,
/// cancellation token, metrics) and optional [`SimObserver`] (streaming
/// classification) for that lane.
pub type LaneHooks<'a> = &'a mut dyn FnMut(usize) -> (SimBudget, Option<SimObserver>);

/// How a campaign supports bit-parallel group execution (enabled per run
/// with [`EngineConfig::with_batch`]).
///
/// `run(ctx, group, hooks)` simulates all cases in `group` (at most
/// [`amsfi_waves::LANES`] indices into [`Campaign::cases`]) lock-step
/// against one golden machine and returns one [`BatchCaseOutcome`] per
/// index, in order. Campaigns should not build this by hand:
/// [`Campaign::forked_batch`](crate::campaigns) derives it from the same
/// build/inject closures as the scalar paths, which is what guarantees
/// batch and scalar traces are byte-identical.
#[derive(Clone)]
pub struct BatchSpec {
    /// Runs one case group lock-step; see [`BatchSpec`].
    #[allow(clippy::type_complexity)]
    pub run: Arc<
        dyn Fn(&CaseCtx, &[usize], LaneHooks<'_>) -> Result<Vec<BatchCaseOutcome>, BoxError>
            + Send
            + Sync,
    >,
}

impl fmt::Debug for BatchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BatchSpec(..)")
    }
}

/// A runnable campaign: the fault list, how to classify, and how to
/// produce a trace for one case.
#[derive(Clone)]
pub struct Campaign {
    /// Name, recorded in the journal header.
    pub name: String,
    /// How traces are compared and verdicts drawn.
    pub spec: ClassifySpec,
    /// The full (unsharded) case list.
    pub cases: Vec<FaultCase>,
    /// Produces the trace for one case; see [`CaseRunner`].
    pub runner: CaseRunner,
    /// Checkpoint & fork support; `None` means `--checkpoint` falls back
    /// to the from-scratch runner.
    pub fork: Option<ForkSpec>,
    /// Bit-parallel group support; `None` means `--batch` falls back to
    /// the scalar runner.
    pub batch: Option<BatchSpec>,
    /// Word-parallel group support (one event wheel, plane-valued
    /// signals); `None` means `--batch --word` falls back to the
    /// lane-cloned [`Campaign::batch`] spec. Same contract as
    /// [`BatchSpec`], but groups hold at most [`amsfi_waves::LANES`]` - 1`
    /// cases (one in-word lane is the golden machine).
    pub word: Option<BatchSpec>,
}

impl fmt::Debug for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Campaign")
            .field("name", &self.name)
            .field("cases", &self.cases.len())
            .finish_non_exhaustive()
    }
}

impl Campaign {
    /// The journal-header identity of this campaign.
    pub fn meta(&self) -> JournalMeta {
        JournalMeta::of(&self.name, &self.cases)
    }

    /// Builds a campaign whose from-scratch runner and [`ForkSpec`] are
    /// derived from one pair of closures, so `--checkpoint` runs are
    /// byte-identical to plain runs by construction.
    ///
    /// * `build` constructs the fault-free simulator with monitoring
    ///   already attached.
    /// * `inject(sim, i)` arms fault case `i` on a simulator positioned
    ///   exactly at that case's injection instant.
    ///
    /// Both execution paths advance the simulator through every distinct
    /// injection stop up to the case's own injection time (the golden run
    /// through all of them), then to `t_end`. Sharing the stop sequence is
    /// what keeps adaptive-step analog/mixed kernels on identical step
    /// grids in both paths; see [`amsfi_waves::ForkableSim`].
    pub fn forked<S, B, I>(
        name: impl Into<String>,
        spec: ClassifySpec,
        cases: Vec<FaultCase>,
        t_end: Time,
        build: B,
        inject: I,
    ) -> Campaign
    where
        S: ForkableSim + 'static,
        B: Fn(&CaseCtx) -> Result<S, BoxError> + Send + Sync + 'static,
        I: Fn(&mut S, usize) -> Result<(), BoxError> + Send + Sync + 'static,
    {
        fn sim_err<E: std::error::Error + Send + Sync + 'static>(e: E) -> BoxError {
            Box::new(e)
        }
        let stops = injection_stops(&cases, t_end);
        let case_stops: Arc<Vec<Time>> =
            Arc::new(cases.iter().map(|c| c.injected_at.min(t_end)).collect());
        let build = Arc::new(build);
        let inject = Arc::new(inject);
        let stops_shared = Arc::new(stops.clone());

        let runner: CaseRunner = {
            let (build, inject) = (Arc::clone(&build), Arc::clone(&inject));
            let (stops, case_stops) = (Arc::clone(&stops_shared), Arc::clone(&case_stops));
            Arc::new(move |ctx: &CaseCtx| {
                let mut sim = build(ctx)?;
                sim.install_budget(ctx.budget().clone());
                if let Some(observer) = ctx.take_observer() {
                    sim.install_observer(observer);
                }
                ctx.stage(Stage::Simulate);
                match ctx.index() {
                    None => {
                        for &stop in stops.iter() {
                            sim.advance_to(stop).map_err(sim_err)?;
                        }
                    }
                    Some(i) => {
                        let at = case_stops[i];
                        for &stop in stops.iter().take_while(|&&s| s <= at) {
                            sim.advance_to(stop).map_err(sim_err)?;
                        }
                        inject(&mut sim, i)?;
                    }
                }
                sim.advance_to(t_end).map_err(sim_err)?;
                Ok(sim.snapshot_trace())
            })
        };

        let golden = {
            let build = Arc::clone(&build);
            let stops = Arc::clone(&stops_shared);
            Arc::new(
                move |ctx: &CaseCtx, sink: &mut SnapshotSink<'_>| -> Result<Trace, BoxError> {
                    let mut sim = build(ctx)?;
                    sim.install_budget(ctx.budget().clone());
                    ctx.stage(Stage::Simulate);
                    for &stop in stops.iter() {
                        sim.advance_to(stop).map_err(sim_err)?;
                        sink(stop, Box::new(Checkpoint::capture(&sim)));
                    }
                    sim.advance_to(t_end).map_err(sim_err)?;
                    Ok(sim.snapshot_trace())
                },
            )
        };

        let fork = {
            let inject = Arc::clone(&inject);
            Arc::new(
                move |ctx: &CaseCtx, snap: &Snapshot| -> Result<Trace, BoxError> {
                    let cp = snap
                        .as_any()
                        .downcast_ref::<Checkpoint<S>>()
                        .ok_or_else(|| {
                            Box::new(SnapshotRestoreError(
                                "snapshot does not hold this campaign's simulator type".to_owned(),
                            )) as BoxError
                        })?;
                    let i = ctx
                        .index()
                        .ok_or("the golden run is never forked from a snapshot")?;
                    ctx.stage(Stage::Simulate);
                    let mut sim = cp.fork();
                    sim.install_budget(ctx.budget().clone());
                    if let Some(observer) = ctx.take_observer() {
                        sim.install_observer(observer);
                    }
                    inject(&mut sim, i)?;
                    sim.advance_to(t_end).map_err(sim_err)?;
                    Ok(sim.snapshot_trace())
                },
            )
        };

        Campaign {
            name: name.into(),
            spec,
            cases,
            runner,
            fork: Some(ForkSpec {
                stops,
                t_end,
                golden,
                fork,
            }),
            batch: None,
            word: None,
        }
    }
}

/// A checkpoint snapshot could not be restored for this campaign (wrong
/// simulator type or structural drift). The engine treats this as
/// non-retryable — restoring the same snapshot again is deterministic —
/// and degrades gracefully by re-running the case from scratch.
#[derive(Debug, Clone)]
pub struct SnapshotRestoreError(pub String);

impl fmt::Display for SnapshotRestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot restore failed: {}", self.0)
    }
}

impl std::error::Error for SnapshotRestoreError {}

/// Everything an engine run produces.
#[derive(Debug)]
pub struct EngineReport {
    /// Classified cases (resumed + newly executed), in case order, plus
    /// the golden trace. For a sharded run this covers only the cases
    /// present in the journal/shard.
    pub result: CampaignResult,
    /// Cases abandoned under [`ErrorPolicy::SkipAndRecord`].
    pub skipped: Vec<SkippedCase>,
    /// Poison cases quarantined under [`EngineConfig::with_quarantine`]
    /// (this run's and every prior resumed run's).
    pub quarantined: Vec<QuarantinedCase>,
    /// Final counter snapshot (rates, tallies, stage breakdown).
    pub stats: StatsSnapshot,
    /// How many cases were taken from the journal instead of re-run.
    pub resumed: usize,
}

/// Fatal engine errors. Per-case trouble is only fatal under
/// [`ErrorPolicy::FailFast`]; otherwise it lands in
/// [`EngineReport::skipped`].
#[derive(Debug)]
pub enum EngineError {
    /// Journal I/O, syntax or campaign-mismatch failure.
    Journal(JournalError),
    /// The golden (fault-free) run failed; nothing can be classified.
    Golden(String),
    /// A case failed under [`ErrorPolicy::FailFast`].
    Case {
        /// Index of the failing case.
        index: usize,
        /// Its label.
        label: String,
        /// Attempts made (first try + retries).
        attempts: u32,
        /// The last error observed.
        error: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Journal(e) => e.fmt(f),
            EngineError::Golden(e) => write!(f, "golden run failed: {e}"),
            EngineError::Case {
                index,
                label,
                attempts,
                error,
            } => write!(
                f,
                "case {index} ({label}) failed after {attempts} attempt(s): {error}"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for EngineError {
    fn from(e: JournalError) -> Self {
        EngineError::Journal(e)
    }
}

/// Everything one attempt needs to arm an online classifier under
/// [`EngineConfig::with_early_abort`]: the campaign's classification spec,
/// a shared handle on the golden trace (the attempt thread is `'static`,
/// so it cannot borrow the engine's copy) and the case's injection instant.
struct EarlyAbort {
    spec: ClassifySpec,
    golden: Arc<Trace>,
    injected_at: Time,
}

/// How one attempt ended (before retry/policy handling).
enum Attempt {
    Ok(Trace),
    /// The attempt's online classifier sealed the verdict mid-simulation
    /// and cancelled the budget token (`--early-abort`): a final,
    /// *classified* outcome — not retried. `steps` is the attempt's
    /// simulation-step tally at abort, used to estimate the saving.
    Sealed {
        outcome: Box<CaseOutcome>,
        steps: u64,
    },
    Failed(String),
    /// The kernel tripped a [`SimBudget`] guard (or otherwise surfaced a
    /// parseable [`SimFailure`]): a deterministic, *classified* outcome —
    /// not retried, not skipped.
    SimFailed(SimFailure),
    /// A checkpoint snapshot could not be restored; non-retryable, the
    /// case falls back to its from-scratch runner.
    RestoreFailed(String),
    TimedOut,
}

/// The campaign-execution engine. Construct with a config, then call
/// [`Engine::run`] per campaign.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Executes `campaign` (this engine's shard of it) and returns the
    /// streamed, merged report.
    ///
    /// # Errors
    ///
    /// See [`EngineError`].
    pub fn run(&self, campaign: &Campaign) -> Result<EngineReport, EngineError> {
        let cfg = &self.config;
        let total = campaign.cases.len();
        let meta = campaign.meta();

        // Open (or resume) the journal and work out what is left to do.
        let mut entries: BTreeMap<usize, JournalEntry> = BTreeMap::new();
        let journal = match &cfg.journal {
            Some(path) => {
                let (journal, existing) = Journal::open(path, &meta, cfg.resume)?;
                entries = existing;
                Some(journal)
            }
            None => None,
        };
        let resumed = entries
            .values()
            .filter(|e| matches!(e, JournalEntry::Done(_)))
            .count();
        let pending = {
            let mut pending = journal::pending(&entries, total, cfg.shard);
            if !cfg.completed.is_empty() {
                let done: std::collections::BTreeSet<usize> =
                    cfg.completed.iter().copied().collect();
                pending.retain(|i| !done.contains(i));
            }
            pending
        };

        // Resumed completions and previously-quarantined cases both count
        // exactly once in the summary denominator.
        let prior_quarantined = entries
            .values()
            .filter(|e| matches!(e, JournalEntry::Quarantined(_)))
            .count();

        let tele = &cfg.telemetry;
        let metrics = tele
            .metrics()
            .cloned()
            .unwrap_or_else(|| Arc::new(KernelMetrics::new()));
        let stats = Arc::new(EngineStats::with_metrics(pending.len(), metrics));
        stats.seed_resumed(resumed + prior_quarantined, prior_quarantined);

        tele.emit_with(|| {
            // Fingerprint and shard identify this run's slice of the
            // campaign across processes: a distributed report joins
            // worker event streams on exactly these fields.
            Event::new("campaign", &campaign.name)
                .with_field("cases", pending.len())
                .with_field("resumed", resumed)
                .with_field("prior_quarantined", prior_quarantined)
                .with_field("workers", cfg.effective_workers())
                .with_field("checkpoint", cfg.checkpoint)
                .with_field(
                    "fingerprint",
                    format!("{:016x}", campaign.meta().fingerprint),
                )
                .with_field("shard", cfg.shard.index)
                .with_field("shards", cfg.shard.count)
        });

        let fork_spec = if cfg.checkpoint {
            campaign.fork.as_ref()
        } else {
            None
        };

        // The golden run is mandatory even when everything is resumed —
        // the report's golden trace is not journaled (it can be huge). In
        // checkpoint mode it also fills the snapshot cache, so it runs
        // inline (panic-isolated but without retry/timeout: a failing
        // golden run is fatal under any policy).
        let mut snaps: BTreeMap<Time, Snapshot> = BTreeMap::new();
        let golden_t0 = Instant::now();
        let golden = match fork_spec {
            Some(spec) => {
                let ctx = CaseCtx::attached(
                    None,
                    0,
                    Arc::clone(&stats),
                    self.case_budget(),
                    tele.clone(),
                    None,
                );
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    (spec.golden)(&ctx, &mut |t, snap| {
                        snaps.insert(t, snap);
                    })
                }));
                ctx.finish();
                match outcome {
                    Ok(Ok(trace)) => trace,
                    Ok(Err(e)) => return Err(EngineError::Golden(e.to_string())),
                    Err(payload) => return Err(EngineError::Golden(panic_message(payload))),
                }
            }
            None => match self.attempt_case(&campaign.runner, None, &stats, None).0 {
                Attempt::Ok(trace) => trace,
                Attempt::Failed(e) | Attempt::RestoreFailed(e) => {
                    return Err(EngineError::Golden(e))
                }
                // A guard trip on the fault-free run means the budget (or
                // the model) cannot cover the horizon: fatal, nothing can
                // be classified against it.
                Attempt::SimFailed(f) => return Err(EngineError::Golden(f.to_string())),
                Attempt::TimedOut => return Err(EngineError::Golden("timed out".to_owned())),
                Attempt::Sealed { .. } => {
                    unreachable!("the golden run never arms an online classifier")
                }
            },
        };
        // One shared golden trace for the whole run: the online classifiers
        // on every worker hold `Arc` clones instead of deep copies.
        let golden = Arc::new(golden);
        if let Some(metrics) = tele.metrics() {
            metrics.golden_trace_bytes.add(golden.approx_bytes());
        }
        tele.emit_with(|| {
            Event::new("span", "golden")
                .with_dur_us(golden_t0.elapsed().as_micros() as u64)
                .with_field("snapshots", snaps.len())
                .with_field("checkpoint", fork_spec.is_some())
        });

        let golden_ref = &golden;
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let fatal: Mutex<Option<EngineError>> = Mutex::new(None);
        let fresh: Mutex<Vec<(usize, JournalEntry)>> = Mutex::new(Vec::new());
        let workers = cfg.effective_workers().min(pending.len()).max(1);

        // Bit-parallel mode: workers claim *groups* of cases and run each
        // group lock-step through the campaign's batch spec. Cases are
        // grouped by ascending injection instant so lanes in one group
        // activate off a shared golden prefix.
        let word_spec = if cfg.batch && cfg.word {
            let spec = campaign.word.as_ref();
            if spec.is_none() {
                tele.emit_with(|| {
                    Event::new("batch", "fallback")
                        .with_field("reason", "campaign has no word spec")
                });
            }
            spec
        } else {
            None
        };
        let batch_spec = if cfg.batch {
            let spec = word_spec.or(campaign.batch.as_ref());
            if spec.is_none() {
                tele.emit_with(|| {
                    Event::new("batch", "fallback")
                        .with_field("reason", "campaign has no batch spec")
                });
            }
            spec
        } else {
            None
        };
        // Word groups hold one lane fewer: lane LANES-1 carries the golden
        // machine inside the word.
        let lanes_cap = if word_spec.is_some() {
            LANES - 1
        } else {
            LANES
        };
        let groups: Vec<Vec<usize>> = if batch_spec.is_some() {
            let mut sorted = pending.clone();
            sorted.sort_by_key(|&i| (campaign.cases[i].injected_at, i));
            let per = sorted.len().div_ceil(workers).clamp(1, lanes_cap);
            sorted.chunks(per).map(<[usize]>::to_vec).collect()
        } else {
            Vec::new()
        };
        let groups = &groups;

        // Per-worker checkpoint caches: snapshots are `Send` but not
        // `Sync` (simulator internals hold `Send`-only trait objects), so
        // every worker owns a deep clone of the cache instead of sharing
        // references. The per-stop `Arc<Mutex<..>>` lets the per-case fork
        // runner be `'static` for the timeout machinery.
        let worker_caches: Vec<BTreeMap<Time, Arc<Mutex<Snapshot>>>> = (0..workers)
            .map(|_| {
                snaps
                    .iter()
                    .map(|(t, s)| (*t, Arc::new(Mutex::new(s.clone_snapshot()))))
                    .collect()
            })
            .collect();

        std::thread::scope(|scope| {
            let progress = cfg.progress.map(|interval| {
                let stats = Arc::clone(&stats);
                let stop = &stop;
                scope.spawn(move || {
                    let mut last = Instant::now();
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(25));
                        if last.elapsed() >= interval {
                            let snap = stats.snapshot();
                            eprintln!("{snap}");
                            tele.emit_with(|| {
                                Event::new("progress", "tick")
                                    .with_field("done", snap.done)
                                    .with_field("total", snap.total)
                                    .with_field("quarantined", snap.quarantined)
                                    .with_field("rate_per_s", format!("{:.1}", snap.rate()))
                            });
                            last = Instant::now();
                        }
                    }
                })
            });

            let handles: Vec<_> = worker_caches
                .into_iter()
                .enumerate()
                .map(|(worker_id, cache)| {
                    let stats = Arc::clone(&stats);
                    let (next, stop, fatal, fresh) = (&next, &stop, &fatal, &fresh);
                    let (pending, journal) = (&pending, &journal);
                    scope.spawn(move || {
                        tele.emit_with(|| {
                            // "thread", not "worker": the worker key is
                            // reserved for the fleet-level process name
                            // stamped by distributed trace context.
                            Event::new("worker", "start").with_field("thread", worker_id)
                        });
                        let mut claimed = 0usize;
                        if let Some(spec) = batch_spec {
                            loop {
                                if stop.load(Ordering::Relaxed) {
                                    break;
                                }
                                let slot = next.fetch_add(1, Ordering::Relaxed);
                                let Some(group) = groups.get(slot) else {
                                    break;
                                };
                                claimed += group.len();
                                match self.execute_batch(
                                    campaign,
                                    spec,
                                    group,
                                    golden_ref,
                                    &stats,
                                    journal.as_ref(),
                                ) {
                                    Ok(batch_entries) => fresh
                                        .lock()
                                        .expect("results poisoned")
                                        .extend(batch_entries),
                                    Err(error) => {
                                        stop.store(true, Ordering::Relaxed);
                                        let mut fatal = fatal.lock().expect("fatal slot poisoned");
                                        if fatal.is_none() {
                                            *fatal = Some(error);
                                        }
                                        break;
                                    }
                                }
                            }
                            tele.emit_with(|| {
                                Event::new("worker", "exit")
                                    .with_field("thread", worker_id)
                                    .with_field("claimed", claimed)
                            });
                            return;
                        }
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let slot = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&index) = pending.get(slot) else {
                                break;
                            };
                            claimed += 1;
                            // In checkpoint mode, wrap the fork closure and this
                            // case's snapshot (taken at the largest stop not
                            // after its injection instant) into a runner.
                            let forked = fork_spec.and_then(|spec| {
                                let at = campaign.cases[index].injected_at.min(spec.t_end);
                                let hit = cache.range(..=at).next_back().map(|(t, snap)| {
                                    let snap = Arc::clone(snap);
                                    let fork = Arc::clone(&spec.fork);
                                    let runner: CaseRunner = Arc::new(move |ctx: &CaseCtx| {
                                        // Deep-clone under a short lock so a
                                        // timed-out (abandoned) attempt cannot
                                        // wedge later retries of the same case.
                                        let owned = snap
                                            .lock()
                                            .expect("snapshot poisoned")
                                            .clone_snapshot();
                                        fork(ctx, &owned)
                                    });
                                    (runner, *t)
                                });
                                if let Some(metrics) = tele.metrics() {
                                    if hit.is_some() {
                                        metrics.snapshot_hits.inc();
                                    } else {
                                        metrics.snapshot_misses.inc();
                                    }
                                }
                                hit
                            });
                            let outcome = self.execute_one(
                                campaign,
                                index,
                                golden_ref,
                                &stats,
                                journal.as_ref(),
                                forked,
                            );
                            match outcome {
                                Ok(entry) => {
                                    fresh.lock().expect("results poisoned").push((index, entry));
                                }
                                Err(error) => {
                                    stop.store(true, Ordering::Relaxed);
                                    let mut fatal = fatal.lock().expect("fatal slot poisoned");
                                    if fatal.is_none() {
                                        *fatal = Some(error);
                                    }
                                    break;
                                }
                            }
                        }
                        tele.emit_with(|| {
                            Event::new("worker", "exit")
                                .with_field("thread", worker_id)
                                .with_field("claimed", claimed)
                        });
                    })
                })
                .collect();
            for handle in handles {
                let _ = handle.join();
            }
            stop.store(true, Ordering::Relaxed);
            if let Some(handle) = progress {
                let _ = handle.join();
            }
        });

        // Fold journal I/O tallies into the metrics before any early
        // return, so a fatal run still dumps accurate counters.
        if let Some(journal) = &journal {
            if let Some(metrics) = tele.metrics() {
                metrics.journal_records.add(journal.records_written());
                metrics.journal_bytes.add(journal.bytes_written());
            }
            tele.emit_with(|| {
                Event::new("journal", "summary")
                    .with_field("records", journal.records_written())
                    .with_field("bytes", journal.bytes_written())
            });
        }

        if let Some(error) = fatal.into_inner().expect("fatal slot poisoned") {
            return Err(error);
        }

        // Merge resumed + fresh entries; fresh results win (a resumed skip
        // that was re-attempted is superseded either way).
        for (index, entry) in fresh.into_inner().expect("results poisoned") {
            entries.insert(index, entry);
        }
        let (mut result, skipped, quarantined) = journal::assemble(&entries);
        result.golden = Arc::try_unwrap(golden).unwrap_or_else(|shared| (*shared).clone());
        let stats = stats.snapshot();
        tele.emit_with(|| {
            Event::new("campaign", "end")
                .with_field("done", stats.done)
                .with_field("total", stats.total)
                .with_field("skipped", skipped.len())
                .with_field("quarantined", quarantined.len())
        });
        Ok(EngineReport {
            result,
            skipped,
            quarantined,
            stats,
            resumed,
        })
    }

    /// Writes one finished case's record line to the journal (when
    /// configured) and streams it to the record sink (when configured).
    /// `format` runs only if at least one of the two is present, so runs
    /// with neither pay nothing.
    fn emit_record(
        &self,
        journal: Option<&Journal>,
        index: usize,
        format: impl FnOnce() -> String,
    ) -> Result<(), EngineError> {
        if journal.is_none() && self.config.record_sink.is_none() {
            return Ok(());
        }
        let line = format();
        if let Some(journal) = journal {
            journal.append_line(&line)?;
        }
        if let Some(sink) = &self.config.record_sink {
            sink.deliver(index, &line);
        }
        Ok(())
    }

    /// Runs one case end-to-end: attempts (with retries), classification,
    /// journaling, counter updates. `Err` only under [`ErrorPolicy::FailFast`].
    ///
    /// `forked` carries the checkpoint-fork runner and the snapshot instant
    /// when the case runs in checkpoint mode; `None` uses the campaign's
    /// from-scratch runner.
    fn execute_one(
        &self,
        campaign: &Campaign,
        index: usize,
        golden: &Arc<Trace>,
        stats: &Arc<EngineStats>,
        journal: Option<&Journal>,
        forked: Option<(CaseRunner, Time)>,
    ) -> Result<JournalEntry, EngineError> {
        let case = &campaign.cases[index];
        let tele = &self.config.telemetry;
        let case_t0 = Instant::now();
        let (runner, mut forked_at) = match forked {
            Some((runner, at)) => (runner, Some(at)),
            None => (Arc::clone(&campaign.runner), None),
        };
        let early = self.config.early_abort.then(|| EarlyAbort {
            spec: campaign.spec.clone(),
            golden: Arc::clone(golden),
            injected_at: case.injected_at,
        });
        let (mut attempt, mut attempts) =
            self.attempt_case(&runner, Some(index), stats, early.as_ref());
        // Graceful degradation: a snapshot that cannot be restored fails
        // deterministically, so instead of burning the retry budget on the
        // fork path the case re-runs from scratch.
        if matches!(attempt, Attempt::RestoreFailed(_)) && forked_at.is_some() {
            forked_at = None;
            if let Some(metrics) = tele.metrics() {
                metrics.restore_fallbacks.inc();
            }
            tele.emit_with(|| Event::new("checkpoint", "fallback").with_case(index));
            let (fallback, n) =
                self.attempt_case(&campaign.runner, Some(index), stats, early.as_ref());
            attempt = fallback;
            attempts += n;
        }
        let outcome = match attempt {
            Attempt::Ok(trace) => self
                .finalize_done(campaign, index, golden, stats, journal, trace, forked_at)
                .map(JournalEntry::Done),
            Attempt::Sealed { outcome, steps } => self
                .finalize_sealed(campaign, index, stats, journal, *outcome, steps, forked_at)
                .map(JournalEntry::Done),
            Attempt::SimFailed(failure) => {
                // A guard trip is a verdict, not an infrastructure error:
                // the case is done, classified as a simulation failure.
                let kind = guard_kind(&failure);
                if let Some(metrics) = tele.metrics() {
                    metrics.guard_trip(kind);
                }
                tele.emit_with(|| {
                    Event::new("guard", kind.label())
                        .with_case(index)
                        .with_field("detail", &failure)
                });
                let outcome = CaseOutcome::from_sim_failure(failure);
                stats.record_class(outcome.class);
                let result = CaseResult {
                    case: case.clone(),
                    outcome,
                };
                self.emit_record(journal, index, || {
                    journal::case_line(index, &result, forked_at)
                })?;
                Ok(JournalEntry::Done(result))
            }
            Attempt::Failed(_) | Attempt::RestoreFailed(_) | Attempt::TimedOut => {
                let error = match attempt {
                    Attempt::TimedOut => format!(
                        "timed out after {:?}",
                        self.config.timeout.unwrap_or_default()
                    ),
                    Attempt::Failed(e) | Attempt::RestoreFailed(e) => e,
                    Attempt::Ok(_) | Attempt::SimFailed(_) | Attempt::Sealed { .. } => {
                        unreachable!()
                    }
                };
                match self.config.error_policy {
                    ErrorPolicy::FailFast => Err(EngineError::Case {
                        index,
                        label: case.label.clone(),
                        attempts,
                        error,
                    }),
                    ErrorPolicy::SkipAndRecord if self.config.quarantine => {
                        let q = QuarantinedCase {
                            index,
                            case: case.clone(),
                            attempts,
                            reason: error,
                        };
                        self.emit_record(journal, index, || journal::quarantine_line(&q))?;
                        stats.record_quarantine();
                        tele.emit_with(|| {
                            Event::new("quarantine", "case")
                                .with_case(index)
                                .with_field("attempts", q.attempts)
                                .with_field("reason", &q.reason)
                        });
                        Ok(JournalEntry::Quarantined(q))
                    }
                    ErrorPolicy::SkipAndRecord => {
                        let skip = SkippedCase {
                            index,
                            case: case.clone(),
                            attempts,
                            error,
                        };
                        self.emit_record(journal, index, || journal::skip_line(&skip))?;
                        stats.record_skip();
                        tele.emit_with(|| {
                            Event::new("skip", "case")
                                .with_case(index)
                                .with_field("attempts", skip.attempts)
                                .with_field("reason", &skip.error)
                        });
                        Ok(JournalEntry::Skipped(skip))
                    }
                }
            }
        };
        let dur_us = case_t0.elapsed().as_micros() as u64;
        if let Some(metrics) = tele.metrics() {
            metrics.case_latency_us.observe(dur_us);
        }
        tele.emit_with(|| {
            let mut event = Event::new("span", "case")
                .with_case(index)
                .with_dur_us(dur_us)
                .with_field("label", &case.label)
                .with_field("attempts", attempts);
            event = match &outcome {
                Ok(JournalEntry::Done(result)) => event.with_field("class", result.outcome.class),
                Ok(JournalEntry::Skipped(_)) => event.with_field("outcome", "skipped"),
                Ok(JournalEntry::Quarantined(_)) => event.with_field("outcome", "quarantined"),
                Err(_) => event.with_field("outcome", "fatal"),
            };
            event
        });
        outcome
    }

    /// Classifies a completed trace and journals the case: the shared tail
    /// of [`Attempt::Ok`] handling for the scalar and batch paths.
    #[allow(clippy::too_many_arguments)]
    fn finalize_done(
        &self,
        campaign: &Campaign,
        index: usize,
        golden: &Arc<Trace>,
        stats: &Arc<EngineStats>,
        journal: Option<&Journal>,
        trace: Trace,
        forked_at: Option<Time>,
    ) -> Result<CaseResult, EngineError> {
        let t0 = Instant::now();
        let outcome = classify(&campaign.spec, golden, &trace);
        stats.record_stage(Stage::Classify, t0.elapsed());
        stats.record_class(outcome.class);
        let result = CaseResult {
            case: campaign.cases[index].clone(),
            outcome,
        };
        self.emit_record(journal, index, || {
            journal::case_line(index, &result, forked_at)
        })?;
        Ok(result)
    }

    /// Books a sealed early-abort verdict: class counters, saved-work
    /// estimation, journaling. Shared by the scalar attempt path and the
    /// per-lane batch path.
    #[allow(clippy::too_many_arguments)]
    fn finalize_sealed(
        &self,
        campaign: &Campaign,
        index: usize,
        stats: &Arc<EngineStats>,
        journal: Option<&Journal>,
        outcome: CaseOutcome,
        steps: u64,
        forked_at: Option<Time>,
    ) -> Result<CaseResult, EngineError> {
        let tele = &self.config.telemetry;
        let class = outcome.class;
        let sealed_at = outcome.sealed_at.unwrap_or(campaign.spec.window.1);
        // The simulation time the abort skipped. Runs advance to
        // the fork spec's horizon when there is one; campaigns
        // without a fork spec stop at the observation window's end.
        let horizon = campaign
            .fork
            .as_ref()
            .map_or(campaign.spec.window.1, |f| f.t_end);
        let saved = if horizon > sealed_at {
            horizon - sealed_at
        } else {
            Time::ZERO
        };
        // Extrapolate saved steps from the attempt's measured step
        // density over the simulated span (fork instant → seal).
        let covered = sealed_at - forked_at.unwrap_or(Time::ZERO);
        let saved_steps = if covered > Time::ZERO {
            ((i128::from(steps) * i128::from(saved.as_fs())) / i128::from(covered.as_fs())) as u64
        } else {
            0
        };
        stats.record_class(class);
        if let Some(metrics) = tele.metrics() {
            metrics.early_aborts.inc();
            metrics.saved_sim_fs.add(saved.as_fs().max(0) as u64);
            metrics.saved_steps.add(saved_steps);
        }
        tele.emit_with(|| {
            Event::new("early_abort", "sealed")
                .with_case(index)
                .with_field("class", class)
                .with_field("sealed_at_fs", sealed_at.as_fs())
                .with_field("saved_fs", saved.as_fs())
                .with_field("saved_steps", saved_steps)
        });
        let result = CaseResult {
            case: campaign.cases[index].clone(),
            outcome,
        };
        self.emit_record(journal, index, || {
            journal::case_line(index, &result, forked_at)
        })?;
        Ok(result)
    }

    /// Runs one case group bit-parallel through the campaign's
    /// [`BatchSpec`] and finalizes every lane.
    ///
    /// Lane plumbing mirrors [`Engine::run_attempt`] exactly: with
    /// `--early-abort` each lane gets its own [`CancelToken`] +
    /// [`OnlineClassifier`] + [`SimObserver`], and a sealed verdict wins
    /// over whatever the cancelled lane simulation reported. A lane that
    /// fails without a sealed verdict falls back to the scalar path for
    /// that case alone — which re-derives guard-trip verdicts, retry
    /// accounting and quarantine exactly as a scalar run would.
    fn execute_batch(
        &self,
        campaign: &Campaign,
        spec: &BatchSpec,
        group: &[usize],
        golden: &Arc<Trace>,
        stats: &Arc<EngineStats>,
        journal: Option<&Journal>,
    ) -> Result<Vec<(usize, JournalEntry)>, EngineError> {
        let tele = &self.config.telemetry;
        let group_t0 = Instant::now();
        let mut lane_classifiers: Vec<Option<Arc<Mutex<OnlineClassifier>>>> =
            (0..group.len()).map(|_| None).collect();
        let mut group_budget = self.case_budget();
        if let Some(metrics) = tele.metrics() {
            group_budget = group_budget.with_metrics(Arc::clone(metrics));
        }
        let ctx = CaseCtx::attached(None, 0, Arc::clone(stats), group_budget, tele.clone(), None);
        let outcomes = {
            let classifiers = &mut lane_classifiers;
            let mut hooks = |lane: usize| -> (SimBudget, Option<SimObserver>) {
                let mut budget = self.case_budget();
                if let Some(metrics) = tele.metrics() {
                    budget = budget.with_metrics(Arc::clone(metrics));
                }
                let mut observer = None;
                if self.config.early_abort {
                    let token = CancelToken::new();
                    let classifier = Arc::new(Mutex::new(OnlineClassifier::new(
                        &campaign.spec,
                        Arc::clone(golden),
                        campaign.cases[group[lane]].injected_at,
                        self.config.settle,
                        token.clone(),
                    )));
                    classifiers[lane] = Some(Arc::clone(&classifier));
                    observer = Some(SimObserver::new(move |t, view| {
                        if let Ok(mut classifier) = classifier.lock() {
                            classifier.observe(t, view);
                        }
                    }));
                    budget = budget.with_cancel(token);
                }
                (budget, observer)
            };
            let out = catch_unwind(AssertUnwindSafe(|| (spec.run)(&ctx, group, &mut hooks)));
            ctx.finish();
            out
        };
        let outcomes = match outcomes {
            Ok(Ok(v)) if v.len() == group.len() => v,
            Ok(Ok(v)) => {
                let reason = format!(
                    "batch returned {} outcomes for {} lanes",
                    v.len(),
                    group.len()
                );
                return self.batch_group_fallback(campaign, group, golden, stats, journal, &reason);
            }
            Ok(Err(e)) => {
                let reason = e.to_string();
                return self.batch_group_fallback(campaign, group, golden, stats, journal, &reason);
            }
            Err(payload) => {
                let reason = panic_message(payload);
                return self.batch_group_fallback(campaign, group, golden, stats, journal, &reason);
            }
        };
        let mut entries = Vec::with_capacity(group.len());
        for (lane, outcome) in outcomes.into_iter().enumerate() {
            let index = group[lane];
            let entry =
                match outcome {
                    BatchCaseOutcome::Done { trace, .. } => JournalEntry::Done(
                        self.finalize_done(campaign, index, golden, stats, journal, trace, None)?,
                    ),
                    BatchCaseOutcome::Error(error) => {
                        // A sealed verdict wins over the cancelled lane's
                        // error, mirroring the scalar attempt path.
                        let sealed = lane_classifiers[lane]
                            .as_ref()
                            .and_then(|c| c.lock().ok().and_then(|guard| guard.sealed().cloned()));
                        match sealed {
                            Some(outcome) => JournalEntry::Done(self.finalize_sealed(
                                campaign, index, stats, journal, outcome, 0, None,
                            )?),
                            None => {
                                tele.emit_with(|| {
                                    Event::new("batch", "lane_fallback")
                                        .with_case(index)
                                        .with_field("reason", &error)
                                });
                                self.execute_one(campaign, index, golden, stats, journal, None)?
                            }
                        }
                    }
                };
            entries.push((index, entry));
        }
        tele.emit_with(|| {
            Event::new("span", "batch")
                .with_dur_us(group_t0.elapsed().as_micros() as u64)
                .with_field("lanes", group.len())
        });
        Ok(entries)
    }

    /// Degrades a whole group to the scalar path (batch runner failed or
    /// panicked before producing per-lane outcomes).
    fn batch_group_fallback(
        &self,
        campaign: &Campaign,
        group: &[usize],
        golden: &Arc<Trace>,
        stats: &Arc<EngineStats>,
        journal: Option<&Journal>,
        reason: &str,
    ) -> Result<Vec<(usize, JournalEntry)>, EngineError> {
        self.config.telemetry.emit_with(|| {
            Event::new("batch", "fallback")
                .with_field("lanes", group.len())
                .with_field("reason", reason)
        });
        group
            .iter()
            .map(|&index| {
                self.execute_one(campaign, index, golden, stats, journal, None)
                    .map(|entry| (index, entry))
            })
            .collect()
    }

    /// The retry loop around [`Engine::run_attempt`]. Returns the final
    /// attempt outcome and how many attempts were made.
    fn attempt_case(
        &self,
        runner: &CaseRunner,
        index: Option<usize>,
        stats: &Arc<EngineStats>,
        early: Option<&EarlyAbort>,
    ) -> (Attempt, u32) {
        let tele = &self.config.telemetry;
        let mut last = Attempt::Failed("no attempt made".to_owned());
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                stats.record_retry();
                tele.emit_with(|| {
                    let mut event = Event::new("retry", "attempt").with_field("attempt", attempt);
                    if let Some(index) = index {
                        event = event.with_case(index);
                    }
                    event
                });
                let backoff = self.config.backoff * 2u32.saturating_pow(attempt - 1);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            last = self.run_attempt(runner, index, attempt, stats, early);
            if let Attempt::TimedOut = last {
                stats.record_timeout();
                tele.emit_with(|| {
                    let mut event = Event::new("timeout", "attempt").with_field("attempt", attempt);
                    if let Some(index) = index {
                        event = event.with_case(index);
                    }
                    event
                });
            }
            if matches!(
                last,
                // A guard trip, sealed verdict or failed restore is
                // deterministic; retrying would reproduce it. All end the
                // loop like a success.
                Attempt::Ok(_)
                    | Attempt::Sealed { .. }
                    | Attempt::SimFailed(_)
                    | Attempt::RestoreFailed(_)
            ) {
                return (last, attempt + 1);
            }
        }
        (last, self.config.retries + 1)
    }

    /// The per-attempt [`SimBudget`] from the engine knobs, without a
    /// deadline token — [`Engine::run_attempt`] attaches a fresh one per
    /// attempt when a timeout is configured.
    fn case_budget(&self) -> SimBudget {
        let mut budget = SimBudget::unlimited();
        if let Some(max_steps) = self.config.max_steps {
            budget = budget.with_max_steps(max_steps);
        }
        if let Some(min_dt) = self.config.min_dt {
            budget = budget.with_min_dt(min_dt);
        }
        budget
    }

    /// One attempt: panic-isolated, optionally under a wall-clock timeout.
    fn run_attempt(
        &self,
        runner: &CaseRunner,
        index: Option<usize>,
        attempt: u32,
        stats: &Arc<EngineStats>,
        early: Option<&EarlyAbort>,
    ) -> Attempt {
        let runner = Arc::clone(runner);
        // Early abort rides the existing cooperative-stop plumbing: the
        // classifier cancels the attempt's budget token, exactly like the
        // timeout watchdog does, so a token is armed even with no timeout.
        let token = if early.is_some() {
            Some(
                self.config
                    .timeout
                    .map_or_else(CancelToken::new, CancelToken::with_deadline),
            )
        } else {
            self.config.timeout.map(CancelToken::with_deadline)
        };
        let classifier = match (early, &token) {
            (Some(ea), Some(token)) => Some(Arc::new(Mutex::new(OnlineClassifier::new(
                &ea.spec,
                Arc::clone(&ea.golden),
                ea.injected_at,
                self.config.settle,
                token.clone(),
            )))),
            _ => None,
        };
        let observer = classifier.as_ref().map(|classifier| {
            let classifier = Arc::clone(classifier);
            SimObserver::new(move |t, view| {
                if let Ok(mut classifier) = classifier.lock() {
                    classifier.observe(t, view);
                }
            })
        });
        let mut budget = match &token {
            Some(token) => self.case_budget().with_cancel(token.clone()),
            None => self.case_budget(),
        };
        if let Some(metrics) = self.config.telemetry.metrics() {
            budget = budget.with_metrics(Arc::clone(metrics));
        }
        // The probe shares the attempt's step tally (it is behind an `Arc`),
        // so the engine can observe steps even when the attempt thread is
        // abandoned after a timeout.
        let budget_probe = budget.clone();
        let call = {
            let stats = Arc::clone(stats);
            let telemetry = self.config.telemetry.clone();
            move || {
                let ctx = CaseCtx::attached(index, attempt, stats, budget, telemetry, observer);
                let out = catch_unwind(AssertUnwindSafe(|| runner(&ctx)));
                ctx.finish();
                match out {
                    Ok(Ok(trace)) => Attempt::Ok(trace),
                    Ok(Err(e)) => {
                        if e.is::<SnapshotRestoreError>() {
                            Attempt::RestoreFailed(e.to_string())
                        } else if let Some(failure) = SimFailure::from_error(e.as_ref()) {
                            Attempt::SimFailed(failure)
                        } else {
                            Attempt::Failed(e.to_string())
                        }
                    }
                    Err(payload) => Attempt::Failed(panic_message(payload)),
                }
            }
        };
        let outcome = self.drive_attempt(call, &token);
        let steps = budget_probe.attempt_steps();
        if let Some(metrics) = self.config.telemetry.metrics() {
            metrics.steps_used.observe(steps);
        }
        // A sealed verdict wins over whatever the aborted simulation
        // reported — the cancellation typically surfaces as a deadline
        // guard trip (normalised to a timeout above), and with a fast
        // solver the run may even have finished `Ok` in the race window.
        // Either way the sealed outcome is the verdict.
        if let Some(classifier) = &classifier {
            let sealed = classifier
                .lock()
                .ok()
                .and_then(|guard| guard.sealed().cloned());
            if let Some(sealed) = sealed {
                return Attempt::Sealed {
                    outcome: Box::new(sealed),
                    steps,
                };
            }
        }
        outcome
    }

    /// Runs `call` inline, or on a watchdog thread when a timeout is set.
    fn drive_attempt(
        &self,
        call: impl FnOnce() -> Attempt + Send + 'static,
        token: &Option<CancelToken>,
    ) -> Attempt {
        let Some(timeout) = self.config.timeout else {
            return call();
        };
        // The attempt runs on its own thread so a wedged solver cannot
        // stall the worker. Cancellation is cooperative: the deadline token
        // is armed inside the attempt's budget, so a guarded kernel
        // observes the expiry and returns promptly — the engine then joins
        // the thread instead of leaking it. Only a runner that never polls
        // its budget is abandoned, and only after a grace window.
        let (tx, rx) = mpsc::sync_channel(1);
        let spawned = std::thread::Builder::new()
            .name("amsfi-attempt".to_owned())
            .spawn(move || {
                let _ = tx.send(call());
            });
        let Ok(handle) = spawned else {
            return Attempt::Failed("failed to spawn attempt thread".to_owned());
        };
        match rx.recv_timeout(timeout) {
            Ok(outcome) => {
                let _ = handle.join();
                match outcome {
                    // The attempt observed its deadline token cooperatively
                    // a moment before the engine's own timer expired. Same
                    // timeout, same report — otherwise the winner of that
                    // race decides between `timed out` and `sim-failure`.
                    Attempt::SimFailed(SimFailure::Deadline { .. }) if token.is_some() => {
                        Attempt::TimedOut
                    }
                    outcome => outcome,
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if let Some(token) = &token {
                    token.cancel();
                }
                let grace = timeout.clamp(Duration::from_millis(50), Duration::from_secs(2));
                match rx.recv_timeout(grace) {
                    Ok(late) => {
                        let _ = handle.join();
                        match late {
                            // The attempt finished in the race window
                            // between expiry and cancellation; keep it.
                            Attempt::Ok(trace) => Attempt::Ok(trace),
                            _ => Attempt::TimedOut,
                        }
                    }
                    // The runner ignored its token; abandon the thread. It
                    // holds only `Arc` clones of runner and stats, so
                    // nothing dangles — the cost of one genuinely wedged
                    // solver is one leaked thread.
                    Err(_) => Attempt::TimedOut,
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Attempt::Failed("attempt thread died without reporting".to_owned())
            }
        }
    }
}

/// Which metrics/event bucket a structured simulation failure lands in.
fn guard_kind(failure: &SimFailure) -> GuardKind {
    match failure {
        SimFailure::NonFinite { .. } => GuardKind::NonFinite,
        SimFailure::StepBudgetExhausted { .. } => GuardKind::StepBudget,
        SimFailure::TimestepCollapse { .. } => GuardKind::TimestepCollapse,
        SimFailure::Deadline { .. } => GuardKind::Deadline,
        SimFailure::Panicked { .. } => GuardKind::Panic,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("run closure panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("run closure panicked: {s}")
    } else {
        "run closure panicked (non-string payload)".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amsfi_waves::{Logic, Time};

    /// A deterministic toy campaign: case index decides the digital value
    /// pattern on signal "out"; odd indices diverge transiently, index 4
    /// fails outright, everything else matches the golden run.
    fn toy_campaign(name: &str, n: usize) -> Campaign {
        let window = (Time::from_ns(0), Time::from_ns(1000));
        let spec = ClassifySpec::new(window, vec!["out".to_owned()]);
        let cases = (0..n)
            .map(|i| FaultCase::new(format!("bit{i}"), Time::from_ns(100)))
            .collect();
        Campaign {
            name: name.to_owned(),
            spec,
            cases,
            runner: Arc::new(|ctx: &CaseCtx| {
                ctx.stage(Stage::Build);
                let mut trace = Trace::new();
                trace.record_digital("out", Time::from_ns(0), Logic::Zero)?;
                ctx.stage(Stage::Simulate);
                match ctx.index() {
                    None => {}
                    Some(4) => {
                        // Still wrong at end of window: failure.
                        trace.record_digital("out", Time::from_ns(200), Logic::One)?;
                    }
                    Some(i) if i % 2 == 1 => {
                        // Wrong then recovered: transient.
                        trace.record_digital("out", Time::from_ns(200), Logic::One)?;
                        trace.record_digital("out", Time::from_ns(400), Logic::Zero)?;
                    }
                    Some(_) => {}
                }
                Ok(trace)
            }),
            fork: None,
            batch: None,
            word: None,
        }
    }

    /// A `Campaign::forked` toy over a tick-per-nanosecond counter: even
    /// case indices stick "out" high (failure), odd ones flip one tick
    /// (transient).
    #[derive(Debug, Clone)]
    struct TickSim {
        now: Time,
        ticks: u64,
        stuck: bool,
        invert_next: bool,
        trace: Trace,
    }

    impl ForkableSim for TickSim {
        type Error = std::convert::Infallible;

        fn advance_to(&mut self, t: Time) -> Result<(), Self::Error> {
            while self.now + Time::from_ns(1) <= t {
                self.now += Time::from_ns(1);
                self.ticks += 1;
                let mut bit = if self.stuck {
                    true
                } else {
                    self.ticks % 2 == 1
                };
                if std::mem::take(&mut self.invert_next) {
                    bit = !bit;
                }
                self.trace
                    .record_digital("out", self.now, Logic::from_bool(bit))
                    .unwrap();
            }
            Ok(())
        }

        fn current_time(&self) -> Time {
            self.now
        }

        fn snapshot_trace(&self) -> Trace {
            self.trace.clone()
        }

        fn structural_fingerprint(&self) -> u64 {
            0x71C5
        }
    }

    fn forked_campaign(name: &str, n: usize) -> Campaign {
        let t_end = Time::from_ns(40);
        let spec = ClassifySpec::new((Time::ZERO, t_end), vec!["out".to_owned()]);
        let cases = (0..n)
            .map(|i| FaultCase::new(format!("tick{i}"), Time::from_ns(5 + (i as i64 % 3) * 9)))
            .collect();
        Campaign::forked(
            name,
            spec,
            cases,
            t_end,
            |_ctx: &CaseCtx| {
                Ok(TickSim {
                    now: Time::ZERO,
                    ticks: 0,
                    stuck: false,
                    invert_next: false,
                    trace: Trace::new(),
                })
            },
            |sim: &mut TickSim, i| {
                if i.is_multiple_of(2) {
                    sim.stuck = true;
                } else {
                    sim.invert_next = true;
                }
                Ok(())
            },
        )
    }

    #[test]
    fn checkpoint_mode_matches_from_scratch_mode() {
        let campaign = forked_campaign("toy-fork", 9);
        let scratch = Engine::new(EngineConfig::default().with_workers(3))
            .run(&campaign)
            .unwrap();
        let forked = Engine::new(
            EngineConfig::default()
                .with_workers(3)
                .with_checkpoint(true),
        )
        .run(&campaign)
        .unwrap();
        assert_eq!(scratch.result.golden, forked.result.golden);
        assert_eq!(scratch.result.cases.len(), forked.result.cases.len());
        for (a, b) in scratch.result.cases.iter().zip(&forked.result.cases) {
            assert_eq!(a, b, "case {}", a.case);
        }
    }

    #[test]
    fn checkpoint_mode_journals_the_fork_instant() {
        let campaign = forked_campaign("toy-fork-journal", 4);
        let path = std::env::temp_dir().join(format!(
            "amsfi-executor-fork-{}.journal",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        Engine::new(
            EngineConfig::default()
                .with_workers(2)
                .with_checkpoint(true)
                .with_journal(&path),
        )
        .run(&campaign)
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Every case record carries the snapshot instant it forked from.
        for line in text.lines().filter(|l| l.starts_with("case ")) {
            assert!(line.contains(" forked="), "{line}");
            assert!(!line.contains(" forked=-"), "{line}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_flag_without_fork_spec_falls_back_to_scratch() {
        let campaign = toy_campaign("toy-nofork", 6);
        let report = Engine::new(
            EngineConfig::default()
                .with_workers(2)
                .with_checkpoint(true),
        )
        .run(&campaign)
        .unwrap();
        assert_eq!(report.result.cases.len(), 6);
    }

    #[test]
    fn checkpoint_mode_retries_through_a_flaky_fork() {
        use std::sync::atomic::AtomicU32;
        let t_end = Time::from_ns(20);
        let spec = {
            let mut s = ClassifySpec::new((Time::ZERO, t_end), vec!["out".to_owned()]);
            s.outputs.clear();
            s
        };
        let cases = vec![FaultCase::new("flaky", Time::from_ns(5))];
        let tries = Arc::new(AtomicU32::new(0));
        let tries_in = Arc::clone(&tries);
        let campaign = Campaign::forked(
            "toy-fork-flaky",
            spec,
            cases,
            t_end,
            |_ctx: &CaseCtx| {
                Ok(TickSim {
                    now: Time::ZERO,
                    ticks: 0,
                    stuck: false,
                    invert_next: false,
                    trace: Trace::new(),
                })
            },
            move |_sim: &mut TickSim, _i| {
                if tries_in.fetch_add(1, Ordering::Relaxed) < 2 {
                    return Err("flaky fork".into());
                }
                Ok(())
            },
        );
        let report = Engine::new(
            EngineConfig::default()
                .with_workers(1)
                .with_checkpoint(true)
                .with_retries(3)
                .with_backoff(Duration::from_millis(1)),
        )
        .run(&campaign)
        .unwrap();
        assert_eq!(report.result.cases.len(), 1);
        assert!(report.skipped.is_empty());
        assert_eq!(report.stats.retries, 2);
        assert_eq!(tries.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn engine_matches_legacy_classification() {
        let campaign = toy_campaign("toy", 8);
        let report = Engine::new(EngineConfig::default().with_workers(4))
            .run(&campaign)
            .unwrap();
        let summary = report.result.summary();
        use amsfi_core::FaultClass;
        assert_eq!(summary[0], (FaultClass::NoEffect, 3)); // 0, 2, 6
        assert_eq!(summary[2], (FaultClass::Transient, 4)); // 1, 3, 5, 7
        assert_eq!(summary[3], (FaultClass::Failure, 1)); // 4
        assert_eq!(report.resumed, 0);
        assert!(report.skipped.is_empty());
        assert_eq!(report.stats.done, 8);
        // The runner marked build/simulate stages, the engine classify.
        assert!(report.stats.stage_ns.iter().all(|&ns| ns > 0));
    }

    #[test]
    fn failing_case_is_skipped_and_recorded() {
        let mut campaign = toy_campaign("toy-skip", 6);
        campaign.runner = Arc::new(|ctx: &CaseCtx| {
            if ctx.index() == Some(2) {
                return Err("solver diverged".into());
            }
            if ctx.index() == Some(3) {
                panic!("numerical panic");
            }
            Ok(Trace::new())
        });
        campaign.spec.outputs.clear();
        let report = Engine::new(
            EngineConfig::default()
                .with_workers(2)
                .with_error_policy(ErrorPolicy::SkipAndRecord),
        )
        .run(&campaign)
        .unwrap();
        assert_eq!(report.result.cases.len(), 4);
        assert_eq!(report.skipped.len(), 2);
        let errors: Vec<&str> = report.skipped.iter().map(|s| s.error.as_str()).collect();
        assert!(
            errors.iter().any(|e| e.contains("solver diverged")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("numerical panic")),
            "{errors:?}"
        );
        assert_eq!(report.stats.skipped, 2);
    }

    #[test]
    fn fail_fast_surfaces_the_case_error() {
        let mut campaign = toy_campaign("toy-ff", 6);
        campaign.runner = Arc::new(|ctx: &CaseCtx| {
            if ctx.index() == Some(1) {
                return Err("boom".into());
            }
            Ok(Trace::new())
        });
        let err = Engine::new(
            EngineConfig::default()
                .with_workers(1)
                .with_error_policy(ErrorPolicy::FailFast),
        )
        .run(&campaign)
        .unwrap_err();
        match err {
            EngineError::Case { index, error, .. } => {
                assert_eq!(index, 1);
                assert!(error.contains("boom"), "{error}");
            }
            other => panic!("expected Case error, got {other}"),
        }
    }

    #[test]
    fn retries_eventually_succeed_and_are_counted() {
        use std::sync::atomic::AtomicU32;
        let tries = Arc::new(AtomicU32::new(0));
        let mut campaign = toy_campaign("toy-retry", 1);
        let tries_in = Arc::clone(&tries);
        campaign.spec.outputs.clear();
        campaign.runner = Arc::new(move |ctx: &CaseCtx| {
            if ctx.index().is_some() && tries_in.fetch_add(1, Ordering::Relaxed) < 2 {
                return Err("flaky".into());
            }
            Ok(Trace::new())
        });
        let report = Engine::new(
            EngineConfig::default()
                .with_workers(1)
                .with_retries(3)
                .with_backoff(Duration::from_millis(1)),
        )
        .run(&campaign)
        .unwrap();
        assert_eq!(report.result.cases.len(), 1);
        assert!(report.skipped.is_empty());
        assert_eq!(report.stats.retries, 2);
        assert_eq!(tries.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn timeout_abandons_the_attempt() {
        let mut campaign = toy_campaign("toy-timeout", 2);
        campaign.spec.outputs.clear();
        campaign.runner = Arc::new(|ctx: &CaseCtx| {
            if ctx.index() == Some(1) {
                std::thread::sleep(Duration::from_millis(400));
            }
            Ok(Trace::new())
        });
        let report = Engine::new(
            EngineConfig::default()
                .with_workers(2)
                .with_timeout(Duration::from_millis(40))
                .with_error_policy(ErrorPolicy::SkipAndRecord),
        )
        .run(&campaign)
        .unwrap();
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].index, 1);
        assert!(report.skipped[0].error.contains("timed out"));
        assert_eq!(report.stats.timeouts, 1);
    }

    #[test]
    fn guard_violation_classifies_as_sim_failure() {
        use amsfi_core::FaultClass;
        use amsfi_waves::GuardViolation;
        let mut campaign = toy_campaign("toy-guard", 3);
        campaign.spec.outputs.clear();
        campaign.runner = Arc::new(|ctx: &CaseCtx| {
            if ctx.index() == Some(1) {
                return Err(Box::new(GuardViolation::NonFinite {
                    signal: "vctrl".to_owned(),
                    t: Time::from_ns(70),
                }) as BoxError);
            }
            Ok(Trace::new())
        });
        let report = Engine::new(EngineConfig::default().with_workers(2).with_retries(3))
            .run(&campaign)
            .unwrap();
        // A guard trip is a verdict: classified, not skipped, not retried.
        assert!(report.skipped.is_empty());
        assert_eq!(report.stats.retries, 0);
        assert_eq!(report.result.cases.len(), 3);
        let failed = &report.result.cases[1];
        assert_eq!(failed.outcome.class, FaultClass::SimFailure);
        assert_eq!(
            failed.outcome.failure,
            Some(amsfi_core::SimFailure::NonFinite {
                signal: "vctrl".to_owned(),
                t: Time::from_ns(70)
            })
        );
    }

    #[test]
    fn cooperative_cancel_reclaims_the_attempt_thread() {
        use amsfi_waves::GuardViolation;
        // The slow case polls its budget's cancel token like a guarded
        // kernel; `live` counts attempt closures still on their thread.
        let live = Arc::new(AtomicUsize::new(0));
        let mut campaign = toy_campaign("toy-cancel", 2);
        campaign.spec.outputs.clear();
        let live_in = Arc::clone(&live);
        campaign.runner = Arc::new(move |ctx: &CaseCtx| {
            if ctx.index() == Some(1) {
                live_in.fetch_add(1, Ordering::SeqCst);
                let token = ctx.budget().cancel_token().clone();
                while !token.should_stop() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                live_in.fetch_sub(1, Ordering::SeqCst);
                return Err(Box::new(GuardViolation::Cancelled { t: Time::ZERO }) as BoxError);
            }
            Ok(Trace::new())
        });
        let report = Engine::new(
            EngineConfig::default()
                .with_workers(2)
                .with_timeout(Duration::from_millis(30)),
        )
        .run(&campaign)
        .unwrap();
        assert_eq!(report.stats.timeouts, 1);
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].error.contains("timed out"));
        // The attempt observed the cancellation and its thread was joined
        // before the engine returned — nothing leaked.
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn quarantine_records_poison_and_resume_skips_it() {
        use std::sync::atomic::AtomicU32;
        let attempts = Arc::new(AtomicU32::new(0));
        let mut campaign = toy_campaign("toy-poison", 4);
        campaign.spec.outputs.clear();
        let attempts_in = Arc::clone(&attempts);
        campaign.runner = Arc::new(move |ctx: &CaseCtx| {
            if ctx.index() == Some(2) {
                attempts_in.fetch_add(1, Ordering::SeqCst);
                return Err("deterministic divergence".into());
            }
            Ok(Trace::new())
        });
        let path = std::env::temp_dir().join(format!(
            "amsfi-executor-poison-{}.journal",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let config = EngineConfig::default()
            .with_workers(1)
            .with_retries(1)
            .with_backoff(Duration::from_millis(1))
            .with_quarantine(true)
            .with_journal(&path);
        let report = Engine::new(config.clone()).run(&campaign).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].index, 2);
        assert_eq!(report.quarantined[0].attempts, 2);
        assert!(report.quarantined[0]
            .reason
            .contains("deterministic divergence"));
        assert!(report.skipped.is_empty());
        assert_eq!(report.stats.quarantined, 1);
        assert_eq!(attempts.load(Ordering::SeqCst), 2);

        // Resuming never re-attempts the poison case, but still reports it.
        let resumed = Engine::new(config.with_resume(true))
            .run(&campaign)
            .unwrap();
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "poison case re-ran");
        assert_eq!(resumed.quarantined.len(), 1);
        assert_eq!(resumed.resumed, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unrestorable_snapshot_falls_back_to_scratch() {
        let scratch = Engine::new(EngineConfig::default().with_workers(2))
            .run(&forked_campaign("toy-fallback", 6))
            .unwrap();
        let mut campaign = forked_campaign("toy-fallback", 6);
        // Sabotage restore: every fork now fails the way a snapshot of the
        // wrong simulator type (or drifted structure) would.
        campaign.fork.as_mut().unwrap().fork = Arc::new(|_ctx, _snap| {
            Err(Box::new(SnapshotRestoreError("structural drift".to_owned())) as BoxError)
        });
        let report = Engine::new(
            EngineConfig::default()
                .with_workers(2)
                .with_checkpoint(true)
                .with_retries(2),
        )
        .run(&campaign)
        .unwrap();
        // Every case degraded to its from-scratch runner: same verdicts,
        // nothing skipped, no retries burned on the deterministic failure.
        assert!(report.skipped.is_empty());
        assert_eq!(report.stats.retries, 0);
        assert_eq!(scratch.result.cases.len(), report.result.cases.len());
        for (a, b) in scratch.result.cases.iter().zip(&report.result.cases) {
            assert_eq!(a, b, "case {}", a.case);
        }
    }

    #[test]
    fn golden_failure_is_fatal() {
        let mut campaign = toy_campaign("toy-golden", 2);
        campaign.runner = Arc::new(|ctx: &CaseCtx| {
            if ctx.index().is_none() {
                return Err("no golden".into());
            }
            Ok(Trace::new())
        });
        let err = Engine::new(EngineConfig::default())
            .run(&campaign)
            .unwrap_err();
        assert!(matches!(err, EngineError::Golden(_)), "{err}");
    }
}
