//! Deterministic partitioning of a campaign's case list across processes
//! or machines.
//!
//! A shard owns every case index `i` with `i % count == index` (round-robin
//! striping). Striping — rather than contiguous chunks — keeps the per-shard
//! workload balanced even when case cost correlates with position in the
//! fault list (e.g. injection times sweeping through a transient), and it
//! makes the partition a pure function of `(index, count)` so shards can be
//! launched independently with no coordination.

use std::fmt;
use std::str::FromStr;

/// One slice of a partitioned campaign: shard `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shard {
    /// This shard's position, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards the campaign is split into.
    pub count: usize,
}

/// An invalid shard specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError(String);

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid shard: {}", self.0)
    }
}

impl std::error::Error for ShardError {}

impl Shard {
    /// The whole campaign as a single shard.
    pub const FULL: Shard = Shard { index: 0, count: 1 };

    /// Creates shard `index` of `count`.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError`] if `count` is zero or `index >= count`.
    pub fn new(index: usize, count: usize) -> Result<Self, ShardError> {
        if count == 0 {
            return Err(ShardError("shard count must be positive".to_owned()));
        }
        if index >= count {
            return Err(ShardError(format!(
                "shard index {index} out of range for {count} shard(s)"
            )));
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard executes case `i`.
    pub fn owns(&self, i: usize) -> bool {
        i % self.count == self.index
    }

    /// The case indices this shard owns, out of `total` cases, ascending.
    pub fn case_indices(&self, total: usize) -> impl Iterator<Item = usize> + '_ {
        (self.index..total).step_by(self.count)
    }

    /// How many of `total` cases this shard owns.
    pub fn len(&self, total: usize) -> usize {
        if total > self.index {
            1 + (total - self.index - 1) / self.count
        } else {
            0
        }
    }

    /// Whether this shard owns none of `total` cases.
    pub fn is_empty(&self, total: usize) -> bool {
        self.len(total) == 0
    }
}

impl Default for Shard {
    fn default() -> Self {
        Shard::FULL
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for Shard {
    type Err = ShardError;

    /// Parses the CLI form `INDEX/COUNT`, e.g. `0/2`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| ShardError(format!("expected INDEX/COUNT, got {s:?}")))?;
        let index: usize = index
            .trim()
            .parse()
            .map_err(|_| ShardError(format!("bad shard index in {s:?}")))?;
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| ShardError(format!("bad shard count in {s:?}")))?;
        Shard::new(index, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_exactly() {
        let total = 23;
        let count = 4;
        let mut seen = vec![0u32; total];
        for index in 0..count {
            let shard = Shard::new(index, count).unwrap();
            for i in shard.case_indices(total) {
                assert!(shard.owns(i));
                seen[i] += 1;
            }
            assert_eq!(shard.case_indices(total).count(), shard.len(total));
        }
        assert!(
            seen.iter().all(|&n| n == 1),
            "each case in exactly one shard"
        );
    }

    #[test]
    fn full_shard_owns_everything() {
        assert!((0..100).all(|i| Shard::FULL.owns(i)));
        assert_eq!(Shard::FULL.len(100), 100);
    }

    #[test]
    fn parse_and_display_round_trip() {
        let s: Shard = "1/4".parse().unwrap();
        assert_eq!(s, Shard { index: 1, count: 4 });
        assert_eq!(s.to_string(), "1/4");
        assert!("4/4".parse::<Shard>().is_err());
        assert!("0/0".parse::<Shard>().is_err());
        assert!("x/2".parse::<Shard>().is_err());
        assert!("3".parse::<Shard>().is_err());
    }

    #[test]
    fn empty_and_small_totals() {
        let s = Shard::new(2, 4).unwrap();
        assert_eq!(s.len(2), 0);
        assert!(s.is_empty(2));
        assert_eq!(s.len(3), 1);
        assert_eq!(s.case_indices(0).count(), 0);
    }
}
