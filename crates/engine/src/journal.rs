//! The append-only results journal: one line per classified case, written
//! as each case finishes, so a campaign can be killed at any instant and
//! resumed without losing completed work.
//!
//! The format is a deliberately plain, line-based text format (no serde, no
//! framing) so shards on different machines can write independently and a
//! human can inspect or `grep` a journal mid-run:
//!
//! ```text
//! #amsfi-journal v2
//! #campaign name=pll-sweep cases=24 fingerprint=9f1a2b3c4d5e6f70
//! case 3 at=170000000000 class=transient onset=170001200000 end=171800000000 mismatch=902000000 affected=vctrl forked=170000000000 label=(8\smA;\s100\sps;\s100\sps;\s300\sps)
//! skip 7 at=170000000000 attempts=3 label=(10\smA;\s40\sps;\s40\sps;\s120\sps) error=simulation\sdiverged
//! ```
//!
//! * Times are integer femtoseconds (`-` for "none"), so outcomes
//!   round-trip exactly and merged summaries are byte-identical to an
//!   uninterrupted run.
//! * Every record is a flat list of whitespace-separated `key=value`
//!   tokens. Free-text values (campaign name, case label, error message,
//!   affected signal names) are [escaped](escape) so they contain no
//!   whitespace and no `|` — arbitrary text, including the multi-word
//!   solver errors that broke `--resume` under format v1, round-trips
//!   losslessly. Unknown keys (such as `forked`, written by checkpointed
//!   runs) are ignored on read, so the format is forward-extensible.
//! * The header `fingerprint` hashes the campaign's case list; resuming or
//!   merging with a journal whose fingerprint differs is refused, which
//!   catches "same name, different fault list" mistakes early.
//! * Records are keyed by case index. Duplicate indices are legal (a
//!   killed-and-resumed shard may rewrite its in-flight case); the last
//!   record wins. A `skip` for an index is superseded by a later `case`.
//! * `forked=<t>` on a `case` record means the run was forked from a
//!   golden-prefix checkpoint taken at `t` fs (`-` or absent: simulated
//!   from scratch). Informational — resume does not depend on it.
//! * `quarantine=<reason>` on a `skip` record marks a **poison case**: the
//!   engine exhausted the retry budget and quarantined the case so that
//!   `--resume` never re-runs it. Readers that predate quarantine see a
//!   plain skip (the extra key is ignored), so quarantined journals stay
//!   readable by older tooling.
//! * `simfail=<taxonomy>` on a `case` record carries the structured
//!   [`SimFailure`] for cases classified `sim-failure`, so the failure
//!   taxonomy round-trips through resume and merge.
//! * `sealed_at=<t>` on a `case` record means an online classifier sealed
//!   the verdict at `t` fs and the simulation was aborted early
//!   (`--early-abort`). Absent for post-hoc classification. Readers that
//!   predate early abort ignore the key.
//! * The journal is append-only and written record-at-a-time, so only its
//!   final line can ever be torn by a kill or a full disk. [`load`]
//!   therefore tolerates (ignores) a malformed or truncated *final* record
//!   line — and invalid UTF-8 anywhere is replaced rather than fatal —
//!   while corruption anywhere else is still reported as an error.

use crate::shard::Shard;
use amsfi_core::{CampaignResult, CaseOutcome, CaseResult, FaultCase, FaultClass, SimFailure};
use amsfi_waves::{Time, Trace};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The format version this module writes and understands.
pub const JOURNAL_VERSION: &str = "v2";

/// Campaign identity recorded in (and validated against) a journal header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalMeta {
    /// Campaign name (informational).
    pub name: String,
    /// Total number of cases in the full (unsharded) campaign.
    pub cases: usize,
    /// FNV-1a hash of the case list; see [`fingerprint`].
    pub fingerprint: u64,
}

impl JournalMeta {
    /// Builds the metadata for a campaign's case list.
    pub fn of(name: &str, cases: &[FaultCase]) -> Self {
        JournalMeta {
            name: name.to_owned(),
            cases: cases.len(),
            fingerprint: fingerprint(name, cases),
        }
    }
}

/// One record read back from a journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEntry {
    /// The case completed and was classified.
    Done(CaseResult),
    /// The case was abandoned after exhausting its retry budget.
    Skipped(SkippedCase),
    /// The case was quarantined as poison: abandoned *and* excluded from
    /// every future `--resume` of this journal.
    Quarantined(QuarantinedCase),
}

/// A case abandoned under [`crate::ErrorPolicy::SkipAndRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedCase {
    /// Index of the case in the campaign's case list.
    pub index: usize,
    /// The case itself.
    pub case: FaultCase,
    /// How many attempts were made.
    pub attempts: u32,
    /// The last error observed.
    pub error: String,
}

/// A poison case: it exhausted the engine's retry budget and was placed in
/// quarantine, so resumed runs skip it instead of dying on it again.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedCase {
    /// Index of the case in the campaign's case list.
    pub index: usize,
    /// The case itself.
    pub case: FaultCase,
    /// How many attempts were made before quarantine.
    pub attempts: u32,
    /// Why the case was quarantined (the last error observed).
    pub reason: String,
}

/// Errors reading, writing or validating a journal.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying I/O failure.
    Io(PathBuf, std::io::Error),
    /// The file exists but the engine was not asked to resume.
    ExistsWithoutResume(PathBuf),
    /// Header or record syntax error.
    Malformed(PathBuf, usize, String),
    /// The journal belongs to a different campaign or case list.
    CampaignMismatch {
        /// The journal that does not match.
        path: PathBuf,
        /// What the journal header says.
        found: JournalMeta,
        /// What the running campaign expects.
        expected: JournalMeta,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(path, e) => write!(f, "journal {}: {e}", path.display()),
            JournalError::ExistsWithoutResume(path) => write!(
                f,
                "journal {} already exists; pass --resume to continue it or choose a new path",
                path.display()
            ),
            JournalError::Malformed(path, line, why) => {
                write!(f, "journal {} line {line}: {why}", path.display())
            }
            JournalError::CampaignMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "journal {} was written by campaign {:?} ({} cases, fingerprint {:016x}) \
                 but this run is {:?} ({} cases, fingerprint {:016x})",
                path.display(),
                found.name,
                found.cases,
                found.fingerprint,
                expected.name,
                expected.cases,
                expected.fingerprint,
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// The campaign fingerprint (FNV-1a over name, labels and injection
/// times). Re-exported from [`amsfi_core::identity`], where it also backs
/// the distributed coordinator/worker handshake.
pub use amsfi_core::fingerprint;

/// An open, append-mode journal writer shared by the engine's workers.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    /// Records appended by this writer (observability; excludes the header
    /// and any pre-existing resumed records).
    records: std::sync::atomic::AtomicU64,
    /// Bytes appended by this writer, including record newlines.
    bytes: std::sync::atomic::AtomicU64,
}

impl Journal {
    /// Opens `path` for this campaign.
    ///
    /// * If the file does not exist, it is created and the header written.
    /// * If it exists and `resume` is true, the header is validated against
    ///   `meta` and all completed records are returned so the engine can
    ///   skip them.
    /// * If it exists and `resume` is false, the call is refused —
    ///   silently appending a different run to an old journal is almost
    ///   always a mistake.
    ///
    /// # Errors
    ///
    /// See [`JournalError`].
    pub fn open(
        path: &Path,
        meta: &JournalMeta,
        resume: bool,
    ) -> Result<(Self, BTreeMap<usize, JournalEntry>), JournalError> {
        let exists = path.exists();
        let mut entries = BTreeMap::new();
        if exists {
            if !resume {
                return Err(JournalError::ExistsWithoutResume(path.to_owned()));
            }
            let (found, existing) = load(path)?;
            if &found != meta {
                return Err(JournalError::CampaignMismatch {
                    path: path.to_owned(),
                    found,
                    expected: meta.clone(),
                });
            }
            entries = existing;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| JournalError::Io(path.to_owned(), e))?;
        let mut writer = BufWriter::new(file);
        if !exists {
            writeln!(writer, "#amsfi-journal {JOURNAL_VERSION}")
                .and_then(|()| {
                    writeln!(
                        writer,
                        "#campaign name={} cases={} fingerprint={:016x}",
                        escape(&meta.name),
                        meta.cases,
                        meta.fingerprint
                    )
                })
                .and_then(|()| writer.flush())
                .map_err(|e| JournalError::Io(path.to_owned(), e))?;
        }
        Ok((
            Journal {
                path: path.to_owned(),
                writer: Mutex::new(writer),
                records: std::sync::atomic::AtomicU64::new(0),
                bytes: std::sync::atomic::AtomicU64::new(0),
            },
            entries,
        ))
    }

    /// Appends one completed case and flushes, so the record survives a
    /// kill immediately after. `forked` records the checkpoint instant the
    /// case was forked from (`None` for a from-scratch run).
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on write failure.
    pub fn record_case(
        &self,
        index: usize,
        result: &CaseResult,
        forked: Option<Time>,
    ) -> Result<(), JournalError> {
        self.append_line(&case_line(index, result, forked))
    }

    /// Appends one skipped case and flushes.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on write failure.
    pub fn record_skip(&self, skip: &SkippedCase) -> Result<(), JournalError> {
        self.append_line(&skip_line(skip))
    }

    /// Appends one quarantined (poison) case and flushes. Written as a
    /// `skip` record with an extra `quarantine=<reason>` key, so readers
    /// that predate quarantine degrade gracefully to a plain skip.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on write failure.
    pub fn record_quarantine(&self, q: &QuarantinedCase) -> Result<(), JournalError> {
        self.append_line(&quarantine_line(q))
    }

    /// Appends one pre-formatted record line and flushes.
    ///
    /// This is how the distributed coordinator live-merges records that a
    /// remote worker formatted with [`case_line`]/[`skip_line`]/
    /// [`quarantine_line`] and streamed over the wire — the line lands in
    /// the merged journal byte-for-byte as a local run would have written
    /// it. The caller is responsible for passing a valid v2 record
    /// (validate with [`parse_line`] first); a raw newline would corrupt
    /// the journal framing.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on write failure.
    pub fn append_line(&self, line: &str) -> Result<(), JournalError> {
        use std::sync::atomic::Ordering;
        let mut writer = self.writer.lock().expect("journal writer poisoned");
        writeln!(writer, "{line}")
            .and_then(|()| writer.flush())
            .map_err(|e| JournalError::Io(self.path.clone(), e))?;
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Records appended by this writer so far (excludes the header and any
    /// records written by previous runs of a resumed journal).
    pub fn records_written(&self) -> u64 {
        self.records.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Bytes appended by this writer so far, including record newlines.
    pub fn bytes_written(&self) -> u64 {
        self.bytes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The path this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads a journal: header metadata plus all records, keyed by case index
/// (last record per index wins, `case` superseding `skip`).
///
/// Robust against a torn tail: the journal is append-only, so a kill (or a
/// full disk) can corrupt at most its final line. A malformed or truncated
/// *final* record line is silently ignored — the engine re-runs that case —
/// and invalid UTF-8 is lossily replaced. Corruption on any non-final line
/// is still an error.
///
/// # Errors
///
/// See [`JournalError`].
pub fn load(path: &Path) -> Result<(JournalMeta, BTreeMap<usize, JournalEntry>), JournalError> {
    let bytes = std::fs::read(path).map_err(|e| JournalError::Io(path.to_owned(), e))?;
    let text = String::from_utf8_lossy(&bytes);
    let bad = |line_nr: usize, why: &str| {
        JournalError::Malformed(path.to_owned(), line_nr, why.to_owned())
    };

    let lines: Vec<&str> = text.lines().collect();
    let first = *lines.first().ok_or_else(|| bad(1, "empty journal"))?;
    if first.trim() != format!("#amsfi-journal {JOURNAL_VERSION}") {
        return Err(bad(1, "not an amsfi journal (bad magic line)"));
    }
    let header = *lines
        .get(1)
        .ok_or_else(|| bad(2, "missing campaign header"))?;
    let meta = parse_header(header).ok_or_else(|| bad(2, "malformed campaign header"))?;

    let mut entries: BTreeMap<usize, JournalEntry> = BTreeMap::new();
    let last_nr = lines.len();
    for (idx, line) in lines.iter().enumerate().skip(2) {
        let line_nr = idx + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((index, entry)) = parse_line(line) else {
            if line_nr == last_nr {
                // Torn tail: the write was interrupted mid-record. The
                // case it described is simply still pending.
                continue;
            }
            return Err(bad(line_nr, "malformed record"));
        };
        if meta.cases > 0 && index >= meta.cases {
            if line_nr == last_nr {
                continue;
            }
            return Err(bad(line_nr, "case index out of range for campaign"));
        }
        apply_entry(&mut entries, index, entry);
    }
    Ok((meta, entries))
}

/// Record-precedence rule shared by [`load`], [`merge`] and the
/// distributed coordinator's live merge: the last record for an index
/// wins, except a completed case is never demoted to a skip or a
/// quarantine (a resumed run may re-attempt and then succeed).
pub fn apply_entry(entries: &mut BTreeMap<usize, JournalEntry>, index: usize, entry: JournalEntry) {
    match (&entry, entries.get(&index)) {
        (JournalEntry::Skipped(_) | JournalEntry::Quarantined(_), Some(JournalEntry::Done(_))) => {}
        _ => {
            entries.insert(index, entry);
        }
    }
}

/// Loads several shard journals for the same campaign and merges their
/// records into one deterministic, index-ordered map.
///
/// # Errors
///
/// Fails if any journal is unreadable or the journals disagree about the
/// campaign (name, case count or fingerprint).
pub fn merge(
    paths: &[PathBuf],
) -> Result<(JournalMeta, BTreeMap<usize, JournalEntry>), JournalError> {
    assert!(!paths.is_empty(), "nothing to merge");
    let (meta, mut entries) = load(&paths[0])?;
    for path in &paths[1..] {
        let (other_meta, other) = load(path)?;
        if other_meta != meta {
            return Err(JournalError::CampaignMismatch {
                path: path.clone(),
                found: other_meta,
                expected: meta,
            });
        }
        for (index, entry) in other {
            apply_entry(&mut entries, index, entry);
        }
    }
    Ok((meta, entries))
}

/// Builds a [`CampaignResult`] (with an empty golden trace) plus the skip
/// and quarantine lists from merged journal entries — what the `amsfi
/// merge` subcommand reports on. Cases appear in index order, so two merges
/// of the same shards produce byte-identical reports.
pub fn assemble(
    entries: &BTreeMap<usize, JournalEntry>,
) -> (CampaignResult, Vec<SkippedCase>, Vec<QuarantinedCase>) {
    let mut cases = Vec::new();
    let mut skipped = Vec::new();
    let mut quarantined = Vec::new();
    for entry in entries.values() {
        match entry {
            JournalEntry::Done(result) => cases.push(result.clone()),
            JournalEntry::Skipped(skip) => skipped.push(skip.clone()),
            JournalEntry::Quarantined(q) => quarantined.push(q.clone()),
        }
    }
    (
        CampaignResult {
            golden: Trace::new(),
            cases,
        },
        skipped,
        quarantined,
    )
}

/// Which of `total` cases are still missing from `entries` and owned by
/// `shard` — the work list of a (resumed) run. Completed cases are done;
/// quarantined cases are poison and deliberately never re-claimed.
pub fn pending(entries: &BTreeMap<usize, JournalEntry>, total: usize, shard: Shard) -> Vec<usize> {
    shard
        .case_indices(total)
        .filter(|i| !is_settled(entries, *i))
        .collect()
}

/// The complement of [`pending`]: which of `total` cases owned by
/// `shard` are already settled in `entries` (done or quarantined) and
/// must never be re-executed. This is the `done=` list a coordinator
/// hands out when re-leasing a shard after a worker death or its own
/// crash-recovery replay.
pub fn settled(entries: &BTreeMap<usize, JournalEntry>, total: usize, shard: Shard) -> Vec<usize> {
    shard
        .case_indices(total)
        .filter(|i| is_settled(entries, *i))
        .collect()
}

fn is_settled(entries: &BTreeMap<usize, JournalEntry>, index: usize) -> bool {
    matches!(
        entries.get(&index),
        Some(JournalEntry::Done(_) | JournalEntry::Quarantined(_))
    )
}

/// Formats the journal v2 `case` record for one classified case — exactly
/// the line [`Journal::record_case`] appends. Public so remote workers can
/// stream records that merge byte-identically with locally written ones.
pub fn case_line(index: usize, result: &CaseResult, forked: Option<Time>) -> String {
    let o = &result.outcome;
    let simfail = match &o.failure {
        Some(f) => format!(" simfail={}", escape(&f.to_string())),
        None => String::new(),
    };
    let sealed = match o.sealed_at {
        Some(t) => format!(" sealed_at={}", t.as_fs()),
        None => String::new(),
    };
    format!(
        "case {index} at={} class={} onset={} end={} mismatch={} affected={} forked={}{sealed}{simfail} label={}",
        result.case.injected_at.as_fs(),
        o.class,
        opt_fs(o.error_onset),
        opt_fs(o.error_end),
        o.total_mismatch.as_fs(),
        if o.affected.is_empty() {
            "-".to_owned()
        } else {
            o.affected
                .iter()
                .map(|s| escape(s))
                .collect::<Vec<_>>()
                .join("|")
        },
        opt_fs(forked),
        escape(&result.case.label),
    )
}

/// Formats the journal v2 `skip` record for one abandoned case.
pub fn skip_line(skip: &SkippedCase) -> String {
    format!(
        "skip {} at={} attempts={} label={} error={}",
        skip.index,
        skip.case.injected_at.as_fs(),
        skip.attempts,
        escape(&skip.case.label),
        escape(&skip.error),
    )
}

/// Formats the journal v2 quarantine record for one poison case.
pub fn quarantine_line(q: &QuarantinedCase) -> String {
    format!(
        "skip {} at={} attempts={} label={} error={} quarantine={}",
        q.index,
        q.case.injected_at.as_fs(),
        q.attempts,
        escape(&q.case.label),
        escape(&q.reason),
        escape(&q.reason),
    )
}

/// Parses one journal v2 record line into `(case index, entry)`.
///
/// `None` on malformed input. This is [`load`]'s per-line parser exposed
/// for the distributed coordinator, which validates each streamed record
/// before appending it to the campaign's merged journal.
pub fn parse_line(line: &str) -> Option<(usize, JournalEntry)> {
    let entry = parse_record(line)?;
    let index = match &entry {
        JournalEntry::Done(_) => index_of(line),
        JournalEntry::Skipped(s) => Some(s.index),
        JournalEntry::Quarantined(q) => Some(q.index),
    }?;
    Some((index, entry))
}

fn opt_fs(t: Option<Time>) -> String {
    t.map_or_else(|| "-".to_owned(), |t| t.as_fs().to_string())
}

fn parse_opt_fs(s: &str) -> Option<Option<Time>> {
    if s == "-" {
        Some(None)
    } else {
        s.parse::<i64>().ok().map(|fs| Some(Time::from_fs(fs)))
    }
}

/// Escapes free text into a whitespace- and `|`-free token value.
///
/// Journals are line-oriented and records are whitespace-tokenised, so
/// values must not contain whitespace; `|` is the `affected` list
/// separator. The escaping is lossless — see [`unescape`] — which is what
/// makes arbitrary solver error messages survive a write/`--resume` round
/// trip (format v1 word-split them and corrupted resumed reports). Public
/// because the distributed wire protocol tokenises its frames the same
/// way.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '|' => out.push_str("\\p"),
            // Any other whitespace (vertical tab, form feed, NEL, U+2028…)
            // or control character would still break tokenisation or the
            // line framing: hex-escape it.
            c if c.is_whitespace() || c.is_control() => {
                out.push_str(&format!("\\x{:x};", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on a malformed escape sequence.
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            's' => out.push(' '),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'p' => out.push('|'),
            'x' => {
                let hex: String = chars.by_ref().take_while(|&c| c != ';').collect();
                out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

fn parse_header(line: &str) -> Option<JournalMeta> {
    let rest = line.strip_prefix("#campaign ")?;
    let mut name = None;
    let mut cases = None;
    let mut fp = None;
    for token in rest.split_whitespace() {
        let (key, value) = token.split_once('=')?;
        match key {
            "name" => name = Some(unescape(value)?),
            "cases" => cases = value.parse::<usize>().ok(),
            "fingerprint" => fp = u64::from_str_radix(value, 16).ok(),
            _ => {}
        }
    }
    Some(JournalMeta {
        name: name?,
        cases: cases?,
        fingerprint: fp?,
    })
}

fn index_of(line: &str) -> Option<usize> {
    line.split_whitespace().nth(1)?.parse().ok()
}

fn parse_record(line: &str) -> Option<JournalEntry> {
    let mut tokens = line.split_whitespace();
    let kind = tokens.next()?;
    let index: usize = tokens.next()?.parse().ok()?;
    let mut at = None;
    let mut class = None;
    let mut onset = None;
    let mut end = None;
    let mut mismatch = None;
    let mut affected = None;
    let mut attempts = None;
    let mut label = None;
    let mut error = None;
    let mut quarantine = None;
    let mut simfail = None;
    let mut sealed_at = None;
    for token in tokens {
        // `split_once` keeps any further `=` inside the value.
        let (key, value) = token.split_once('=')?;
        match key {
            "at" => at = Some(Time::from_fs(value.parse::<i64>().ok()?)),
            "class" => class = Some(value.parse::<FaultClass>().ok()?),
            "onset" => onset = Some(parse_opt_fs(value)?),
            "end" => end = Some(parse_opt_fs(value)?),
            "mismatch" => mismatch = Some(Time::from_fs(value.parse::<i64>().ok()?)),
            "affected" => {
                affected = Some(if value == "-" {
                    Vec::new()
                } else {
                    value
                        .split('|')
                        .map(unescape)
                        .collect::<Option<Vec<String>>>()?
                });
            }
            "attempts" => attempts = Some(value.parse::<u32>().ok()?),
            "label" => label = Some(unescape(value)?),
            "error" => error = Some(unescape(value)?),
            "quarantine" => quarantine = Some(unescape(value)?),
            "simfail" => simfail = Some(unescape(value)?.parse::<SimFailure>().ok()?),
            "sealed_at" => sealed_at = Some(Time::from_fs(value.parse::<i64>().ok()?)),
            // Unknown keys (e.g. `forked`) are informational: skip them so
            // newer writers stay readable by this parser.
            _ => {}
        }
    }
    let case = FaultCase::new(label?, at?);
    match kind {
        "case" => Some(JournalEntry::Done(CaseResult {
            case,
            outcome: CaseOutcome {
                class: class?,
                error_onset: onset?,
                error_end: end?,
                total_mismatch: mismatch?,
                affected: affected?,
                failure: simfail,
                sealed_at,
            },
        })),
        "skip" => match quarantine {
            Some(reason) => Some(JournalEntry::Quarantined(QuarantinedCase {
                index,
                case,
                attempts: attempts?,
                reason,
            })),
            None => Some(JournalEntry::Skipped(SkippedCase {
                index,
                case,
                attempts: attempts?,
                error: error.unwrap_or_default(),
            })),
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn unique_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "amsfi-journal-test-{}-{tag}-{n}.journal",
            std::process::id()
        ))
    }

    fn sample_cases() -> Vec<FaultCase> {
        (0..4)
            .map(|i| FaultCase::new(format!("bit{i} @ 5 us"), Time::from_us(5)))
            .collect()
    }

    fn sample_result(i: usize) -> CaseResult {
        CaseResult {
            case: sample_cases()[i].clone(),
            outcome: CaseOutcome {
                class: if i.is_multiple_of(2) {
                    FaultClass::NoEffect
                } else {
                    FaultClass::Failure
                },
                error_onset: (i % 2 == 1).then(|| Time::from_ns(100)),
                error_end: (i % 2 == 1).then(|| Time::from_ns(900)),
                total_mismatch: Time::from_ns(800 * (i % 2) as i64),
                affected: if i % 2 == 1 {
                    vec!["out".to_owned()]
                } else {
                    Vec::new()
                },
                failure: None,
                sealed_at: (i % 3 == 1).then(|| Time::from_ns(950)),
            },
        }
    }

    #[test]
    fn records_round_trip_exactly() {
        let path = unique_path("roundtrip");
        let cases = sample_cases();
        let meta = JournalMeta::of("toy", &cases);
        let (journal, existing) = Journal::open(&path, &meta, false).unwrap();
        assert!(existing.is_empty());
        for i in 0..3 {
            let forked = (i > 0).then(|| Time::from_us(5));
            journal.record_case(i, &sample_result(i), forked).unwrap();
        }
        journal
            .record_skip(&SkippedCase {
                index: 3,
                case: cases[3].clone(),
                attempts: 2,
                error: "solver blew\nup".to_owned(),
            })
            .unwrap();
        drop(journal);

        let (found, entries) = load(&path).unwrap();
        assert_eq!(found, meta);
        assert_eq!(entries.len(), 4);
        for i in 0..3 {
            match &entries[&i] {
                JournalEntry::Done(r) => assert_eq!(r, &sample_result(i)),
                other => panic!("expected Done, got {other:?}"),
            }
        }
        match &entries[&3] {
            JournalEntry::Skipped(s) => {
                assert_eq!(s.attempts, 2);
                // v2 escapes instead of sanitising: the error is lossless.
                assert_eq!(s.error, "solver blew\nup");
            }
            other => panic!("expected Skipped, got {other:?}"),
        }
        // The forked instants were written and tolerated by the parser.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("forked=5000000000"), "{text}");
        assert!(text.contains("forked=-"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hostile_error_and_label_text_round_trips() {
        let path = unique_path("hostile");
        // Labels and errors full of the characters that broke format v1:
        // whitespace, `=`, `|`, the ` error=` field marker itself, and
        // exotic Unicode whitespace.
        let label = "pfd.up error= |weird\ttarget| a=b";
        let error = "diverged: dt=1e-15 |state| at line\u{2028}two \\ end ";
        let cases = vec![FaultCase::new(label, Time::from_us(5)); 2];
        let meta = JournalMeta::of("hostile name=x", &cases);
        let (journal, _) = Journal::open(&path, &meta, false).unwrap();
        journal
            .record_skip(&SkippedCase {
                index: 0,
                case: cases[0].clone(),
                attempts: 1,
                error: error.to_owned(),
            })
            .unwrap();
        let mut done = sample_result(1);
        done.case = cases[1].clone();
        done.outcome.affected = vec!["a b".to_owned(), "c|d".to_owned()];
        journal.record_case(1, &done, None).unwrap();
        drop(journal);

        // Re-open with resume: exactly what a killed run does.
        let (_, entries) = Journal::open(&path, &meta, true).unwrap();
        match &entries[&0] {
            JournalEntry::Skipped(s) => {
                assert_eq!(s.error, error);
                assert_eq!(s.case.label, label);
            }
            other => panic!("expected Skipped, got {other:?}"),
        }
        match &entries[&1] {
            JournalEntry::Done(r) => assert_eq!(r, &done),
            other => panic!("expected Done, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_refuses_existing_without_resume() {
        let path = unique_path("noresume");
        let meta = JournalMeta::of("toy", &sample_cases());
        let (j, _) = Journal::open(&path, &meta, false).unwrap();
        drop(j);
        let err = Journal::open(&path, &meta, false).unwrap_err();
        assert!(matches!(err, JournalError::ExistsWithoutResume(_)), "{err}");
        // With resume it opens fine and returns the (empty) record set.
        let (_, entries) = Journal::open(&path, &meta, true).unwrap();
        assert!(entries.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_a_different_campaign() {
        let path = unique_path("mismatch");
        let meta = JournalMeta::of("toy", &sample_cases());
        let (j, _) = Journal::open(&path, &meta, false).unwrap();
        drop(j);
        let other = JournalMeta::of("other", &sample_cases());
        let err = Journal::open(&path, &other, true).unwrap_err();
        assert!(
            matches!(err, JournalError::CampaignMismatch { .. }),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn later_case_record_supersedes_skip_but_not_vice_versa() {
        let path = unique_path("supersede");
        let cases = sample_cases();
        let meta = JournalMeta::of("toy", &cases);
        let (journal, _) = Journal::open(&path, &meta, false).unwrap();
        journal
            .record_skip(&SkippedCase {
                index: 1,
                case: cases[1].clone(),
                attempts: 1,
                error: "first try".to_owned(),
            })
            .unwrap();
        journal.record_case(1, &sample_result(1), None).unwrap();
        // A stray later skip must not demote the completed case.
        journal
            .record_skip(&SkippedCase {
                index: 1,
                case: cases[1].clone(),
                attempts: 1,
                error: "late duplicate".to_owned(),
            })
            .unwrap();
        drop(journal);
        let (_, entries) = load(&path).unwrap();
        assert!(matches!(&entries[&1], JournalEntry::Done(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_combines_disjoint_shards() {
        let cases = sample_cases();
        let meta = JournalMeta::of("toy", &cases);
        let paths = [unique_path("merge0"), unique_path("merge1")];
        for (shard, path) in paths.iter().enumerate() {
            let (journal, _) = Journal::open(path, &meta, false).unwrap();
            for i in (shard..4).step_by(2) {
                journal.record_case(i, &sample_result(i), None).unwrap();
            }
        }
        let (meta_back, entries) = merge(&paths).unwrap();
        assert_eq!(meta_back, meta);
        assert_eq!(entries.len(), 4);
        let (result, skipped, quarantined) = assemble(&entries);
        assert!(skipped.is_empty());
        assert!(quarantined.is_empty());
        assert_eq!(result.cases.len(), 4);
        // Index order regardless of which shard wrote what.
        assert_eq!(result.cases[0].case.label, "bit0 @ 5 us");
        assert_eq!(result.cases[3].case.label, "bit3 @ 5 us");
        for path in &paths {
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn quarantine_round_trips_and_is_excluded_from_pending() {
        let path = unique_path("quarantine");
        let cases = sample_cases();
        let meta = JournalMeta::of("toy", &cases);
        let (journal, _) = Journal::open(&path, &meta, false).unwrap();
        let q = QuarantinedCase {
            index: 2,
            case: cases[2].clone(),
            attempts: 4,
            reason: "non-finite signal=vctrl t=170000000000".to_owned(),
        };
        journal.record_quarantine(&q).unwrap();
        journal
            .record_skip(&SkippedCase {
                index: 1,
                case: cases[1].clone(),
                attempts: 1,
                error: "transient flake".to_owned(),
            })
            .unwrap();
        drop(journal);

        let (_, entries) = load(&path).unwrap();
        assert_eq!(entries[&2], JournalEntry::Quarantined(q.clone()));
        // Plain skips stay pending (they are retried on resume); the
        // quarantined poison case is not.
        assert_eq!(pending(&entries, 4, Shard::FULL), vec![0, 1, 3]);
        let (_, skipped, quarantined) = assemble(&entries);
        assert_eq!(skipped.len(), 1);
        assert_eq!(quarantined, vec![q]);

        // Merging preserves the quarantine record.
        let (_, merged) = merge(std::slice::from_ref(&path)).unwrap();
        assert!(matches!(&merged[&2], JournalEntry::Quarantined(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quarantine_never_demotes_a_done_case() {
        let path = unique_path("quarantine-demote");
        let cases = sample_cases();
        let meta = JournalMeta::of("toy", &cases);
        let (journal, _) = Journal::open(&path, &meta, false).unwrap();
        journal.record_case(1, &sample_result(1), None).unwrap();
        journal
            .record_quarantine(&QuarantinedCase {
                index: 1,
                case: cases[1].clone(),
                attempts: 4,
                reason: "late duplicate".to_owned(),
            })
            .unwrap();
        drop(journal);
        let (_, entries) = load(&path).unwrap();
        assert!(matches!(&entries[&1], JournalEntry::Done(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simfail_key_round_trips_the_failure_taxonomy() {
        let path = unique_path("simfail");
        let cases = sample_cases();
        let meta = JournalMeta::of("toy", &cases);
        let (journal, _) = Journal::open(&path, &meta, false).unwrap();
        let mut result = sample_result(0);
        result.outcome.class = FaultClass::SimFailure;
        result.outcome.failure = Some(SimFailure::NonFinite {
            signal: "vctrl out".to_owned(),
            t: Time::from_ns(170),
        });
        journal.record_case(0, &result, None).unwrap();
        drop(journal);
        let (_, entries) = load(&path).unwrap();
        match &entries[&0] {
            JournalEntry::Done(r) => assert_eq!(r, &result),
            other => panic!("expected Done, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_tolerated_but_interior_corruption_is_not() {
        use std::io::Write as _;
        let path = unique_path("torn");
        let cases = sample_cases();
        let meta = JournalMeta::of("toy", &cases);
        let (journal, _) = Journal::open(&path, &meta, false).unwrap();
        journal.record_case(0, &sample_result(0), None).unwrap();
        journal.record_case(1, &sample_result(1), None).unwrap();
        drop(journal);

        // Simulate a kill mid-write: append a truncated record with some
        // invalid UTF-8 thrown in.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"case 2 at=5000000000 cla\xFF\xFE").unwrap();
        drop(f);
        let (_, entries) = load(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(pending(&entries, 4, Shard::FULL), vec![2, 3]);

        // The same garbage in the middle of the journal is corruption.
        let text = String::from_utf8_lossy(&std::fs::read(&path).unwrap()).into_owned();
        let rotated: String = {
            let mut lines: Vec<&str> = text.lines().collect();
            let torn = lines.pop().unwrap();
            lines.insert(2, torn);
            lines.join("\n") + "\n"
        };
        std::fs::write(&path, rotated).unwrap();
        assert!(matches!(load(&path), Err(JournalError::Malformed(_, _, _))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pending_respects_shard_and_completed_entries() {
        let path = unique_path("pending");
        let cases = sample_cases();
        let meta = JournalMeta::of("toy", &cases);
        let (journal, _) = Journal::open(&path, &meta, false).unwrap();
        journal.record_case(0, &sample_result(0), None).unwrap();
        drop(journal);
        let (_, entries) = load(&path).unwrap();
        assert_eq!(pending(&entries, 4, Shard::FULL), vec![1, 2, 3]);
        let shard0: Shard = "0/2".parse().unwrap();
        assert_eq!(pending(&entries, 4, shard0), vec![2]);
        std::fs::remove_file(&path).ok();
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Characters chosen to stress the v2 escaping: plain text, every
        /// escaped class (whitespace, `|`, `\`, controls, Unicode spaces),
        /// and the `key=value` / ` error=` framing characters.
        fn hostile_chars() -> Vec<char> {
            vec![
                'a', 'Z', '0', '.', ':', ';', '(', ')', '/', '-', '_', 'µ', '→', ' ', '\t', '\n',
                '\r', '|', '\\', '=', '#', '\u{b}', '\u{c}', '\u{a0}', '\u{2028}', '\u{0}', 's',
                'x', 'p', 'n',
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn arbitrary_error_and_label_strings_round_trip(
                error_chars in prop::collection::vec(prop::sample::select(hostile_chars()), 0..40),
                label_chars in prop::collection::vec(prop::sample::select(hostile_chars()), 0..20),
                attempts in 1u32..9,
            ) {
                let error: String = error_chars.into_iter().collect();
                let label: String = label_chars.into_iter().collect();
                let path = unique_path("prop");
                let cases = vec![FaultCase::new(label.clone(), Time::from_ns(17))];
                let meta = JournalMeta::of("prop", &cases);
                let (journal, _) = Journal::open(&path, &meta, false).unwrap();
                journal
                    .record_skip(&SkippedCase {
                        index: 0,
                        case: cases[0].clone(),
                        attempts,
                        error: error.clone(),
                    })
                    .unwrap();
                drop(journal);
                let (_, entries) = load(&path).unwrap();
                std::fs::remove_file(&path).ok();
                match &entries[&0] {
                    JournalEntry::Skipped(s) => {
                        prop_assert_eq!(&s.error, &error);
                        prop_assert_eq!(&s.case.label, &label);
                        prop_assert_eq!(s.attempts, attempts);
                    }
                    other => prop_assert!(false, "expected Skipped, got {:?}", other),
                }
            }

            #[test]
            fn escape_unescape_is_the_identity(
                chars in prop::collection::vec(prop::sample::select(hostile_chars()), 0..60),
            ) {
                let s: String = chars.into_iter().collect();
                let escaped = escape(&s);
                prop_assert!(
                    !escaped.chars().any(|c| c.is_whitespace() || c == '|'),
                    "escaped text still has separators: {:?}",
                    escaped
                );
                prop_assert_eq!(unescape(&escaped), Some(s));
            }
        }
    }

    #[test]
    fn fingerprint_depends_on_labels_and_times() {
        let a = sample_cases();
        let mut b = sample_cases();
        b[2].injected_at = Time::from_us(6);
        assert_ne!(fingerprint("toy", &a), fingerprint("toy", &b));
        assert_ne!(fingerprint("toy", &a), fingerprint("other", &a));
        assert_eq!(fingerprint("toy", &a), fingerprint("toy", &sample_cases()));
    }
}
