//! Campaign observability: lock-free counters updated by the workers,
//! periodic progress lines, and a per-stage wall-clock breakdown.
//!
//! All counters are relaxed atomics — they are statistics, not
//! synchronisation — so the observability layer costs a few nanoseconds per
//! case and never serialises the workers.

use amsfi_core::FaultClass;
use amsfi_telemetry::{prom_sample, prom_type, KernelMetrics};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The pipeline stages the engine attributes wall-clock time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Constructing the circuit instance for a case.
    Build,
    /// Running the (mixed-signal) simulation.
    Simulate,
    /// Comparing against the golden trace and classifying.
    Classify,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 3] = [Stage::Build, Stage::Simulate, Stage::Classify];

    pub(crate) fn idx(self) -> usize {
        match self {
            Stage::Build => 0,
            Stage::Simulate => 1,
            Stage::Classify => 2,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Build => "build",
            Stage::Simulate => "simulate",
            Stage::Classify => "classify",
        })
    }
}

/// Shared live counters for one engine run.
#[derive(Debug)]
pub struct EngineStats {
    started: Instant,
    /// Cases finished (classified or skipped).
    done: AtomicUsize,
    /// Total cases this run will execute (shard-local, excluding resumed).
    total: AtomicUsize,
    /// Per-class tallies, in [`FaultClass::ALL`] order.
    classes: [AtomicUsize; FaultClass::ALL.len()],
    /// Attempts beyond the first, across all cases.
    retries: AtomicUsize,
    /// Attempts that hit the per-case timeout.
    timeouts: AtomicUsize,
    /// Cases abandoned under [`crate::ErrorPolicy::SkipAndRecord`].
    skipped: AtomicUsize,
    /// Cases quarantined after exhausting the retry budget.
    quarantined: AtomicUsize,
    /// Cases pre-counted into `done`/`total` because a previous run already
    /// settled them (resumed `Done` + previously quarantined). They are part
    /// of the summary denominator but must not inflate the live rate.
    seeded: AtomicUsize,
    /// Nanoseconds per [`Stage`].
    stage_ns: [AtomicU64; 3],
    /// The kernel/engine metric registry — the telemetry handle's when
    /// telemetry is enabled, otherwise a private zeroed one so latency
    /// percentiles are always available.
    metrics: Arc<KernelMetrics>,
}

impl EngineStats {
    /// Fresh counters; `total` is the number of cases this run owns.
    pub fn new(total: usize) -> Self {
        Self::with_metrics(total, Arc::new(KernelMetrics::new()))
    }

    /// Fresh counters recording stage/case latency histograms into the
    /// given registry (shared with an enabled telemetry handle).
    pub fn with_metrics(total: usize, metrics: Arc<KernelMetrics>) -> Self {
        EngineStats {
            started: Instant::now(),
            done: AtomicUsize::new(0),
            total: AtomicUsize::new(total),
            classes: Default::default(),
            retries: AtomicUsize::new(0),
            timeouts: AtomicUsize::new(0),
            skipped: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
            seeded: AtomicUsize::new(0),
            stage_ns: Default::default(),
            metrics,
        }
    }

    /// The metric registry shared with the kernels.
    pub fn metrics(&self) -> &Arc<KernelMetrics> {
        &self.metrics
    }

    /// Pre-counts cases settled by a previous run of the same journal so
    /// that the summary denominator covers every case exactly once:
    /// `done` resumed completions of which `quarantined` were quarantined.
    /// Without this, a case quarantined in run N disappeared from run
    /// N+1's `done`/`total`/`quarantined` tallies entirely.
    pub(crate) fn seed_resumed(&self, done: usize, quarantined: usize) {
        debug_assert!(quarantined <= done);
        self.done.fetch_add(done, Ordering::Relaxed);
        self.total.fetch_add(done, Ordering::Relaxed);
        self.quarantined.fetch_add(quarantined, Ordering::Relaxed);
        self.seeded.fetch_add(done, Ordering::Relaxed);
    }

    pub(crate) fn record_class(&self, class: FaultClass) {
        let idx = FaultClass::ALL
            .iter()
            .position(|&c| c == class)
            .unwrap_or(0);
        self.classes[idx].fetch_add(1, Ordering::Relaxed);
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_skip(&self) {
        self.skipped.fetch_add(1, Ordering::Relaxed);
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_quarantine(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `elapsed` to `stage`'s wall-clock tally and the stage's
    /// latency histogram (for p50/p90/p99 reporting).
    pub fn record_stage(&self, stage: Stage, elapsed: Duration) {
        self.stage_ns[stage.idx()].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.metrics.stage_latency_us[stage.idx()].observe(elapsed.as_micros() as u64);
    }

    /// A consistent-enough copy of the counters for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            elapsed: self.started.elapsed(),
            done: self.done.load(Ordering::Relaxed),
            total: self.total.load(Ordering::Relaxed),
            classes: std::array::from_fn(|i| self.classes[i].load(Ordering::Relaxed)),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            seeded: self.seeded.load(Ordering::Relaxed),
            stage_ns: [
                self.stage_ns[0].load(Ordering::Relaxed),
                self.stage_ns[1].load(Ordering::Relaxed),
                self.stage_ns[2].load(Ordering::Relaxed),
            ],
            stage_pctl_us: std::array::from_fn(|i| {
                let hist = &self.metrics.stage_latency_us[i];
                [
                    hist.percentile(50.0),
                    hist.percentile(90.0),
                    hist.percentile(99.0),
                ]
            }),
        }
    }
}

/// A point-in-time copy of [`EngineStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Wall-clock time since the engine run started.
    pub elapsed: Duration,
    /// Cases finished (classified or skipped).
    pub done: usize,
    /// Cases this run owns.
    pub total: usize,
    /// Per-class tallies in [`FaultClass::ALL`] order.
    pub classes: [usize; FaultClass::ALL.len()],
    /// Attempts beyond the first.
    pub retries: usize,
    /// Attempts that timed out.
    pub timeouts: usize,
    /// Cases abandoned after exhausting retries.
    pub skipped: usize,
    /// Cases quarantined after exhausting retries (a subset of the journal's
    /// poison list; disjoint from `skipped`). Includes cases quarantined by
    /// a *previous* run of the same journal, so resumed summaries count
    /// every case exactly once.
    pub quarantined: usize,
    /// Of `done`, how many were settled by a previous run (resumed
    /// completions and prior quarantines). Excluded from [`rate`](Self::rate).
    pub seeded: usize,
    /// Nanoseconds attributed to each [`Stage`].
    pub stage_ns: [u64; 3],
    /// Per-stage latency percentiles `[p50, p90, p99]` in microseconds,
    /// indexed like [`Stage::ALL`]. Resolved from base-2 log histograms, so
    /// each value is the upper bound of its bucket.
    pub stage_pctl_us: [[u64; 3]; 3],
}

impl StatsSnapshot {
    /// Cases completed *by this run* per second of wall-clock time
    /// (seeded/resumed cases are excluded from the numerator).
    pub fn rate(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.done.saturating_sub(self.seeded) as f64 / secs
        }
    }

    /// The per-stage wall-clock breakdown as an aligned text table with
    /// per-attempt latency percentiles (microseconds).
    pub fn stage_table(&self) -> String {
        use std::fmt::Write as _;
        let total_ns: u64 = self.stage_ns.iter().sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>7} {:>10} {:>10} {:>10}",
            "stage", "wall-clock", "share", "p50", "p90", "p99"
        );
        for stage in Stage::ALL {
            let ns = self.stage_ns[stage.idx()];
            let share = if total_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / total_ns as f64
            };
            let [p50, p90, p99] = self.stage_pctl_us[stage.idx()];
            let _ = writeln!(
                out,
                "{:<10} {:>12} {share:>6.1}% {:>10} {:>10} {:>10}",
                stage.to_string(),
                format_ns(ns),
                format_us(p50),
                format_us(p90),
                format_us(p99),
            );
        }
        out
    }

    /// The per-stage breakdown as CSV
    /// (`stage,wall_clock_s,share,p50_us,p90_us,p99_us`).
    pub fn stage_csv(&self) -> String {
        use std::fmt::Write as _;
        let total_ns: u64 = self.stage_ns.iter().sum();
        let mut out = String::from("stage,wall_clock_s,share,p50_us,p90_us,p99_us\n");
        for stage in Stage::ALL {
            let ns = self.stage_ns[stage.idx()];
            let share = if total_ns == 0 {
                0.0
            } else {
                ns as f64 / total_ns as f64
            };
            let [p50, p90, p99] = self.stage_pctl_us[stage.idx()];
            let _ = writeln!(out, "{stage},{},{share},{p50},{p90},{p99}", ns as f64 / 1e9);
        }
        out
    }

    /// Renders the engine-level counters in Prometheus text exposition
    /// format (the kernel registry renders itself separately via
    /// [`KernelMetrics::to_prometheus`]).
    pub fn prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        prom_type(&mut out, "amsfi_cases_done", "gauge");
        prom_sample(&mut out, "amsfi_cases_done", &[], self.done as u64);
        prom_type(&mut out, "amsfi_cases_total", "gauge");
        prom_sample(&mut out, "amsfi_cases_total", &[], self.total as u64);
        prom_type(&mut out, "amsfi_cases_resumed", "gauge");
        prom_sample(&mut out, "amsfi_cases_resumed", &[], self.seeded as u64);
        prom_type(&mut out, "amsfi_case_class_total", "counter");
        for (i, class) in FaultClass::ALL.iter().enumerate() {
            prom_sample(
                &mut out,
                "amsfi_case_class_total",
                &[("class", &class.to_string())],
                self.classes[i] as u64,
            );
        }
        prom_type(&mut out, "amsfi_retries_total", "counter");
        prom_sample(&mut out, "amsfi_retries_total", &[], self.retries as u64);
        prom_type(&mut out, "amsfi_timeouts_total", "counter");
        prom_sample(&mut out, "amsfi_timeouts_total", &[], self.timeouts as u64);
        prom_type(&mut out, "amsfi_skipped_total", "counter");
        prom_sample(&mut out, "amsfi_skipped_total", &[], self.skipped as u64);
        prom_type(&mut out, "amsfi_quarantined_total", "counter");
        prom_sample(
            &mut out,
            "amsfi_quarantined_total",
            &[],
            self.quarantined as u64,
        );
        prom_type(&mut out, "amsfi_stage_wall_nanoseconds_total", "counter");
        for stage in Stage::ALL {
            prom_sample(
                &mut out,
                "amsfi_stage_wall_nanoseconds_total",
                &[("stage", &stage.to_string())],
                self.stage_ns[stage.idx()],
            );
        }
        out
    }
}

impl fmt::Display for StatsSnapshot {
    /// The periodic progress line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>7.1}s] {}/{} cases ({:.1}/s) \
             no-effect={} latent={} transient={} failure={} sim-failure={} \
             retries={} timeouts={} skipped={} quarantined={}",
            self.elapsed.as_secs_f64(),
            self.done,
            self.total,
            self.rate(),
            self.classes[0],
            self.classes[1],
            self.classes[2],
            self.classes[3],
            self.classes[4],
            self.retries,
            self.timeouts,
            self.skipped,
            self.quarantined,
        )
    }
}

fn format_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} us")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{:.2} s", us as f64 / 1e6)
    }
}

fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = EngineStats::new(10);
        stats.record_class(FaultClass::Failure);
        stats.record_class(FaultClass::NoEffect);
        stats.record_retry();
        stats.record_timeout();
        stats.record_skip();
        stats.record_quarantine();
        let snap = stats.snapshot();
        assert_eq!(snap.done, 4);
        assert_eq!(snap.classes, [1, 0, 0, 1, 0]);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.skipped, 1);
        assert_eq!(snap.quarantined, 1);
        assert!(snap.rate() >= 0.0);
    }

    #[test]
    fn stage_breakdown_sums_to_100_percent() {
        let stats = EngineStats::new(1);
        stats.record_stage(Stage::Build, Duration::from_millis(10));
        stats.record_stage(Stage::Simulate, Duration::from_millis(70));
        stats.record_stage(Stage::Classify, Duration::from_millis(20));
        let snap = stats.snapshot();
        let table = snap.stage_table();
        assert!(table.contains("simulate"), "{table}");
        assert!(table.contains("70.0%"), "{table}");
        let csv = snap.stage_csv();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("build,0.01,0.1"), "{csv}");
    }

    #[test]
    fn progress_line_mentions_rate_and_tallies() {
        let stats = EngineStats::new(5);
        stats.record_class(FaultClass::Transient);
        let line = stats.snapshot().to_string();
        assert!(line.contains("1/5 cases"), "{line}");
        assert!(line.contains("transient=1"), "{line}");
    }

    #[test]
    fn seeding_counts_resumed_and_quarantined_once() {
        // A resumed run owning 3 fresh cases, with 2 previously done of
        // which 1 was quarantined: the denominator covers all 5 exactly
        // once and the quarantine tally survives the resume.
        let stats = EngineStats::new(3);
        stats.seed_resumed(2, 1);
        stats.record_class(FaultClass::NoEffect);
        let snap = stats.snapshot();
        assert_eq!(snap.total, 5);
        assert_eq!(snap.done, 3);
        assert_eq!(snap.quarantined, 1);
        assert_eq!(snap.seeded, 2);
        // The live rate only counts this run's single completion.
        assert!(snap.rate() <= snap.done as f64 / snap.elapsed.as_secs_f64());
    }

    #[test]
    fn stage_percentiles_appear_in_table_and_csv() {
        let stats = EngineStats::new(4);
        for ms in [1u64, 2, 4, 100] {
            stats.record_stage(Stage::Simulate, Duration::from_millis(ms));
        }
        let snap = stats.snapshot();
        let [p50, p90, p99] = snap.stage_pctl_us[Stage::Simulate.idx()];
        assert!(p50 <= p90 && p90 <= p99, "{:?}", snap.stage_pctl_us);
        assert!(p99 >= 100_000, "p99 must cover the 100 ms outlier: {p99}");
        let table = snap.stage_table();
        assert!(table.contains("p99"), "{table}");
        let csv = snap.stage_csv();
        assert!(csv.starts_with("stage,wall_clock_s,share,p50_us,p90_us,p99_us"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn prometheus_dump_has_engine_counters() {
        let stats = EngineStats::new(2);
        stats.record_class(FaultClass::Failure);
        stats.record_quarantine();
        let text = stats.snapshot().prometheus();
        assert!(text.contains("amsfi_cases_done 2"), "{text}");
        assert!(
            text.contains("amsfi_case_class_total{class=\"failure\"} 1"),
            "{text}"
        );
        assert!(text.contains("amsfi_quarantined_total 1"), "{text}");
    }
}
