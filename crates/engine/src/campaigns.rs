//! The named case-study campaigns the `amsfi` CLI can run.
//!
//! Each builder returns a self-contained [`Campaign`]: the fault list, the
//! classification spec, and a runner closure that rebuilds the circuit per
//! case (simulator state is not shareable across threads, and rebuilding is
//! what the engine's build/simulate stage split measures).
//!
//! The definitions mirror the standalone study binaries in `crates/bench`
//! (`fig8_parameter_sweep`, `ext_digital_campaign`, `ext_adc_sensitivity`,
//! `ext_cpu_campaign`) so engine runs are comparable with the legacy path.

use crate::executor::{Campaign, CaseCtx};
use crate::stats::Stage;
use amsfi_circuits::adc::{self, AdcInput};
use amsfi_circuits::cpu::{checksum_program, TinyCpu};
use amsfi_circuits::pll::{self, names};
use amsfi_core::{plan, ClassifySpec, FaultCase};
use amsfi_digital::{cells, ComponentId, Netlist, Simulator};
use amsfi_faults::TrapezoidPulse;
use amsfi_waves::{Logic, Time, Tolerance};
use std::sync::Arc;

/// `(name, description)` of every campaign [`build`] understands.
pub fn catalog() -> [(&'static str, &'static str); 4] {
    [
        (
            "pll-sweep",
            "Fig. 8 current-pulse parameter sweep on the PLL loop filter \
             (paper's four sets + amplitude x width grid, 24 cases)",
        ),
        (
            "pll-digital",
            "exhaustive SEU campaign over the fast PLL's digital blocks and \
             payload (Section 3 digital flow)",
        ),
        (
            "adc-flash",
            "flash ADC sensitivity: analog input strikes vs digital SEUs \
             (the paper's mixed-signal future-work case)",
        ),
        (
            "cpu",
            "SEU campaign over a tiny accumulator CPU running a checksum \
             program (processor case study of reference [2])",
        ),
    ]
}

/// Builds a named campaign, optionally truncated to its first `limit`
/// cases (handy for smoke tests; the truncation changes the campaign
/// fingerprint, so differently-limited journals never merge by accident).
pub fn build(name: &str, limit: Option<usize>) -> Option<Campaign> {
    let mut campaign = match name {
        "pll-sweep" => pll_sweep(),
        "pll-digital" => pll_digital(),
        "adc-flash" => adc_flash(),
        "cpu" => cpu(),
        _ => return None,
    };
    if let Some(limit) = limit {
        campaign.cases.truncate(limit);
    }
    Some(campaign)
}

/// The Fig. 8 pulse list: the paper's four `(PA, RT, FT, PW)` sets plus the
/// amplitude x width grid at 100 ps edges.
fn fig8_pulses() -> Vec<(TrapezoidPulse, String)> {
    let mut pulses = Vec::new();
    for &(pa, rt, ft, pw) in &[
        (2.0, 100_i64, 100_i64, 300_i64),
        (8.0, 100, 100, 300),
        (10.0, 40, 40, 120),
        (10.0, 180, 180, 540),
    ] {
        let pulse = TrapezoidPulse::from_ma_ps(pa, rt, ft, pw).expect("paper set");
        pulses.push((pulse, format!("({pa} mA; {rt} ps; {ft} ps; {pw} ps)")));
    }
    for &pa in &[1.0, 2.0, 5.0, 10.0, 20.0] {
        for &pw in &[150_i64, 300, 600, 1200] {
            let pulse = TrapezoidPulse::from_ma_ps(pa, 100, 100, pw).expect("grid set");
            pulses.push((pulse, format!("({pa} mA; PW {pw} ps)")));
        }
    }
    pulses
}

fn pll_sweep() -> Campaign {
    const T_END: Time = Time::from_us(200);
    const T_INJECT: Time = Time::from_us(170);
    let pulses = fig8_pulses();
    let cases = pulses
        .iter()
        .map(|(_, label)| FaultCase::new(format!("icp {label}"), T_INJECT))
        .collect();
    let spec = ClassifySpec::new((Time::from_us(165), T_END), vec![names::F_OUT.to_owned()])
        .with_internals(vec![names::VCTRL.to_owned(), names::FB.to_owned()])
        .with_tolerance(Tolerance::new(0.05, 0.01))
        .with_digital_skew(Time::from_ns(2))
        // The PLL takes several microseconds to visibly re-lock (or visibly
        // fail to): divergence onsets trail the strike by up to ~5 us, so the
        // streaming classifier must hold the settle window longer than the
        // default recovery margin before calling a state final.
        .with_settle(Time::from_us(8));
    let pulses: Arc<Vec<(TrapezoidPulse, String)>> = Arc::new(pulses);
    // `Campaign::forked` arms the saboteur in place on a simulator already
    // positioned at T_INJECT instead of baking the fault into the build
    // (equivalent by `amsfi_circuits::pll` test
    // `arming_in_place_equals_arming_at_build`), which is what lets
    // `--checkpoint` fork every case from one golden prefix.
    Campaign::forked(
        "pll-sweep",
        spec,
        cases,
        T_END,
        |ctx: &CaseCtx| {
            ctx.stage(Stage::Build);
            let mut bench = pll::build(&pll::PllConfig::default());
            bench.monitor_standard();
            Ok(bench)
        },
        move |bench: &mut pll::PllBench, i| {
            bench.arm_saboteur(Arc::new(pulses[i].0), T_INJECT);
            Ok(())
        },
    )
}

fn pll_digital() -> Campaign {
    const T_END: Time = Time::from_us(30);
    let mut config = pll::PllConfig::fast();
    config.payload = true;

    let probe = pll::build(&config);
    let targets = probe.mixed.digital().mutant_targets();
    let times = plan::uniform_times(Time::from_us(12), Time::from_us(16), 4);

    let mut cases = Vec::new();
    let mut index = Vec::new();
    for (ti, &at) in times.iter().enumerate() {
        for (gi, target) in targets.iter().enumerate() {
            cases.push(FaultCase::new(format!("{target} @ {at}"), at));
            index.push((gi, ti));
        }
    }

    let mut outputs: Vec<String> = (0..8).map(|i| format!("{}[{i}]", names::COUNT)).collect();
    outputs.push(names::SHIFT_OUT.to_owned());
    let spec = ClassifySpec::new((Time::from_us(12), T_END), outputs)
        .with_internals(vec![names::FB.to_owned(), names::VCTRL.to_owned()])
        .with_tolerance(Tolerance::new(0.05, 0.01))
        .with_digital_skew(Time::from_ns(2));

    let targets = Arc::new(targets);
    let index = Arc::new(index);
    Campaign::forked(
        "pll-digital",
        spec,
        cases,
        T_END,
        move |ctx: &CaseCtx| {
            ctx.stage(Stage::Build);
            let mut bench = pll::build(&config);
            bench.monitor_standard();
            Ok(bench)
        },
        move |bench: &mut pll::PllBench, i| {
            let (gi, _ti) = index[i];
            let target = &targets[gi];
            bench
                .mixed
                .digital_mut()
                .flip_state(target.component, target.bit);
            Ok(())
        },
    )
}

fn adc_flash() -> Campaign {
    const T_END: Time = Time::from_us(10);
    let base = adc::FlashAdcConfig {
        input: AdcInput::Sine {
            freq_hz: 100e3,
            amplitude: 2.0,
            offset: 2.5,
        },
        ..adc::FlashAdcConfig::default()
    };
    let pulses = plan::pulse_grid(
        &[-10.0, -5.0, 5.0, 10.0],
        &[100],
        &[100],
        &[500, 20_000, 200_000],
    );
    let times = plan::random_times(Time::from_us(2), Time::from_us(8), 8, 11);
    let probe = adc::build_flash(&base);
    let targets = probe.mixed.digital().mutant_targets();

    // First the analog-surface strikes, then an equally sized block of
    // digital SEUs (cycling over the register bits), as in the standalone
    // `ext_adc_sensitivity` study.
    let mut cases = Vec::new();
    let mut setup = Vec::new();
    for (pi, p) in pulses.iter().enumerate() {
        for (ti, &at) in times.iter().enumerate() {
            cases.push(FaultCase::new(format!("input {p}"), at));
            setup.push(AdcCase::Strike(pi, ti));
        }
    }
    let n_analog = cases.len();
    for i in 0..n_analog {
        let gi = i % targets.len();
        let ti = i % times.len();
        cases.push(FaultCase::new(targets[gi].to_string(), times[ti]));
        setup.push(AdcCase::Flip(gi, ti));
    }

    let outputs = (0..3)
        .map(|i| format!("{}[{i}]", adc::FLASH_CODE))
        .collect();
    let spec = ClassifySpec::new((Time::from_us(1), T_END), outputs);

    let pulses = Arc::new(pulses);
    let times = Arc::new(times);
    let targets = Arc::new(targets);
    let setup = Arc::new(setup);
    Campaign {
        name: "adc-flash".to_owned(),
        spec,
        cases,
        runner: Arc::new(move |ctx: &CaseCtx| {
            ctx.stage(Stage::Build);
            let mut cfg = base.clone();
            let flip = match ctx.index().map(|i| setup[i]) {
                Some(AdcCase::Strike(pi, ti)) => {
                    cfg = cfg.with_fault(pulses[pi], times[ti]);
                    None
                }
                Some(AdcCase::Flip(gi, ti)) => Some((gi, ti)),
                None => None,
            };
            let mut bench = adc::build_flash(&cfg);
            bench.mixed.digital_mut().monitor_name(adc::FLASH_CODE);
            ctx.stage(Stage::Simulate);
            if let Some((gi, ti)) = flip {
                bench.mixed.run_until(times[ti])?;
                let t = &targets[gi];
                bench.mixed.digital_mut().flip_state(t.component, t.bit);
            }
            bench.mixed.run_until(T_END)?;
            Ok(bench.mixed.merged_trace())
        }),
        // Strikes are armed at config level (before build), so this
        // campaign cannot fork from a shared golden prefix; `--checkpoint`
        // falls back to the from-scratch runner.
        fork: None,
    }
}

/// How one `adc-flash` case perturbs the converter.
#[derive(Clone, Copy)]
enum AdcCase {
    /// Current strike `pulses[.0]` on the input node at `times[.1]`.
    Strike(usize, usize),
    /// Bit-flip of `targets[.0]` at `times[.1]`.
    Flip(usize, usize),
}

fn cpu() -> Campaign {
    const T_END: Time = Time::from_us(20);
    fn build_sim() -> Simulator {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let out = net.signal("out", 8);
        let pc = net.signal("pc", 6);
        net.add("ck", cells::ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
        let _cpu: ComponentId = net.add(
            "cpu",
            TinyCpu::new(checksum_program(), Time::ZERO),
            &[clk, rst],
            &[out, pc],
        );
        let mut sim = Simulator::new(net);
        sim.monitor_name("out");
        sim
    }

    let targets = build_sim().mutant_targets();
    let times = plan::uniform_times(Time::from_us(2), Time::from_us(4), 3);
    let mut cases = Vec::new();
    let mut index = Vec::new();
    for (ti, &at) in times.iter().enumerate() {
        for (gi, t) in targets.iter().enumerate() {
            cases.push(FaultCase::new(format!("{t} @ {at}"), at));
            index.push((gi, ti));
        }
    }
    let spec = ClassifySpec::new(
        (Time::from_us(2), T_END),
        (0..8).map(|i| format!("out[{i}]")).collect(),
    );

    let targets = Arc::new(targets);
    let index = Arc::new(index);
    Campaign::forked(
        "cpu",
        spec,
        cases,
        T_END,
        |ctx: &CaseCtx| {
            ctx.stage(Stage::Build);
            Ok(build_sim())
        },
        move |sim: &mut Simulator, i| {
            let (gi, _ti) = index[i];
            let t = &targets[gi];
            sim.flip_state(t.component, t.bit);
            Ok(())
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_entry_builds() {
        for (name, _) in catalog() {
            let campaign = build(name, None).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(campaign.name, name);
            assert!(!campaign.cases.is_empty(), "{name} has no cases");
        }
        assert!(build("nope", None).is_none());
    }

    #[test]
    fn limit_truncates_and_changes_the_fingerprint() {
        let full = build("pll-sweep", None).unwrap();
        let limited = build("pll-sweep", Some(4)).unwrap();
        assert_eq!(limited.cases.len(), 4);
        assert_eq!(full.cases.len(), 24);
        assert_ne!(full.meta(), limited.meta());
    }

    #[test]
    fn case_lists_are_deterministic_across_builds() {
        for (name, _) in catalog() {
            let a = build(name, None).unwrap();
            let b = build(name, None).unwrap();
            assert_eq!(a.meta(), b.meta(), "{name} fingerprint unstable");
        }
    }
}
