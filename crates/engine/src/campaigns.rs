//! The named case-study campaigns the `amsfi` CLI can run.
//!
//! Each builder returns a self-contained [`Campaign`]: the fault list, the
//! classification spec, and a runner closure that rebuilds the circuit per
//! case (simulator state is not shareable across threads, and rebuilding is
//! what the engine's build/simulate stage split measures).
//!
//! The definitions mirror the standalone study binaries in `crates/bench`
//! (`fig8_parameter_sweep`, `ext_digital_campaign`, `ext_adc_sensitivity`,
//! `ext_cpu_campaign`) so engine runs are comparable with the legacy path.

use crate::executor::{BatchCaseOutcome, BatchSpec, Campaign, CaseCtx, LaneHooks};
use crate::stats::Stage;
use crate::BoxError;
use amsfi_circuits::adc::{self, AdcInput};
use amsfi_circuits::cpu::{checksum_program, TinyCpu};
use amsfi_circuits::pll::{self, names};
use amsfi_core::{plan, ClassifySpec, FaultCase};
use amsfi_digital::{
    cells, BatchSimulator, ComponentId, DigitalSaboteur, InjectTarget, LaneOutcome, Netlist,
    Simulator, WordBatchSimulator,
};
use amsfi_faults::{DigitalFault, DigitalFaultKind, TrapezoidPulse};
use amsfi_waves::{ForkableSim, Logic, Time, Tolerance};
use std::sync::Arc;

impl Campaign {
    /// [`Campaign::forked`] for pure-digital campaigns, plus a
    /// [`BatchSpec`] so `--batch` runs case groups bit-parallel through
    /// one [`BatchSimulator`], plus a word spec so `--batch --word` runs
    /// them through one plane-valued [`WordBatchSimulator`].
    ///
    /// All four execution paths (scalar from-scratch, checkpoint fork,
    /// lane-cloned batch, word-parallel batch) share the same
    /// `build`/`inject` closures and position the simulator at exactly the
    /// case's injection instant before injecting, which is what keeps
    /// their traces byte-identical: the digital kernel is call-granularity
    /// invariant, so only the closure pair determines the result. The
    /// inject closure sees the machine through [`InjectTarget`], the
    /// mid-run mutation surface both kernels implement.
    pub fn forked_batch<B, I>(
        name: impl Into<String>,
        spec: ClassifySpec,
        cases: Vec<FaultCase>,
        t_end: Time,
        build: B,
        inject: I,
    ) -> Campaign
    where
        B: Fn(&CaseCtx) -> Result<Simulator, BoxError> + Send + Sync + 'static,
        I: Fn(&mut dyn InjectTarget, usize) -> Result<(), BoxError> + Send + Sync + 'static,
    {
        let build = Arc::new(build);
        let inject = Arc::new(inject);
        let case_stops: Arc<Vec<Time>> =
            Arc::new(cases.iter().map(|c| c.injected_at.min(t_end)).collect());

        let batch_run = {
            let build = Arc::clone(&build);
            let inject = Arc::clone(&inject);
            let case_stops = Arc::clone(&case_stops);
            Arc::new(
                move |ctx: &CaseCtx,
                      group: &[usize],
                      hooks: LaneHooks<'_>|
                      -> Result<Vec<BatchCaseOutcome>, BoxError> {
                    let mut golden = build(ctx)?;
                    golden.install_budget(ctx.budget().clone());
                    ctx.stage(Stage::Simulate);
                    let mut batch = BatchSimulator::new(golden, t_end);
                    if let Some(metrics) = ctx.budget().metrics() {
                        batch.set_metrics(Arc::clone(metrics));
                    }
                    for &i in group {
                        batch.add_lane(case_stops[i]);
                    }
                    let report = batch
                        .run(
                            |lane, sim| inject(sim, group[lane]).map_err(|e| e.to_string()),
                            |lane, sim| {
                                let (budget, observer) = hooks(lane);
                                sim.set_budget(budget);
                                if let Some(observer) = observer {
                                    sim.set_observer(observer);
                                }
                            },
                        )
                        .map_err(|e| Box::new(e) as BoxError)?;
                    Ok(report
                        .outcomes
                        .into_iter()
                        .map(|outcome| match outcome {
                            LaneOutcome::Completed { trace, sealed_at } => {
                                BatchCaseOutcome::Done { trace, sealed_at }
                            }
                            LaneOutcome::Failed { error } => BatchCaseOutcome::Error(error),
                        })
                        .collect())
                },
            )
        };

        let word_run = {
            let build = Arc::clone(&build);
            let inject = Arc::clone(&inject);
            let case_stops = Arc::clone(&case_stops);
            Arc::new(
                move |ctx: &CaseCtx,
                      group: &[usize],
                      hooks: LaneHooks<'_>|
                      -> Result<Vec<BatchCaseOutcome>, BoxError> {
                    let mut golden = build(ctx)?;
                    golden.install_budget(ctx.budget().clone());
                    ctx.stage(Stage::Simulate);
                    let mut word = WordBatchSimulator::new(golden, t_end);
                    if let Some(metrics) = ctx.budget().metrics() {
                        word.set_metrics(Arc::clone(metrics));
                    }
                    for &i in group {
                        word.add_lane(case_stops[i]);
                    }
                    let report = word
                        .run(
                            |lane, target| inject(target, group[lane]).map_err(|e| e.to_string()),
                            |lane, target| {
                                let (budget, observer) = hooks(lane);
                                target.set_budget(budget);
                                if let Some(observer) = observer {
                                    target.set_observer(observer);
                                }
                            },
                        )
                        .map_err(|e| Box::new(e) as BoxError)?;
                    Ok(report
                        .outcomes
                        .into_iter()
                        .map(|outcome| match outcome {
                            LaneOutcome::Completed { trace, sealed_at } => {
                                BatchCaseOutcome::Done { trace, sealed_at }
                            }
                            LaneOutcome::Failed { error } => BatchCaseOutcome::Error(error),
                        })
                        .collect())
                },
            )
        };

        let mut campaign = Campaign::forked(
            name,
            spec,
            cases,
            t_end,
            {
                let build = Arc::clone(&build);
                move |ctx: &CaseCtx| build(ctx)
            },
            {
                let inject = Arc::clone(&inject);
                move |sim: &mut Simulator, i: usize| inject(sim, i)
            },
        );
        campaign.batch = Some(BatchSpec { run: batch_run });
        campaign.word = Some(BatchSpec { run: word_run });
        campaign
    }
}

/// `(name, description)` of every campaign [`build`] understands.
pub fn catalog() -> [(&'static str, &'static str); 5] {
    [
        (
            "pll-sweep",
            "Fig. 8 current-pulse parameter sweep on the PLL loop filter \
             (paper's four sets + amplitude x width grid, 24 cases)",
        ),
        (
            "pll-digital",
            "exhaustive SEU campaign over the fast PLL's digital blocks and \
             payload (Section 3 digital flow)",
        ),
        (
            "adc-flash",
            "flash ADC sensitivity: analog input strikes vs digital SEUs \
             (the paper's mixed-signal future-work case)",
        ),
        (
            "cpu",
            "SEU campaign over a tiny accumulator CPU running a checksum \
             program (processor case study of reference [2])",
        ),
        (
            "cpu-set",
            "SET-pulse campaign on the CPU bench's reset line: narrow late \
             pulses, mostly logically masked (Section 3.2 saboteur flow; \
             the --batch showcase)",
        ),
    ]
}

/// Builds a named campaign, optionally truncated to its first `limit`
/// cases (handy for smoke tests; the truncation changes the campaign
/// fingerprint, so differently-limited journals never merge by accident).
pub fn build(name: &str, limit: Option<usize>) -> Option<Campaign> {
    let mut campaign = match name {
        "pll-sweep" => pll_sweep(),
        "pll-digital" => pll_digital(),
        "adc-flash" => adc_flash(),
        "cpu" => cpu(),
        "cpu-set" => cpu_set(),
        _ => return None,
    };
    if let Some(limit) = limit {
        campaign.cases.truncate(limit);
    }
    Some(campaign)
}

/// The Fig. 8 pulse list: the paper's four `(PA, RT, FT, PW)` sets plus the
/// amplitude x width grid at 100 ps edges.
fn fig8_pulses() -> Vec<(TrapezoidPulse, String)> {
    let mut pulses = Vec::new();
    for &(pa, rt, ft, pw) in &[
        (2.0, 100_i64, 100_i64, 300_i64),
        (8.0, 100, 100, 300),
        (10.0, 40, 40, 120),
        (10.0, 180, 180, 540),
    ] {
        let pulse = TrapezoidPulse::from_ma_ps(pa, rt, ft, pw).expect("paper set");
        pulses.push((pulse, format!("({pa} mA; {rt} ps; {ft} ps; {pw} ps)")));
    }
    for &pa in &[1.0, 2.0, 5.0, 10.0, 20.0] {
        for &pw in &[150_i64, 300, 600, 1200] {
            let pulse = TrapezoidPulse::from_ma_ps(pa, 100, 100, pw).expect("grid set");
            pulses.push((pulse, format!("({pa} mA; PW {pw} ps)")));
        }
    }
    pulses
}

fn pll_sweep() -> Campaign {
    const T_END: Time = Time::from_us(200);
    const T_INJECT: Time = Time::from_us(170);
    let pulses = fig8_pulses();
    let cases = pulses
        .iter()
        .map(|(_, label)| FaultCase::new(format!("icp {label}"), T_INJECT))
        .collect();
    let spec = ClassifySpec::new((Time::from_us(165), T_END), vec![names::F_OUT.to_owned()])
        .with_internals(vec![names::VCTRL.to_owned(), names::FB.to_owned()])
        .with_tolerance(Tolerance::new(0.05, 0.01))
        .with_digital_skew(Time::from_ns(2))
        // The PLL takes several microseconds to visibly re-lock (or visibly
        // fail to): divergence onsets trail the strike by up to ~5 us, so the
        // streaming classifier must hold the settle window longer than the
        // default recovery margin before calling a state final.
        .with_settle(Time::from_us(8));
    let pulses: Arc<Vec<(TrapezoidPulse, String)>> = Arc::new(pulses);
    // `Campaign::forked` arms the saboteur in place on a simulator already
    // positioned at T_INJECT instead of baking the fault into the build
    // (equivalent by `amsfi_circuits::pll` test
    // `arming_in_place_equals_arming_at_build`), which is what lets
    // `--checkpoint` fork every case from one golden prefix.
    Campaign::forked(
        "pll-sweep",
        spec,
        cases,
        T_END,
        |ctx: &CaseCtx| {
            ctx.stage(Stage::Build);
            let mut bench = pll::build(&pll::PllConfig::default());
            bench.monitor_standard();
            Ok(bench)
        },
        move |bench: &mut pll::PllBench, i| {
            bench.arm_saboteur(Arc::new(pulses[i].0), T_INJECT);
            Ok(())
        },
    )
}

fn pll_digital() -> Campaign {
    const T_END: Time = Time::from_us(30);
    let mut config = pll::PllConfig::fast();
    config.payload = true;

    let probe = pll::build(&config);
    let targets = probe.mixed.digital().mutant_targets();
    let times = plan::uniform_times(Time::from_us(12), Time::from_us(16), 4);

    let mut cases = Vec::new();
    let mut index = Vec::new();
    for (ti, &at) in times.iter().enumerate() {
        for (gi, target) in targets.iter().enumerate() {
            cases.push(FaultCase::new(format!("{target} @ {at}"), at));
            index.push((gi, ti));
        }
    }

    let mut outputs: Vec<String> = (0..8).map(|i| format!("{}[{i}]", names::COUNT)).collect();
    outputs.push(names::SHIFT_OUT.to_owned());
    let spec = ClassifySpec::new((Time::from_us(12), T_END), outputs)
        .with_internals(vec![names::FB.to_owned(), names::VCTRL.to_owned()])
        .with_tolerance(Tolerance::new(0.05, 0.01))
        .with_digital_skew(Time::from_ns(2));

    let targets = Arc::new(targets);
    let index = Arc::new(index);
    Campaign::forked(
        "pll-digital",
        spec,
        cases,
        T_END,
        move |ctx: &CaseCtx| {
            ctx.stage(Stage::Build);
            let mut bench = pll::build(&config);
            bench.monitor_standard();
            Ok(bench)
        },
        move |bench: &mut pll::PllBench, i| {
            let (gi, _ti) = index[i];
            let target = &targets[gi];
            bench
                .mixed
                .digital_mut()
                .flip_state(target.component, target.bit);
            Ok(())
        },
    )
}

fn adc_flash() -> Campaign {
    const T_END: Time = Time::from_us(10);
    let base = adc::FlashAdcConfig {
        input: AdcInput::Sine {
            freq_hz: 100e3,
            amplitude: 2.0,
            offset: 2.5,
        },
        ..adc::FlashAdcConfig::default()
    };
    let pulses = plan::pulse_grid(
        &[-10.0, -5.0, 5.0, 10.0],
        &[100],
        &[100],
        &[500, 20_000, 200_000],
    );
    let times = plan::random_times(Time::from_us(2), Time::from_us(8), 8, 11);
    let probe = adc::build_flash(&base);
    let targets = probe.mixed.digital().mutant_targets();

    // First the analog-surface strikes, then an equally sized block of
    // digital SEUs (cycling over the register bits), as in the standalone
    // `ext_adc_sensitivity` study.
    let mut cases = Vec::new();
    let mut setup = Vec::new();
    for (pi, p) in pulses.iter().enumerate() {
        for (ti, &at) in times.iter().enumerate() {
            cases.push(FaultCase::new(format!("input {p}"), at));
            setup.push(AdcCase::Strike(pi, ti));
        }
    }
    let n_analog = cases.len();
    for i in 0..n_analog {
        let gi = i % targets.len();
        let ti = i % times.len();
        cases.push(FaultCase::new(targets[gi].to_string(), times[ti]));
        setup.push(AdcCase::Flip(gi, ti));
    }

    let outputs = (0..3)
        .map(|i| format!("{}[{i}]", adc::FLASH_CODE))
        .collect();
    let spec = ClassifySpec::new((Time::from_us(1), T_END), outputs);

    let pulses = Arc::new(pulses);
    let times = Arc::new(times);
    let targets = Arc::new(targets);
    let setup = Arc::new(setup);
    Campaign {
        name: "adc-flash".to_owned(),
        spec,
        cases,
        runner: Arc::new(move |ctx: &CaseCtx| {
            ctx.stage(Stage::Build);
            let mut cfg = base.clone();
            let flip = match ctx.index().map(|i| setup[i]) {
                Some(AdcCase::Strike(pi, ti)) => {
                    cfg = cfg.with_fault(pulses[pi], times[ti]);
                    None
                }
                Some(AdcCase::Flip(gi, ti)) => Some((gi, ti)),
                None => None,
            };
            let mut bench = adc::build_flash(&cfg);
            bench.mixed.digital_mut().monitor_name(adc::FLASH_CODE);
            ctx.stage(Stage::Simulate);
            if let Some((gi, ti)) = flip {
                bench.mixed.run_until(times[ti])?;
                let t = &targets[gi];
                bench.mixed.digital_mut().flip_state(t.component, t.bit);
            }
            bench.mixed.run_until(T_END)?;
            Ok(bench.mixed.merged_trace())
        }),
        // Strikes are armed at config level (before build), so this
        // campaign cannot fork from a shared golden prefix; `--checkpoint`
        // falls back to the from-scratch runner.
        fork: None,
        batch: None,
        word: None,
    }
}

/// How one `adc-flash` case perturbs the converter.
#[derive(Clone, Copy)]
enum AdcCase {
    /// Current strike `pulses[.0]` on the input node at `times[.1]`.
    Strike(usize, usize),
    /// Bit-flip of `targets[.0]` at `times[.1]`.
    Flip(usize, usize),
}

fn cpu() -> Campaign {
    const T_END: Time = Time::from_us(20);
    fn build_sim() -> Simulator {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let out = net.signal("out", 8);
        let pc = net.signal("pc", 6);
        net.add("ck", cells::ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
        let _cpu: ComponentId = net.add(
            "cpu",
            TinyCpu::new(checksum_program(), Time::ZERO),
            &[clk, rst],
            &[out, pc],
        );
        let mut sim = Simulator::new(net);
        sim.monitor_name("out");
        sim
    }

    let targets = build_sim().mutant_targets();
    let times = plan::uniform_times(Time::from_us(2), Time::from_us(4), 3);
    let mut cases = Vec::new();
    let mut index = Vec::new();
    for (ti, &at) in times.iter().enumerate() {
        for (gi, t) in targets.iter().enumerate() {
            cases.push(FaultCase::new(format!("{t} @ {at}"), at));
            index.push((gi, ti));
        }
    }
    let spec = ClassifySpec::new(
        (Time::from_us(2), T_END),
        (0..8).map(|i| format!("out[{i}]")).collect(),
    );

    let targets = Arc::new(targets);
    let index = Arc::new(index);
    Campaign::forked_batch(
        "cpu",
        spec,
        cases,
        T_END,
        |ctx: &CaseCtx| {
            ctx.stage(Stage::Build);
            Ok(build_sim())
        },
        move |sim: &mut dyn InjectTarget, i| {
            let (gi, _ti) = index[i];
            let t = &targets[gi];
            sim.flip_state(t.component, t.bit);
            Ok(())
        },
    )
}

/// SET pulses on the CPU bench's reset line, spliced in through a
/// [`DigitalSaboteur`] (the paper's Section 3.2 saboteur flow). Pulses are
/// narrow (1–6 ns against a 20 ns clock period) and late (12–18.5 us of a
/// 20 us horizon), so most are *logically masked*: no rising clock edge
/// falls inside the pulse, the saboteur retires to its pristine state, and
/// the mutant machine is bit-for-bit the golden machine again.
///
/// That makes this the `--batch` showcase: a masked lane reconverges and
/// seals within a stop or two of the pulse retiring, so the batch path
/// simulates ~hundreds of steps per case where the scalar path simulates
/// the full horizon — the ≥10× regime gated by `pr7_batch_bench`. (The
/// SEU `cpu` campaign's corrupted-register lanes genuinely need the whole
/// observation window for their verdicts, so batch gains there are
/// bounded; see DESIGN.md "Bit-parallel simulation".)
fn cpu_set() -> Campaign {
    const T_END: Time = Time::from_us(20);
    fn build_sim() -> Simulator {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let out = net.signal("out", 8);
        let pc = net.signal("pc", 6);
        net.add("ck", cells::ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
        let _cpu: ComponentId = net.add(
            "cpu",
            TinyCpu::new(checksum_program(), Time::ZERO),
            &[clk, rst],
            &[out, pc],
        );
        net.insert_saboteur(rst, Box::new(DigitalSaboteur::new(1)));
        let mut sim = Simulator::new(net);
        sim.monitor_name("out");
        sim
    }

    // 160 instants stepping ~40.9 ns sweep the pulse phase across the 20 ns
    // clock period; widths 1–4 ns keep the expected unmasked fraction
    // around w/20 ≈ 12%.
    let times = plan::uniform_times(Time::from_ns(12_500), Time::from_ns(19_000), 160);
    let widths = [
        Time::from_ns(1),
        Time::from_ns(2),
        Time::from_ns(3),
        Time::from_ns(4),
    ];
    let mut cases = Vec::new();
    let mut faults = Vec::new();
    for &at in &times {
        for &width in &widths {
            cases.push(FaultCase::new(format!("rst SET {width} @ {at}"), at));
            faults.push(DigitalFault::new(DigitalFaultKind::SetPulse { width }, at));
        }
    }
    let spec = ClassifySpec::new(
        (Time::from_us(12), T_END),
        (0..8).map(|i| format!("out[{i}]")).collect(),
    );

    let faults = Arc::new(faults);
    Campaign::forked_batch(
        "cpu-set",
        spec,
        cases,
        T_END,
        |ctx: &CaseCtx| {
            ctx.stage(Stage::Build);
            Ok(build_sim())
        },
        move |sim: &mut dyn InjectTarget, i| {
            let fault = faults[i].clone();
            let at = fault.at;
            let sab = sim
                .component_id("saboteur(rst)")
                .ok_or("saboteur(rst) not instrumented")?;
            sim.component_mut(sab)
                .as_any_mut()
                .downcast_mut::<DigitalSaboteur>()
                .ok_or("saboteur(rst) has an unexpected component type")?
                .arm(fault);
            sim.wake_component(sab, at);
            Ok(())
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_entry_builds() {
        for (name, _) in catalog() {
            let campaign = build(name, None).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(campaign.name, name);
            assert!(!campaign.cases.is_empty(), "{name} has no cases");
        }
        assert!(build("nope", None).is_none());
    }

    #[test]
    fn limit_truncates_and_changes_the_fingerprint() {
        let full = build("pll-sweep", None).unwrap();
        let limited = build("pll-sweep", Some(4)).unwrap();
        assert_eq!(limited.cases.len(), 4);
        assert_eq!(full.cases.len(), 24);
        assert_ne!(full.meta(), limited.meta());
    }

    #[test]
    fn case_lists_are_deterministic_across_builds() {
        for (name, _) in catalog() {
            let a = build(name, None).unwrap();
            let b = build(name, None).unwrap();
            assert_eq!(a.meta(), b.meta(), "{name} fingerprint unstable");
        }
    }
}
