//! End-to-end engine behaviour: checkpoint/resume after a kill, shard-merge
//! determinism, and fail-fast runs leaving a resumable journal.

use amsfi_core::report;
use amsfi_core::{ClassifySpec, FaultCase};
use amsfi_engine::{
    campaigns, journal, Campaign, CaseCtx, Engine, EngineConfig, EngineError, ErrorPolicy, Shard,
};
use amsfi_waves::{ForkableSim, Logic, SimObserver, Time, Trace};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn unique_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "amsfi-engine-test-{}-{tag}-{n}.journal",
        std::process::id()
    ))
}

/// A deterministic toy campaign over `n` cases; `calls` counts faulty-case
/// runner invocations so tests can prove the resume path skipped work.
/// Classification: index 4 fails, odd indices are transient, the rest clean.
fn toy_campaign(n: usize, calls: Arc<AtomicUsize>) -> Campaign {
    let window = (Time::from_ns(0), Time::from_ns(1000));
    Campaign {
        name: "toy".to_owned(),
        spec: ClassifySpec::new(window, vec!["out".to_owned()]),
        cases: (0..n)
            .map(|i| FaultCase::new(format!("bit{i}"), Time::from_ns(100)))
            .collect(),
        runner: Arc::new(move |ctx: &CaseCtx| {
            let mut trace = Trace::new();
            trace.record_digital("out", Time::from_ns(0), Logic::Zero)?;
            match ctx.index() {
                None => {}
                Some(i) => {
                    calls.fetch_add(1, Ordering::Relaxed);
                    if i == 4 {
                        trace.record_digital("out", Time::from_ns(200), Logic::One)?;
                    } else if i % 2 == 1 {
                        trace.record_digital("out", Time::from_ns(200), Logic::One)?;
                        trace.record_digital("out", Time::from_ns(400), Logic::Zero)?;
                    }
                }
            }
            Ok(trace)
        }),
        fork: None,
        batch: None,
        word: None,
    }
}

/// A tick-per-nanosecond counter for checkpointed campaigns; "out" carries
/// the tick parity. Even case indices stick the output high (failure), odd
/// ones invert one tick (transient).
#[derive(Debug, Clone)]
struct TickSim {
    now: Time,
    ticks: u64,
    stuck: bool,
    invert_next: bool,
    /// Remaining ticks the sparse "flag" signal is held high (`u64::MAX`
    /// holds it forever). Golden keeps it low, so the repeated-value dedup
    /// in the trace makes a raised flag an *observation-free* divergence —
    /// exactly the shape the quiescent seal fires on.
    flag_ticks: u64,
    trace: Trace,
    observer: Option<SimObserver>,
}

impl TickSim {
    fn fresh() -> Self {
        TickSim {
            now: Time::ZERO,
            ticks: 0,
            stuck: false,
            invert_next: false,
            flag_ticks: 0,
            trace: Trace::new(),
            observer: None,
        }
    }
}

impl ForkableSim for TickSim {
    type Error = std::convert::Infallible;

    fn advance_to(&mut self, t: Time) -> Result<(), Self::Error> {
        while self.now + Time::from_ns(1) <= t {
            self.now += Time::from_ns(1);
            self.ticks += 1;
            let mut bit = if self.stuck {
                true
            } else {
                self.ticks % 2 == 1
            };
            if std::mem::take(&mut self.invert_next) {
                bit = !bit;
            }
            self.trace
                .record_digital("out", self.now, Logic::from_bool(bit))
                .unwrap();
            let flag = self.flag_ticks > 0;
            if self.flag_ticks != u64::MAX {
                self.flag_ticks = self.flag_ticks.saturating_sub(1);
            }
            self.trace
                .record_digital("flag", self.now, Logic::from_bool(flag))
                .unwrap();
            if let Some(observer) = &mut self.observer {
                observer.poll(self.now, &[&self.trace]);
            }
        }
        if let Some(observer) = &mut self.observer {
            observer.flush(self.now, &[&self.trace]);
        }
        Ok(())
    }

    fn current_time(&self) -> Time {
        self.now
    }

    fn snapshot_trace(&self) -> Trace {
        self.trace.clone()
    }

    fn structural_fingerprint(&self) -> u64 {
        0x7E57
    }

    fn install_observer(&mut self, observer: SimObserver) {
        self.observer = Some(observer);
    }
}

/// A checkpoint-capable toy campaign; `injects` counts fork/inject calls so
/// tests can prove resumed cases were not re-forked.
fn forked_toy_campaign(n: usize, injects: Arc<AtomicUsize>) -> Campaign {
    let t_end = Time::from_ns(60);
    let spec = ClassifySpec::new((Time::ZERO, t_end), vec!["out".to_owned()]);
    let cases = (0..n)
        .map(|i| FaultCase::new(format!("tick{i}"), Time::from_ns(7 + (i as i64 % 4) * 11)))
        .collect();
    Campaign::forked(
        "forked-toy",
        spec,
        cases,
        t_end,
        |_ctx: &CaseCtx| Ok(TickSim::fresh()),
        move |sim: &mut TickSim, i| {
            injects.fetch_add(1, Ordering::Relaxed);
            if i.is_multiple_of(2) {
                sim.stuck = true;
            } else {
                sim.invert_next = true;
            }
            Ok(())
        },
    )
}

/// A checkpointed toy campaign shaped for early-verdict sealing: a 600 ns
/// window monitoring the sparse "flag" signal (settle defaults to the
/// 100 ns merge gap). Even case indices raise the flag forever — an open
/// mismatch with no further observations, sealed `Failure` by the
/// quiescent rule one settle window after injection. Odd indices pulse it
/// for one tick — a closed interval, sealed `Transient` one settle window
/// after it re-converges. Both seal around 200 ns into the 600 ns window.
fn ea_toy_campaign(n: usize) -> Campaign {
    let t_end = Time::from_ns(600);
    let spec = ClassifySpec::new((Time::ZERO, t_end), vec!["flag".to_owned()]);
    let cases = (0..n)
        .map(|i| FaultCase::new(format!("tick{i}"), Time::from_ns(7 + (i as i64 % 4) * 11)))
        .collect();
    Campaign::forked(
        "ea-toy",
        spec,
        cases,
        t_end,
        |_ctx: &CaseCtx| Ok(TickSim::fresh()),
        move |sim: &mut TickSim, i| {
            sim.flag_ticks = if i.is_multiple_of(2) { u64::MAX } else { 1 };
            Ok(())
        },
    )
}

/// PR 5 tentpole end-to-end: an `--early-abort` run seals every toy case
/// well before the window end with verdicts identical to the full run, a
/// killed run journals `sealed_at=`, and `--resume` round-trips it.
#[test]
fn early_abort_kill_and_resume_round_trips_sealed_at() {
    let path = unique_path("ea-resume");
    let campaign = ea_toy_campaign(12);
    let config = || {
        EngineConfig::default()
            .with_workers(2)
            .with_checkpoint(true)
            .with_early_abort(true)
    };

    // References: the same checkpointed run without early abort seals
    // nothing; the early-abort run seals everything, verdicts unchanged.
    let base = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_checkpoint(true),
    )
    .run(&campaign)
    .unwrap();
    let clean = Engine::new(config()).run(&campaign).unwrap();
    assert_eq!(base.result.cases.len(), clean.result.cases.len());
    for (a, b) in base.result.cases.iter().zip(&clean.result.cases) {
        assert_eq!(a.outcome.class, b.outcome.class, "case {}", a.case);
        assert_eq!(
            a.outcome.error_onset, b.outcome.error_onset,
            "case {}",
            a.case
        );
        assert_eq!(a.outcome.affected, b.outcome.affected, "case {}", a.case);
        assert!(a.outcome.sealed_at.is_none(), "full run must not seal");
        let sealed_at = b.outcome.sealed_at.expect("early-abort case must seal");
        assert!(
            sealed_at < Time::from_ns(600),
            "case {} sealed only at the window end: {sealed_at:?}",
            b.case
        );
    }

    // "Kill" partway: journal only shard 0/2 with early abort on.
    let partial = Engine::new(
        config()
            .with_shard("0/2".parse().unwrap())
            .with_journal(&path),
    )
    .run(&campaign)
    .unwrap();
    assert_eq!(partial.result.cases.len(), 6);
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.lines()
            .filter(|l| l.starts_with("case "))
            .all(|l| l.contains(" sealed_at=")),
        "journaled early-abort cases must carry sealed_at:\n{text}"
    );

    // Resume the full list: the journaled half keeps its sealed_at.
    let resumed = Engine::new(config().with_journal(&path).with_resume(true))
        .run(&campaign)
        .unwrap();
    assert_eq!(resumed.resumed, 6);
    assert_eq!(resumed.result.cases.len(), 12);
    for (a, b) in clean.result.cases.iter().zip(&resumed.result.cases) {
        assert_eq!(a.outcome.class, b.outcome.class, "case {}", a.case);
        assert_eq!(
            a.outcome.sealed_at, b.outcome.sealed_at,
            "sealed_at did not survive the journal round-trip for case {}",
            a.case
        );
    }
    std::fs::remove_file(&path).ok();
}

/// PR 2 tentpole end-to-end: a checkpointed run can be killed (simulated by
/// journaling only one shard), resumed with `--checkpoint` still on, and the
/// merged result is byte-identical to both an uninterrupted checkpointed run
/// and a plain from-scratch run.
#[test]
fn checkpointed_kill_and_resume_round_trip() {
    let path = unique_path("ckpt-resume");
    let injects = Arc::new(AtomicUsize::new(0));
    let campaign = forked_toy_campaign(12, Arc::clone(&injects));

    // References: an uninterrupted checkpointed run and a scratch run.
    let clean = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_checkpoint(true),
    )
    .run(&campaign)
    .unwrap();
    let scratch = Engine::new(EngineConfig::default().with_workers(2))
        .run(&campaign)
        .unwrap();
    assert_eq!(
        report::cases_csv(&clean.result),
        report::cases_csv(&scratch.result),
        "checkpointed and from-scratch classifications must agree"
    );
    assert_eq!(clean.result.golden, scratch.result.golden);

    // "Kill" partway: journal only shard 0/2, checkpointed.
    injects.store(0, Ordering::Relaxed);
    let partial = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_checkpoint(true)
            .with_shard("0/2".parse().unwrap())
            .with_journal(&path),
    )
    .run(&campaign)
    .unwrap();
    assert_eq!(partial.result.cases.len(), 6);
    assert_eq!(injects.load(Ordering::Relaxed), 6);
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.lines()
            .filter(|l| l.starts_with("case "))
            .all(|l| l.contains(" forked=") && !l.contains(" forked=-")),
        "checkpointed case records must carry the fork instant:\n{text}"
    );

    // Resume the full list: only the missing half may fork again.
    injects.store(0, Ordering::Relaxed);
    let resumed = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_checkpoint(true)
            .with_journal(&path)
            .with_resume(true),
    )
    .run(&campaign)
    .unwrap();
    assert_eq!(
        injects.load(Ordering::Relaxed),
        6,
        "completed cases re-forked"
    );
    assert_eq!(resumed.resumed, 6);
    assert_eq!(resumed.result.cases.len(), 12);
    assert_eq!(
        report::cases_csv(&resumed.result),
        report::cases_csv(&clean.result)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn kill_and_resume_round_trip() {
    let path = unique_path("resume");
    let calls = Arc::new(AtomicUsize::new(0));
    let campaign = toy_campaign(12, Arc::clone(&calls));

    // Reference: one uninterrupted run, no journal.
    let clean = Engine::new(EngineConfig::default().with_workers(2))
        .run(&campaign)
        .unwrap();

    // "Kill" partway: run only shard 0/2 into the journal, as an
    // interrupted run would have left it.
    calls.store(0, Ordering::Relaxed);
    let partial = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_shard("0/2".parse().unwrap())
            .with_journal(&path),
    )
    .run(&campaign)
    .unwrap();
    assert_eq!(partial.result.cases.len(), 6);
    assert_eq!(calls.load(Ordering::Relaxed), 6);

    // Resume over the full case list: only the missing half may run.
    calls.store(0, Ordering::Relaxed);
    let resumed = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_journal(&path)
            .with_resume(true),
    )
    .run(&campaign)
    .unwrap();
    assert_eq!(calls.load(Ordering::Relaxed), 6, "completed cases re-ran");
    assert_eq!(resumed.resumed, 6);
    assert_eq!(resumed.result.cases.len(), 12);

    // The merged report is indistinguishable from the uninterrupted run.
    assert_eq!(
        report::summary_table(&resumed.result),
        report::summary_table(&clean.result)
    );
    assert_eq!(
        report::cases_csv(&resumed.result),
        report::cases_csv(&clean.result)
    );

    // Rerunning once more is a pure no-op: everything resumes.
    calls.store(0, Ordering::Relaxed);
    let noop = Engine::new(
        EngineConfig::default()
            .with_journal(&path)
            .with_resume(true),
    )
    .run(&campaign)
    .unwrap();
    assert_eq!(calls.load(Ordering::Relaxed), 0);
    assert_eq!(noop.resumed, 12);
    std::fs::remove_file(&path).ok();
}

#[test]
fn shard_journals_merge_into_the_single_shard_result() {
    let calls = Arc::new(AtomicUsize::new(0));
    let campaign = toy_campaign(11, Arc::clone(&calls));
    let clean = Engine::new(EngineConfig::default()).run(&campaign).unwrap();

    let paths = [unique_path("shard0"), unique_path("shard1")];
    for (i, path) in paths.iter().enumerate() {
        let shard = Shard::new(i, 2).unwrap();
        Engine::new(EngineConfig::default().with_shard(shard).with_journal(path))
            .run(&campaign)
            .unwrap();
    }

    let (meta, entries) = journal::merge(&paths).unwrap();
    assert_eq!(meta, campaign.meta());
    let (merged, skipped, quarantined) = journal::assemble(&entries);
    assert!(skipped.is_empty());
    assert!(quarantined.is_empty());
    assert_eq!(
        report::summary_table(&merged),
        report::summary_table(&clean.result),
        "merged shard summary must be byte-identical to the unsharded run"
    );
    assert_eq!(report::cases_csv(&merged), report::cases_csv(&clean.result));
    for path in &paths {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn fail_fast_leaves_a_resumable_journal() {
    let path = unique_path("failfast");
    let healed = Arc::new(AtomicBool::new(false));
    let window = (Time::from_ns(0), Time::from_ns(1000));
    let healed_in = Arc::clone(&healed);
    let campaign = Campaign {
        name: "flaky".to_owned(),
        spec: ClassifySpec::new(window, vec!["out".to_owned()]),
        cases: (0..8)
            .map(|i| FaultCase::new(format!("bit{i}"), Time::from_ns(100)))
            .collect(),
        runner: Arc::new(move |ctx: &CaseCtx| {
            if ctx.index() == Some(5) && !healed_in.load(Ordering::Relaxed) {
                return Err("transient infrastructure failure".into());
            }
            let mut trace = Trace::new();
            trace.record_digital("out", Time::from_ns(0), Logic::Zero)?;
            Ok(trace)
        }),
        fork: None,
        batch: None,
        word: None,
    };

    // Sequential fail-fast run: cases 0..=4 are journaled, 5 aborts.
    let err = Engine::new(
        EngineConfig::default()
            .with_workers(1)
            .with_error_policy(ErrorPolicy::FailFast)
            .with_journal(&path),
    )
    .run(&campaign)
    .unwrap_err();
    match err {
        EngineError::Case { index, .. } => assert_eq!(index, 5),
        other => panic!("expected a case failure, got {other}"),
    }
    let (_, entries) = journal::load(&path).unwrap();
    assert_eq!(entries.len(), 5, "completed prefix must be journaled");

    // The flake clears; resuming finishes the remaining three cases.
    healed.store(true, Ordering::Relaxed);
    let resumed = Engine::new(
        EngineConfig::default()
            .with_workers(1)
            .with_error_policy(ErrorPolicy::FailFast)
            .with_journal(&path)
            .with_resume(true),
    )
    .run(&campaign)
    .unwrap();
    assert_eq!(resumed.resumed, 5);
    assert_eq!(resumed.result.cases.len(), 8);
    assert!(resumed.skipped.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_refuses_a_journal_from_another_campaign() {
    let path = unique_path("foreign");
    let campaign_a = toy_campaign(4, Arc::new(AtomicUsize::new(0)));
    Engine::new(EngineConfig::default().with_journal(&path))
        .run(&campaign_a)
        .unwrap();

    let mut campaign_b = toy_campaign(4, Arc::new(AtomicUsize::new(0)));
    campaign_b.cases[1].injected_at = Time::from_ns(999);
    let err = Engine::new(
        EngineConfig::default()
            .with_journal(&path)
            .with_resume(true),
    )
    .run(&campaign_b)
    .unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Journal(journal::JournalError::CampaignMismatch { .. })
        ),
        "{err}"
    );
    std::fs::remove_file(&path).ok();
}

/// The acceptance scenario end-to-end on a real (truncated) named campaign:
/// the Fig. 8 PLL sweep, sharded two ways with the fast flash-ADC campaign
/// kept out of the hot path by truncating to the paper's four pulse sets.
#[test]
fn named_campaign_shards_and_merges() {
    let limit = Some(4);
    let paths = [unique_path("pll0"), unique_path("pll1")];
    for (i, path) in paths.iter().enumerate() {
        let campaign = campaigns::build("adc-flash", limit).unwrap();
        Engine::new(
            EngineConfig::default()
                .with_shard(Shard::new(i, 2).unwrap())
                .with_journal(path),
        )
        .run(&campaign)
        .unwrap();
    }
    let campaign = campaigns::build("adc-flash", limit).unwrap();
    let clean = Engine::new(EngineConfig::default()).run(&campaign).unwrap();

    let (meta, entries) = journal::merge(&paths).unwrap();
    assert_eq!(meta, campaign.meta());
    let (merged, _, _) = journal::assemble(&entries);
    assert_eq!(
        report::summary_table(&merged),
        report::summary_table(&clean.result)
    );
    assert_eq!(report::cases_csv(&merged), report::cases_csv(&clean.result));
    for path in &paths {
        std::fs::remove_file(path).ok();
    }
}

/// PR 4 satellite: quarantined cases land in the summary denominator exactly
/// once — both in the run that quarantines them and in every subsequent
/// `--resume` (which never re-runs them, but must still account for them).
#[test]
fn resumed_summary_counts_quarantined_cases_exactly_once() {
    let path = unique_path("quarantine-accounting");
    let calls = Arc::new(AtomicUsize::new(0));
    let mut campaign = toy_campaign(5, Arc::clone(&calls));
    // Case 2 is poison: every attempt errors deterministically.
    let inner = Arc::clone(&campaign.runner);
    campaign.runner = Arc::new(move |ctx: &CaseCtx| {
        if ctx.index() == Some(2) {
            return Err("rigged failure".into());
        }
        inner(ctx)
    });

    let config = EngineConfig::default()
        .with_workers(2)
        .with_journal(&path)
        .with_quarantine(true)
        .with_retries(1);
    let first = Engine::new(config.clone())
        .run(&campaign)
        .expect("first run");
    assert_eq!(first.quarantined.len(), 1);
    assert_eq!(first.stats.total, 5);
    assert_eq!(first.stats.done, 5);
    assert_eq!(first.stats.quarantined, 1);

    // Resume: nothing is left to execute, yet the summary still covers all
    // five cases — four resumed completions plus the prior quarantine.
    calls.store(0, Ordering::Relaxed);
    let resumed = Engine::new(config.with_resume(true))
        .run(&campaign)
        .expect("resumed run");
    assert_eq!(calls.load(Ordering::Relaxed), 0, "resume re-ran a case");
    assert_eq!(resumed.resumed, 4);
    assert_eq!(resumed.quarantined.len(), 1);
    assert_eq!(
        resumed.stats.total, 5,
        "prior quarantine fell out of the summary denominator"
    );
    assert_eq!(resumed.stats.done, 5);
    assert_eq!(resumed.stats.quarantined, 1);
    assert_eq!(resumed.stats.seeded, 5);
    std::fs::remove_file(&path).ok();
}
