//! PR 2 acceptance property: for random injection instants on the PLL,
//! a `--checkpoint` engine run (fork at tᵢ from the golden prefix) produces
//! traces and classifications byte-identical to the from-scratch run.
//!
//! Identity holds by construction — both paths advance the simulator
//! through the same distinct-injection-instant stop sequence, so the
//! adaptive-step analog kernel takes the same step grid — and this test is
//! what keeps that construction honest.

use amsfi_circuits::pll::{self, names, PllConfig};
use amsfi_core::{ClassifySpec, FaultCase};
use amsfi_engine::{Campaign, CaseCtx, Engine, EngineConfig};
use amsfi_faults::TrapezoidPulse;
use amsfi_waves::{Time, Tolerance};
use proptest::prelude::*;
use std::sync::Arc;

/// A fast-PLL campaign striking the loop filter with one paper pulse at
/// each of the given instants, built through [`Campaign::forked`].
fn pll_campaign(times: &[Time], t_end: Time) -> Campaign {
    let pulse = TrapezoidPulse::from_ma_ps(10.0, 100, 100, 300).expect("paper pulse");
    let cases = times
        .iter()
        .enumerate()
        .map(|(i, &at)| FaultCase::new(format!("icp @ {at} #{i}"), at))
        .collect();
    let spec = ClassifySpec::new((Time::ZERO, t_end), vec![names::F_OUT.to_owned()])
        .with_internals(vec![names::VCTRL.to_owned(), names::FB.to_owned()])
        .with_tolerance(Tolerance::new(0.05, 0.01))
        .with_digital_skew(Time::from_ns(2));
    let times: Arc<Vec<Time>> = Arc::new(times.to_vec());
    Campaign::forked(
        "pll-fork-equivalence",
        spec,
        cases,
        t_end,
        |_ctx: &CaseCtx| {
            let mut bench = pll::build(&PllConfig::fast());
            bench.monitor_standard();
            Ok(bench)
        },
        move |bench: &mut pll::PllBench, i| {
            bench.arm_saboteur(Arc::new(pulse), times[i]);
            Ok(())
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn forked_pll_runs_equal_scratch_runs(
        times_ns in prop::collection::vec(1_000i64..5_500, 1..=3),
    ) {
        let t_end = Time::from_us(6);
        let times: Vec<Time> = times_ns.iter().map(|&ns| Time::from_ns(ns)).collect();
        let campaign = pll_campaign(&times, t_end);
        let scratch = Engine::new(EngineConfig::default().with_workers(2))
            .run(&campaign)
            .expect("scratch run");
        let forked = Engine::new(
            EngineConfig::default().with_workers(2).with_checkpoint(true),
        )
        .run(&campaign)
        .expect("checkpointed run");
        prop_assert_eq!(&scratch.result.golden, &forked.result.golden);
        prop_assert_eq!(scratch.result.cases.len(), forked.result.cases.len());
        for (a, b) in scratch.result.cases.iter().zip(&forked.result.cases) {
            prop_assert_eq!(a, b, "case {} diverged between paths", a.case);
        }
    }
}
