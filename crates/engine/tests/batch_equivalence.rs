//! PR 7 acceptance properties for bit-parallel (`--batch`) execution:
//!
//! * a batch engine run produces case results **byte-identical** to the
//!   scalar run of the same campaign — same classes, onsets, affected
//!   lists, same golden trace;
//! * a lane that fails deterministically mid-batch is quarantined (under
//!   `--quarantine`) *alone*: every other lane's verdict still matches
//!   the scalar run;
//! * batch + `--early-abort` seals the same verdict classes the full
//!   post-hoc run derives.

use amsfi_core::{plan, ClassifySpec, FaultCase};
use amsfi_digital::{cells, InjectTarget, Netlist, Simulator};
use amsfi_engine::{campaigns, Campaign, CaseCtx, Engine, EngineConfig};
use amsfi_waves::{Logic, Time};
use std::sync::Arc;

const T_END: Time = Time::from_us(2);

fn build_counter() -> Simulator {
    let mut net = Netlist::new();
    let clk = net.signal("clk", 1);
    let rst = net.signal("rst", 1);
    let en = net.signal("en", 1);
    let q = net.signal("q", 8);
    net.add("ck", cells::ClockGen::new(Time::from_ns(20)), &[], &[clk]);
    net.add("r", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
    net.add("e", cells::ConstVector::bit(Logic::One), &[], &[en]);
    net.add(
        "ctr",
        cells::Counter::new(8, Time::ZERO),
        &[clk, rst, en],
        &[q],
    );
    let mut sim = Simulator::new(net);
    sim.monitor_name("q");
    sim
}

/// A counter SEU campaign over `bits x times`, built through
/// [`Campaign::forked_batch`]. `poison` makes that case's inject closure
/// fail deterministically (chaos lane).
fn counter_campaign(bits: &[usize], times: &[Time], poison: Option<usize>) -> Campaign {
    let targets = build_counter().mutant_targets();
    let ctr = targets
        .iter()
        .find(|t| t.component_name == "ctr")
        .expect("counter target")
        .component;
    let mut cases = Vec::new();
    let mut setup = Vec::new();
    for &at in times {
        for &bit in bits {
            cases.push(FaultCase::new(format!("ctr bit{bit} @ {at}"), at));
            setup.push(bit);
        }
    }
    let spec = ClassifySpec::new(
        (Time::ZERO, T_END),
        (0..8).map(|i| format!("q[{i}]")).collect(),
    );
    let setup = Arc::new(setup);
    Campaign::forked_batch(
        "batch-equivalence",
        spec,
        cases,
        T_END,
        |_ctx: &CaseCtx| Ok(build_counter()),
        move |sim: &mut dyn InjectTarget, i| {
            if poison == Some(i) {
                return Err("chaos: injector wiring fault".into());
            }
            sim.flip_state(ctr, setup[i]);
            Ok(())
        },
    )
}

fn times() -> Vec<Time> {
    plan::uniform_times(Time::from_ns(100), Time::from_ns(900), 3)
}

#[test]
fn batch_run_equals_scalar_run_byte_for_byte() {
    let campaign = counter_campaign(&[0, 3, 7], &times(), None);
    let scalar = Engine::new(EngineConfig::default().with_workers(2))
        .run(&campaign)
        .expect("scalar run");
    let batch = Engine::new(EngineConfig::default().with_workers(2).with_batch(true))
        .run(&campaign)
        .expect("batch run");
    assert_eq!(scalar.result.golden, batch.result.golden);
    assert_eq!(scalar.result.cases.len(), batch.result.cases.len());
    for (a, b) in scalar.result.cases.iter().zip(&batch.result.cases) {
        assert_eq!(a, b, "case {} diverged between paths", a.case);
    }
}

#[test]
fn batch_flag_without_batch_spec_falls_back_to_scalar() {
    // A plain `forked` campaign carries no batch spec; `--batch` must be a
    // no-op rather than an error.
    let with_spec = counter_campaign(&[1], &times(), None);
    let campaign = Campaign {
        batch: None,
        ..with_spec.clone()
    };
    let scalar = Engine::new(EngineConfig::default())
        .run(&with_spec)
        .expect("scalar run");
    let fallback = Engine::new(EngineConfig::default().with_batch(true))
        .run(&campaign)
        .expect("fallback run");
    for (a, b) in scalar.result.cases.iter().zip(&fallback.result.cases) {
        assert_eq!(a, b);
    }
}

#[test]
fn chaos_lane_is_quarantined_alone() {
    let poison = 4;
    let clean = counter_campaign(&[0, 3, 7], &times(), None);
    let chaotic = counter_campaign(&[0, 3, 7], &times(), Some(poison));
    let scalar = Engine::new(EngineConfig::default().with_workers(2))
        .run(&clean)
        .expect("scalar reference");

    let dir = std::env::temp_dir().join(format!("amsfi-batch-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let journal = dir.join("chaos.journal");
    let _ = std::fs::remove_file(&journal);
    let report = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_batch(true)
            .with_quarantine(true)
            .with_journal(&journal),
    )
    .run(&chaotic)
    .expect("chaotic batch run");

    // The poison lane alone is quarantined, with a journal poison marker.
    assert_eq!(report.quarantined.len(), 1, "exactly one poison case");
    assert_eq!(report.quarantined[0].index, poison);
    let text = std::fs::read_to_string(&journal).expect("journal readable");
    assert!(
        text.contains("quarantine="),
        "journal lacks quarantine= marker:\n{text}"
    );

    // Every other lane's verdict is identical to the scalar reference.
    assert_eq!(report.result.cases.len(), scalar.result.cases.len() - 1);
    let surviving: Vec<_> = scalar
        .result
        .cases
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != poison)
        .map(|(_, c)| c)
        .collect();
    for (a, b) in surviving.iter().zip(&report.result.cases) {
        assert_eq!(*a, b, "case {} diverged around the chaos lane", a.case);
    }
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn batch_early_abort_seals_scalar_classes() {
    let campaign = counter_campaign(&[0, 3, 7], &times(), None);
    let scalar = Engine::new(EngineConfig::default().with_workers(2))
        .run(&campaign)
        .expect("scalar run");
    let batch = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_batch(true)
            .with_early_abort(true),
    )
    .run(&campaign)
    .expect("batch early-abort run");
    assert_eq!(scalar.result.cases.len(), batch.result.cases.len());
    for (a, b) in scalar.result.cases.iter().zip(&batch.result.cases) {
        assert_eq!(
            a.outcome.class, b.outcome.class,
            "case {} class diverged under batch early abort",
            a.case
        );
    }
}

#[test]
fn cpu_campaign_batches_byte_identically() {
    let campaign = campaigns::build("cpu", Some(8)).expect("cpu campaign");
    let scalar = Engine::new(EngineConfig::default().with_workers(2))
        .run(&campaign)
        .expect("scalar run");
    let batch = Engine::new(EngineConfig::default().with_workers(2).with_batch(true))
        .run(&campaign)
        .expect("batch run");
    assert_eq!(scalar.result.golden, batch.result.golden);
    for (a, b) in scalar.result.cases.iter().zip(&batch.result.cases) {
        assert_eq!(a, b, "cpu case {} diverged between paths", a.case);
    }
}

#[test]
fn word_run_equals_scalar_run_byte_for_byte() {
    let campaign = counter_campaign(&[0, 3, 7], &times(), None);
    let scalar = Engine::new(EngineConfig::default().with_workers(2))
        .run(&campaign)
        .expect("scalar run");
    let word = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_batch(true)
            .with_word(true),
    )
    .run(&campaign)
    .expect("word run");
    assert_eq!(scalar.result.golden, word.result.golden);
    assert_eq!(scalar.result.cases.len(), word.result.cases.len());
    for (a, b) in scalar.result.cases.iter().zip(&word.result.cases) {
        assert_eq!(a, b, "case {} diverged between scalar and word", a.case);
    }
}

#[test]
fn word_flag_without_word_spec_falls_back_to_batch() {
    // Dropping the word spec must degrade to the lane-cloned batch path,
    // not error out.
    let with_spec = counter_campaign(&[1, 5], &times(), None);
    let campaign = Campaign {
        word: None,
        ..with_spec.clone()
    };
    let scalar = Engine::new(EngineConfig::default())
        .run(&with_spec)
        .expect("scalar run");
    let fallback = Engine::new(EngineConfig::default().with_batch(true).with_word(true))
        .run(&campaign)
        .expect("fallback run");
    for (a, b) in scalar.result.cases.iter().zip(&fallback.result.cases) {
        assert_eq!(a, b);
    }
}

#[test]
fn word_chaos_lane_is_quarantined_alone() {
    let poison = 4;
    let clean = counter_campaign(&[0, 3, 7], &times(), None);
    let chaotic = counter_campaign(&[0, 3, 7], &times(), Some(poison));
    let scalar = Engine::new(EngineConfig::default().with_workers(2))
        .run(&clean)
        .expect("scalar reference");
    let report = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_batch(true)
            .with_word(true)
            .with_quarantine(true),
    )
    .run(&chaotic)
    .expect("chaotic word run");
    assert_eq!(report.quarantined.len(), 1, "exactly one poison case");
    assert_eq!(report.quarantined[0].index, poison);
    let surviving: Vec<_> = scalar
        .result
        .cases
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != poison)
        .map(|(_, c)| c)
        .collect();
    for (a, b) in surviving.iter().zip(&report.result.cases) {
        assert_eq!(*a, b, "case {} diverged around the word chaos lane", a.case);
    }
}

#[test]
fn word_early_abort_seals_scalar_classes() {
    let campaign = counter_campaign(&[0, 3, 7], &times(), None);
    let scalar = Engine::new(EngineConfig::default().with_workers(2))
        .run(&campaign)
        .expect("scalar run");
    let word = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_batch(true)
            .with_word(true)
            .with_early_abort(true),
    )
    .run(&campaign)
    .expect("word early-abort run");
    assert_eq!(scalar.result.cases.len(), word.result.cases.len());
    for (a, b) in scalar.result.cases.iter().zip(&word.result.cases) {
        assert_eq!(
            a.outcome.class, b.outcome.class,
            "case {} class diverged under word early abort",
            a.case
        );
    }
}

#[test]
fn cpu_campaign_word_runs_byte_identically() {
    let campaign = campaigns::build("cpu", Some(8)).expect("cpu campaign");
    let scalar = Engine::new(EngineConfig::default().with_workers(2))
        .run(&campaign)
        .expect("scalar run");
    let word = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_batch(true)
            .with_word(true),
    )
    .run(&campaign)
    .expect("word run");
    assert_eq!(scalar.result.golden, word.result.golden);
    for (a, b) in scalar.result.cases.iter().zip(&word.result.cases) {
        assert_eq!(a, b, "cpu case {} diverged between scalar and word", a.case);
    }
}

#[test]
fn cpu_set_campaign_word_runs_byte_identically() {
    // The saboteur has no native word cell, so this exercises the
    // lane-farm fallback plus `component_mut` lane access end to end.
    let campaign = campaigns::build("cpu-set", Some(6)).expect("cpu-set campaign");
    let scalar = Engine::new(EngineConfig::default().with_workers(2))
        .run(&campaign)
        .expect("scalar run");
    let word = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_batch(true)
            .with_word(true),
    )
    .run(&campaign)
    .expect("word run");
    assert_eq!(scalar.result.golden, word.result.golden);
    for (a, b) in scalar.result.cases.iter().zip(&word.result.cases) {
        assert_eq!(a, b, "cpu-set case {} diverged between paths", a.case);
    }
}
