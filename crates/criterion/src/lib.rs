//! A minimal wall-clock benchmark harness exposing the subset of the
//! `criterion` crate API this workspace's benches use.
//!
//! The build environment has no access to crates.io, so the workspace
//! aliases `criterion` to this crate (see `[workspace.dependencies]`).
//! Differences from the real criterion: no statistical regression analysis,
//! no plots, no baseline storage — each benchmark reports min / mean /
//! median over its samples. When invoked with `--test` (as `cargo test`
//! does for `harness = false` bench targets) every benchmark runs exactly
//! once so the suite stays fast.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// The benchmark driver: configuration plus run mode.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measuring time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the untimed warm-up period per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies command-line arguments (`--test`, a name filter); other
    /// criterion flags are accepted and ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" => {}
                // Flags with a value we do not interpret.
                "--save-baseline" | "--baseline" | "--load-baseline" | "--profile-time"
                | "--output-format" | "--color" | "--sample-size" | "--warm-up-time"
                | "--measurement-time" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_owned()),
            }
        }
        self
    }

    fn wants(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.wants(id) {
            run_one(self, id, &mut f);
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.wants(&full) {
            run_one(self.criterion, &full, &mut |b| f(b, input));
        }
        self
    }

    /// Runs one unparameterised benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.wants(&full) {
            run_one(self.criterion, &full, &mut f);
        }
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id from just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Times the closure handed to it by a benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once, recording one wall-clock sample (the harness calls the
    /// benchmark closure repeatedly to accumulate samples).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, id: &str, f: &mut F) {
    if config.test_mode {
        let mut b = Bencher::default();
        f(&mut b);
        println!("test {id} ... ok");
        return;
    }
    // Warm-up: run untimed until the warm-up budget is spent.
    let warm_start = Instant::now();
    while warm_start.elapsed() < config.warm_up_time {
        let mut b = Bencher::default();
        f(&mut b);
        if b.samples.is_empty() {
            break; // the closure never called iter(); nothing to measure
        }
    }
    // Measurement: collect up to sample_size samples within the time budget.
    let mut samples: Vec<Duration> = Vec::with_capacity(config.sample_size);
    let measure_start = Instant::now();
    while samples.len() < config.sample_size {
        let mut b = Bencher::default();
        f(&mut b);
        samples.extend(b.samples);
        if measure_start.elapsed() > config.measurement_time && !samples.is_empty() {
            break;
        }
        if samples.is_empty() {
            break;
        }
    }
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<48} min {:>12} mean {:>12} median {:>12} ({} samples)",
        fmt_dur(min),
        fmt_dur(mean),
        fmt_dur(median),
        samples.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark target functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            criterion = criterion.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_and_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_dur(Duration::from_micros(1500)), "1.50 ms");
    }
}
