//! Property-based tests for the mixed-mode kernel: digitizer counting and
//! timing against analytic sine crossings, determinism under cloning.

use amsfi_analog::{blocks, AnalogCircuit, AnalogSolver, NodeKind};
use amsfi_digital::{cells, Netlist, Simulator};
use amsfi_mixed::MixedSimulator;
use amsfi_waves::{measure, Logic, Time};
use proptest::prelude::*;

fn sine_counter(freq_hz: f64, base_dt: Time) -> MixedSimulator {
    let mut ckt = AnalogCircuit::new();
    let sine = ckt.node("sine", NodeKind::Voltage);
    ckt.add(
        "src",
        blocks::SineSource::new(freq_hz, 2.5, 2.5),
        &[],
        &[sine],
    );
    let mut net = Netlist::new();
    let clk = net.signal("clk", 1);
    let rst = net.signal("rst", 1);
    let en = net.signal("en", 1);
    let q = net.signal("q", 16);
    net.add("r", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
    net.add("e", cells::ConstVector::bit(Logic::One), &[], &[en]);
    net.add(
        "ctr",
        cells::Counter::new(16, Time::ZERO),
        &[clk, rst, en],
        &[q],
    );
    let mut mixed = MixedSimulator::new(Simulator::new(net), AnalogSolver::new(ckt, base_dt));
    mixed.bind_digitizer("sine", "clk", 2.5, 0.2);
    mixed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn digitized_sine_count_matches_frequency(freq_mhz in 1.0f64..20.0) {
        let mut mixed = sine_counter(freq_mhz * 1e6, Time::from_ns(2));
        mixed.run_until(Time::from_us(2)).unwrap();
        let q = mixed.digital().signal_id("q").unwrap();
        let count = mixed.digital().value(q).to_u64().unwrap() as f64;
        let expect = freq_mhz * 2.0; // cycles in 2 us
        prop_assert!(
            (count - expect).abs() <= 1.5,
            "counted {count}, expected ~{expect}"
        );
    }

    #[test]
    fn edge_periods_independent_of_base_step(freq_mhz in 2.0f64..10.0, dt_ns in 1i64..5) {
        let mut mixed = sine_counter(freq_mhz * 1e6, Time::from_ns(dt_ns));
        mixed.digital_mut().monitor_name("clk");
        mixed.run_until(Time::from_us(3)).unwrap();
        let w = mixed.digital().trace().digital("clk").unwrap();
        let nominal = Time::from_secs_f64(1.0 / (freq_mhz * 1e6));
        // Skip the startup artifact; every later period tracks the sine.
        for (_, p) in measure::periods(w).into_iter().skip(1) {
            let err = (p - nominal).abs();
            prop_assert!(
                err < Time::from_ps(200),
                "period {p} vs nominal {nominal} at dt {dt_ns} ns"
            );
        }
    }

    #[test]
    fn mixed_clone_continues_identically(freq_mhz in 2.0f64..10.0, split_ns in 100i64..1_000) {
        let mut mixed = sine_counter(freq_mhz * 1e6, Time::from_ns(2));
        mixed.digital_mut().monitor_name("clk");
        mixed.run_until(Time::from_ns(split_ns)).unwrap();
        let mut clone = mixed.clone();
        mixed.run_until(Time::from_us(2)).unwrap();
        clone.run_until(Time::from_us(2)).unwrap();
        prop_assert_eq!(mixed.merged_trace(), clone.merged_trace());
    }
}
