//! Domain-boundary converters: the digitizer (analog → digital) and the
//! level driver (digital → analog).

use amsfi_analog::NodeId;
use amsfi_digital::SignalId;
use amsfi_waves::{Logic, Time};

/// Digital-to-analog boundary: maps a digital signal's logic level onto an
/// analog voltage node (zero-order hold, refreshed every synchronisation
/// step).
#[derive(Debug, Clone)]
pub struct LevelDriver {
    pub(crate) signal: SignalId,
    pub(crate) bit: usize,
    pub(crate) node: NodeId,
    pub(crate) v_low: f64,
    pub(crate) v_high: f64,
    v_undefined: f64,
}

impl LevelDriver {
    /// Creates a driver translating `signal` (a scalar) onto `node` with the
    /// given rails. Metalogical values drive the mid-rail.
    pub fn new(signal: SignalId, node: NodeId, v_low: f64, v_high: f64) -> Self {
        Self::for_bit(signal, 0, node, v_low, v_high)
    }

    /// Creates a driver translating bit `bit` of a bus signal onto `node`
    /// (e.g. one bit of a DAC code).
    pub fn for_bit(signal: SignalId, bit: usize, node: NodeId, v_low: f64, v_high: f64) -> Self {
        LevelDriver {
            signal,
            bit,
            node,
            v_low,
            v_high,
            v_undefined: 0.5 * (v_low + v_high),
        }
    }

    /// The analog voltage for a logic level.
    pub fn level(&self, value: Logic) -> f64 {
        match value.to_bool() {
            Some(true) => self.v_high,
            Some(false) => self.v_low,
            None => self.v_undefined,
        }
    }
}

/// Analog-to-digital boundary: the "Digitizer" of the paper's Fig. 5
/// (a comparator with a 2.5 V threshold feeding the digital domain).
///
/// On each synchronisation step the digitizer compares the node value
/// against its threshold (with hysteresis); when a crossing occurred inside
/// the step it linearly interpolates the crossing instant and injects the new
/// logic level into the digital simulator at that exact time — the analog
/// step size therefore bounds the *detection* latency but not the *timing*
/// resolution of the generated clock edge.
#[derive(Debug, Clone)]
pub struct Digitizer {
    pub(crate) node: NodeId,
    pub(crate) signal: SignalId,
    pub(crate) threshold: f64,
    pub(crate) hysteresis: f64,
    state_high: Option<bool>,
    /// Schmitt-trigger re-arm flag: after firing an edge, the opposite edge
    /// only fires once the signal has cleared the guard band on the new
    /// side, so noise around the threshold cannot chatter.
    armed: bool,
    /// When false, edges are stamped at the end of the detecting step
    /// instead of the interpolated crossing instant (the ablation knob for
    /// DESIGN.md's "crossing refinement" decision).
    interpolate: bool,
}

/// A crossing detected by a [`Digitizer`] during one synchronisation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectedEdge {
    /// Interpolated crossing instant.
    pub at: Time,
    /// The new logic level.
    pub level: Logic,
}

impl Digitizer {
    /// Creates a digitizer thresholding `node` at `threshold` (full
    /// hysteresis band `hysteresis`) and driving `signal`.
    ///
    /// # Panics
    ///
    /// Panics if `hysteresis` is negative.
    pub fn new(node: NodeId, signal: SignalId, threshold: f64, hysteresis: f64) -> Self {
        assert!(hysteresis >= 0.0, "hysteresis must be non-negative");
        Digitizer {
            node,
            signal,
            threshold,
            hysteresis,
            state_high: None,
            armed: false,
            interpolate: true,
        }
    }

    /// Enables or disables crossing-time interpolation (enabled by default;
    /// disabling quantises edge times to the synchronisation grid).
    pub fn set_interpolation(&mut self, enabled: bool) {
        self.interpolate = enabled;
    }

    /// The level corresponding to the initial node value (called once before
    /// the first step to seed the digital side).
    pub(crate) fn initial_level(&mut self, v: f64) -> Logic {
        let high = v > self.threshold;
        self.state_high = Some(high);
        self.armed = self.arm_condition(high, v);
        Logic::from_bool(high)
    }

    /// To fire the next edge out of state `high`, the signal must first sit
    /// clear of the guard band on the current side.
    fn arm_condition(&self, high: bool, v: f64) -> bool {
        let half = self.hysteresis / 2.0;
        if high {
            v >= self.threshold + half
        } else {
            v <= self.threshold - half
        }
    }

    /// Examines one analog step from `(t0, v0)` to `(t1, v1)` and returns
    /// the detected edge, if any.
    ///
    /// The digitizer is a Schmitt trigger with *undelayed* timing: the edge
    /// fires in the same step the raw threshold is crossed, at the linearly
    /// interpolated crossing instant (so the timing is never deferred past
    /// the co-simulation catch-up point), and the guard band is used only to
    /// RE-ARM — after an edge, the opposite edge cannot fire until the
    /// signal has cleared `threshold ± hysteresis/2` on the new side.
    pub(crate) fn check(&mut self, t0: Time, v0: f64, t1: Time, v1: f64) -> Option<DetectedEdge> {
        let state = *self.state_high.get_or_insert(v0 > self.threshold);
        let half = self.hysteresis / 2.0;
        if !self.armed {
            self.armed = self.arm_condition(state, v0) || self.arm_condition(state, v1);
        }
        // A crossing clear beyond the full band always fires, armed or not:
        // otherwise a small overshoot that crossed the threshold without
        // clearing the band would leave the trigger disarmed forever.
        let crossed_hard = if state {
            v1 < self.threshold - half
        } else {
            v1 > self.threshold + half
        };
        let crossed = if state {
            v1 < self.threshold
        } else {
            v1 > self.threshold
        };
        if !(crossed_hard || (self.armed && crossed)) {
            return None;
        }
        let new_high = !state;
        self.state_high = Some(new_high);
        self.armed = self.arm_condition(new_high, v1);
        let frac = if !self.interpolate || (v1 - v0).abs() < f64::EPSILON {
            1.0
        } else {
            ((self.threshold - v0) / (v1 - v0)).clamp(0.0, 1.0)
        };
        let dt_fs = ((t1 - t0).as_fs() as f64 * frac).round() as i64;
        Some(DetectedEdge {
            at: t0 + Time::from_fs(dt_fs.max(1)),
            level: Logic::from_bool(new_high),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (NodeId, SignalId) {
        // Build real ids through the public constructors of each domain.
        let mut ckt = amsfi_analog::AnalogCircuit::new();
        let node = ckt.node("n", amsfi_analog::NodeKind::Voltage);
        let mut net = amsfi_digital::Netlist::new();
        let sig = net.signal("s", 1);
        (node, sig)
    }

    #[test]
    fn level_driver_maps_rails() {
        let (node, sig) = ids();
        let d = LevelDriver::new(sig, node, 0.0, 5.0);
        assert_eq!(d.level(Logic::One), 5.0);
        assert_eq!(d.level(Logic::WeakZero), 0.0);
        assert_eq!(d.level(Logic::Unknown), 2.5);
    }

    #[test]
    fn digitizer_interpolates_crossing_time() {
        let (node, sig) = ids();
        let mut dz = Digitizer::new(node, sig, 2.5, 0.2);
        assert_eq!(dz.initial_level(0.0), Logic::Zero);
        // Step from 0 V to 5 V over 10 ns: threshold crossed at 5 ns.
        let edge = dz
            .check(Time::ZERO, 0.0, Time::from_ns(10), 5.0)
            .expect("edge");
        assert_eq!(edge.at, Time::from_ns(5));
        assert_eq!(edge.level, Logic::One);
    }

    #[test]
    fn digitizer_hysteresis_prevents_retrigger_chatter() {
        let (node, sig) = ids();
        let mut dz = Digitizer::new(node, sig, 2.5, 0.4);
        dz.initial_level(0.0);
        // First crossing fires immediately (timing is never deferred)...
        let edge = dz
            .check(Time::ZERO, 2.4, Time::from_ns(1), 2.6)
            .expect("fires");
        assert_eq!(edge.level, Logic::One);
        // ...but noise recrossing the threshold inside the band is silent:
        // the falling edge is not armed until v >= 2.7 was seen.
        assert!(dz
            .check(Time::from_ns(1), 2.6, Time::from_ns(2), 2.45)
            .is_none());
        assert!(dz
            .check(Time::from_ns(2), 2.45, Time::from_ns(3), 2.6)
            .is_none());
        // Clearing the band re-arms; the next true falling edge fires.
        assert!(dz
            .check(Time::from_ns(3), 2.6, Time::from_ns(4), 2.9)
            .is_none());
        let down = dz
            .check(Time::from_ns(4), 2.9, Time::from_ns(5), 2.2)
            .expect("fires");
        assert_eq!(down.level, Logic::Zero);
    }

    #[test]
    fn digitizer_alternates_directions() {
        let (node, sig) = ids();
        let mut dz = Digitizer::new(node, sig, 2.5, 0.0);
        dz.initial_level(0.0);
        let up = dz.check(Time::ZERO, 0.0, Time::from_ns(1), 5.0).unwrap();
        assert_eq!(up.level, Logic::One);
        // Still high: no new rising edge.
        assert!(dz
            .check(Time::from_ns(1), 5.0, Time::from_ns(2), 5.0)
            .is_none());
        let down = dz
            .check(Time::from_ns(2), 5.0, Time::from_ns(3), 0.0)
            .unwrap();
        assert_eq!(down.level, Logic::Zero);
    }

    #[test]
    fn crossing_time_is_strictly_after_step_start() {
        let (node, sig) = ids();
        let mut dz = Digitizer::new(node, sig, 2.5, 0.0);
        dz.initial_level(0.0);
        // v0 already at threshold: frac = 0 would inject *at* t0, which the
        // digital simulator may have passed; the digitizer nudges by 1 fs.
        let edge = dz
            .check(Time::from_ns(5), 2.5, Time::from_ns(6), 5.0)
            .unwrap();
        assert!(edge.at > Time::from_ns(5));
    }
}
