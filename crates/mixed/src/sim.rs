//! The lock-step mixed-mode co-simulation kernel.

use crate::boundary::{Digitizer, LevelDriver};

/// Telemetry batching stride for the shared sync-step counter: the sync
/// loop touches the contended atomic once per this many steps.
const SYNC_METRICS_STRIDE: u32 = 64;

use amsfi_analog::{AnalogSolver, NodeId};
use amsfi_digital::{SignalId, SimError, Simulator};
use amsfi_waves::{
    Checkpoint, CheckpointMismatch, Fnv1a, ForkableSim, GuardViolation, LogicVector, SimBudget,
    SimObserver, Time, Trace,
};

/// Co-simulates a digital [`Simulator`] and an analog [`AnalogSolver`] with
/// synchronised time, exchanging values through [`LevelDriver`]s
/// (digital → analog) and [`Digitizer`]s (analog → digital).
///
/// Synchronisation contract:
///
/// * analog integration steps never bridge a pending digital event — the
///   kernel clamps each step to the digital simulator's next event time, so
///   a digital transition is visible to the analog side from the exact step
///   on which it occurs;
/// * digitizer crossings are interpolated *inside* a step and injected into
///   the digital event queue at the interpolated instant, so clock edges
///   derived from analog waveforms (the PLL's `F_out`) keep sub-step timing
///   accuracy.
///
/// # Examples
///
/// An analog sine squared up by a digitizer and counted by a digital
/// counter:
///
/// ```
/// use amsfi_analog::{blocks, AnalogCircuit, AnalogSolver, NodeKind};
/// use amsfi_digital::{cells, Netlist, Simulator};
/// use amsfi_mixed::MixedSimulator;
/// use amsfi_waves::{Logic, Time};
///
/// let mut ckt = AnalogCircuit::new();
/// let sine = ckt.node("sine", NodeKind::Voltage);
/// ckt.add("src", blocks::SineSource::new(10e6, 2.5, 2.5), &[], &[sine]);
///
/// let mut net = Netlist::new();
/// let clk = net.signal("clk", 1);
/// let rst = net.signal("rst", 1);
/// let en = net.signal("en", 1);
/// let q = net.signal("q", 8);
/// net.add("r", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
/// net.add("e", cells::ConstVector::bit(Logic::One), &[], &[en]);
/// net.add("ctr", cells::Counter::new(8, Time::ZERO), &[clk, rst, en], &[q]);
///
/// let mut mixed = MixedSimulator::new(
///     Simulator::new(net),
///     AnalogSolver::new(ckt, Time::from_ns(2)),
/// );
/// mixed.bind_digitizer("sine", "clk", 2.5, 0.2);
/// mixed.run_until(Time::from_us(1))?;
/// // 10 MHz for 1 us: rising crossings at 0, 100 ns, ..., 1 us inclusive.
/// let q = mixed.digital().signal_id("q").unwrap();
/// assert_eq!(mixed.digital().value(q).to_u64(), Some(11));
/// # Ok::<(), amsfi_digital::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MixedSimulator {
    digital: Simulator,
    analog: AnalogSolver,
    now: Time,
    drivers: Vec<LevelDriver>,
    digitizers: Vec<Digitizer>,
    max_sync_step: Time,
    seeded: bool,
    budget: SimBudget,
    observer: Option<SimObserver>,
}

impl MixedSimulator {
    /// Couples a digital simulator and an analog solver, both at time zero.
    pub fn new(digital: Simulator, analog: AnalogSolver) -> Self {
        MixedSimulator {
            digital,
            analog,
            now: Time::ZERO,
            drivers: Vec::new(),
            digitizers: Vec::new(),
            max_sync_step: Time::MAX,
            seeded: false,
            budget: SimBudget::unlimited(),
            observer: None,
        }
    }

    /// Installs a [`SimBudget`] on the co-simulation loop. Every
    /// synchronisation step counts as one budget step; the analog solver's
    /// proposed timestep is checked against the budget's `min_dt` floor
    /// *before* event clamping (so digital activity cannot mask a collapsing
    /// analog step), and every analog node is scanned for non-finite values
    /// after each integration step.
    ///
    /// The two halves keep their own (unlimited) budgets: installing the
    /// budget here avoids double-counting steps across the three kernels.
    /// A metric registry attached to the budget *is* propagated to both
    /// sub-kernels (metrics-only budgets never arm a guard), so solver
    /// steps, proposed timesteps and digital events are recorded in mixed
    /// mode too.
    pub fn set_budget(&mut self, budget: SimBudget) {
        if let Some(metrics) = budget.metrics() {
            let analog_budget = self
                .analog
                .budget()
                .clone()
                .with_metrics(std::sync::Arc::clone(metrics));
            self.analog.set_budget(analog_budget);
            let digital_budget = self
                .digital
                .budget()
                .clone()
                .with_metrics(std::sync::Arc::clone(metrics));
            self.digital.set_budget(digital_budget);
        }
        self.budget = budget;
    }

    /// Installs a [`SimObserver`] polled (at its stride) at the end of each
    /// synchronisation step with the step boundary as the finality
    /// watermark, over a view of *both* kernels' traces. The observer stays
    /// on the co-simulation loop — the sub-kernels keep their own (empty)
    /// observers, so a view is never polled with only half the signals.
    /// Replaces any previous observer.
    pub fn set_observer(&mut self, observer: SimObserver) {
        self.observer = Some(observer);
    }

    /// The installed budget.
    pub fn budget(&self) -> &SimBudget {
        &self.budget
    }

    /// Enables or disables crossing-time interpolation on every digitizer
    /// (an accuracy-vs-nothing ablation: disabling quantises analog-derived
    /// clock edges to the synchronisation grid). Enabled by default.
    pub fn set_edge_interpolation(&mut self, enabled: bool) {
        for dz in &mut self.digitizers {
            dz.set_interpolation(enabled);
        }
    }

    /// Caps the synchronisation step (defaults to the analog solver's own
    /// adaptive step).
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive.
    pub fn set_max_sync_step(&mut self, step: Time) {
        assert!(step > Time::ZERO, "sync step must be positive");
        self.max_sync_step = step;
    }

    /// Connects digital `signal` to analog voltage `node` with the given
    /// rails (digital → analog).
    pub fn bind_driver_ids(&mut self, signal: SignalId, node: NodeId, v_low: f64, v_high: f64) {
        self.drivers
            .push(LevelDriver::new(signal, node, v_low, v_high));
    }

    /// Connects bit `bit` of a digital bus to analog voltage `node` — one
    /// leg of a level-driven DAC.
    ///
    /// # Panics
    ///
    /// Panics if either name does not exist.
    pub fn bind_driver_bit(
        &mut self,
        signal: &str,
        bit: usize,
        node: &str,
        v_low: f64,
        v_high: f64,
    ) {
        let sig = self
            .digital
            .signal_id(signal)
            .unwrap_or_else(|| panic!("no digital signal named {signal:?}"));
        let nd = self
            .analog
            .node_id(node)
            .unwrap_or_else(|| panic!("no analog node named {node:?}"));
        self.drivers
            .push(LevelDriver::for_bit(sig, bit, nd, v_low, v_high));
    }

    /// Name-based form of [`MixedSimulator::bind_driver_ids`].
    ///
    /// # Panics
    ///
    /// Panics if either name does not exist.
    pub fn bind_driver(&mut self, signal: &str, node: &str, v_low: f64, v_high: f64) {
        let sig = self
            .digital
            .signal_id(signal)
            .unwrap_or_else(|| panic!("no digital signal named {signal:?}"));
        let nd = self
            .analog
            .node_id(node)
            .unwrap_or_else(|| panic!("no analog node named {node:?}"));
        self.bind_driver_ids(sig, nd, v_low, v_high);
    }

    /// Connects analog `node` to digital `signal` through a threshold
    /// digitizer (analog → digital). The signal must have no component
    /// driver.
    pub fn bind_digitizer_ids(
        &mut self,
        node: NodeId,
        signal: SignalId,
        threshold: f64,
        hysteresis: f64,
    ) {
        self.digitizers
            .push(Digitizer::new(node, signal, threshold, hysteresis));
    }

    /// Name-based form of [`MixedSimulator::bind_digitizer_ids`].
    ///
    /// # Panics
    ///
    /// Panics if either name does not exist.
    pub fn bind_digitizer(&mut self, node: &str, signal: &str, threshold: f64, hysteresis: f64) {
        let nd = self
            .analog
            .node_id(node)
            .unwrap_or_else(|| panic!("no analog node named {node:?}"));
        let sig = self
            .digital
            .signal_id(signal)
            .unwrap_or_else(|| panic!("no digital signal named {signal:?}"));
        self.bind_digitizer_ids(nd, sig, threshold, hysteresis);
    }

    /// Current synchronised simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The digital half.
    pub fn digital(&self) -> &Simulator {
        &self.digital
    }

    /// Mutable access to the digital half (for mutant injection mid-run).
    pub fn digital_mut(&mut self) -> &mut Simulator {
        &mut self.digital
    }

    /// The analog half.
    pub fn analog(&self) -> &AnalogSolver {
        &self.analog
    }

    /// Mutable access to the analog half (for parametric faults mid-run).
    pub fn analog_mut(&mut self) -> &mut AnalogSolver {
        &mut self.analog
    }

    /// The union of both domains' traces.
    pub fn merged_trace(&self) -> Trace {
        let mut t = self.digital.trace().clone();
        t.absorb(self.analog.trace().clone());
        t
    }

    /// A hash of the co-simulation's structure: both kernels' structural
    /// fingerprints plus every boundary binding (driver rails, digitizer
    /// thresholds and hysteresis) and the synchronisation-step cap. A
    /// [`Checkpoint`] refuses to restore across differing fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str("amsfi-mixed");
        h.eat();
        h.write_u64(self.digital.fingerprint());
        h.write_u64(self.analog.fingerprint());
        h.eat();
        h.write_u64(self.max_sync_step.as_fs() as u64);
        h.eat();
        h.write_u64(self.drivers.len() as u64);
        h.eat();
        for d in &self.drivers {
            h.write_str(self.digital.signal_name(d.signal));
            h.eat();
            h.write_u64(d.bit as u64);
            h.eat();
            h.write_str(self.analog.circuit().node_name(d.node));
            h.eat();
            h.write_u64(d.v_low.to_bits());
            h.write_u64(d.v_high.to_bits());
            h.eat();
        }
        h.write_u64(self.digitizers.len() as u64);
        h.eat();
        for dz in &self.digitizers {
            h.write_str(self.analog.circuit().node_name(dz.node));
            h.eat();
            h.write_str(self.digital.signal_name(dz.signal));
            h.eat();
            h.write_u64(dz.threshold.to_bits());
            h.write_u64(dz.hysteresis.to_bits());
            h.eat();
        }
        h.finish()
    }

    /// Snapshots the complete co-simulation — both kernels (event queue,
    /// solver state, traces), digitizer hysteresis/arming state and the
    /// one-time seeding flag — for golden-prefix forking.
    pub fn checkpoint(&self) -> Checkpoint<MixedSimulator> {
        Checkpoint::capture(self)
    }

    /// Replaces this co-simulation's state with `checkpoint`'s, validating
    /// the structural fingerprint first.
    ///
    /// # Errors
    ///
    /// [`CheckpointMismatch`] when the checkpoint was captured from a
    /// structurally different testbench.
    pub fn restore(
        &mut self,
        checkpoint: &Checkpoint<MixedSimulator>,
    ) -> Result<(), CheckpointMismatch> {
        *self = checkpoint.restore_into(self)?;
        Ok(())
    }

    /// Runs both domains, synchronised, until `t_end`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the digital kernel (delta overflow) and
    /// reports [`SimError::Guard`] when the installed [`SimBudget`] trips:
    /// the step budget or deadline is exhausted, the analog solver proposes
    /// a timestep below the `min_dt` floor, or an analog node goes
    /// non-finite.
    pub fn run_until(&mut self, t_end: Time) -> Result<(), SimError> {
        if !self.seeded {
            self.seeded = true;
            // Seed the digital side with the initial level of every
            // digitized node so boundary signals never start at 'U'.
            for dz in &mut self.digitizers {
                let level = dz.initial_level(self.analog.value(dz.node));
                self.digital
                    .inject_value(dz.signal, LogicVector::filled(level, 1), self.now);
            }
        }
        // Flush digital activity at the current instant (power-on deltas,
        // seeds) so next_event_time() looks strictly ahead.
        self.digital.run_until(self.now)?;
        while self.now < t_end {
            // Zero-order hold: analog boundary nodes follow the digital
            // values as of the step start.
            for d in &self.drivers {
                let level = d.level(self.digital.value(d.signal)[d.bit]);
                self.analog.set_value(d.node, level);
            }
            // Guard checks: the proposed step is inspected *before* the
            // event clamp so a collapsing analog timestep is caught even
            // when dense digital activity would shrink the step anyway.
            let proposed = self.analog.propose_dt();
            self.budget.check_dt(proposed, self.now)?;
            self.budget.note_step(self.now)?;
            // Batched at the budget's local step count: one contended RMW
            // per SYNC_METRICS_STRIDE sync steps instead of one per step.
            if self
                .budget
                .steps_used()
                .is_multiple_of(u64::from(SYNC_METRICS_STRIDE))
            {
                if let Some(metrics) = self.budget.metrics() {
                    metrics.sync_steps.add(u64::from(SYNC_METRICS_STRIDE));
                }
            }
            let mut t_next = self
                .now
                .saturating_add(proposed.min(self.max_sync_step))
                .min(t_end);
            if let Some(te) = self.digital.next_event_time() {
                if te > self.now {
                    t_next = t_next.min(te);
                }
            }
            // Snapshot digitized nodes, integrate, then look for crossings.
            let t0 = self.now;
            let prev: Vec<f64> = self
                .digitizers
                .iter()
                .map(|dz| self.analog.value(dz.node))
                .collect();
            self.analog.step(t_next - t0);
            if self.budget.is_limited() {
                if let Some((signal, _)) = self.analog.first_non_finite() {
                    return Err(GuardViolation::NonFinite {
                        signal: signal.to_owned(),
                        t: t0,
                    }
                    .into());
                }
            }
            for (dz, &v0) in self.digitizers.iter_mut().zip(&prev) {
                let v1 = self.analog.value(dz.node);
                if let Some(edge) = dz.check(t0, v0, t_next, v1) {
                    // A hysteresis-delayed detection can interpolate to an
                    // instant the digital side has already passed; clamp to
                    // the current step (error bounded by one sync step).
                    let at = edge.at.max(t0);
                    self.digital
                        .inject_value(dz.signal, LogicVector::filled(edge.level, 1), at);
                }
            }
            self.now = t_next;
            self.digital.run_until(self.now)?;
            // Poll the observer at the end of the sync step. Finality
            // contract: both kernels have fully drained activity below
            // `now`, and the only thing that can still land *at* `now` is
            // a clamped digitizer edge in the next iteration — which is why
            // the watermark instant itself is not advertised as final.
            if let Some(observer) = self.observer.as_mut() {
                observer.poll(self.now, &[self.digital.trace(), self.analog.trace()]);
            }
        }
        if let Some(observer) = self.observer.as_mut() {
            observer.flush(self.now, &[self.digital.trace(), self.analog.trace()]);
        }
        Ok(())
    }
}

impl ForkableSim for MixedSimulator {
    type Error = SimError;

    /// Equivalence caveat: the synchronisation grid depends on where
    /// previous `advance_to` calls stopped (each stop clamps the step in
    /// flight), so fork-vs-scratch byte identity requires driving both runs
    /// through the same stop sequence. The campaign runner guarantees this
    /// by construction.
    fn advance_to(&mut self, t: Time) -> Result<(), SimError> {
        self.run_until(t)
    }

    fn current_time(&self) -> Time {
        self.now
    }

    fn snapshot_trace(&self) -> Trace {
        self.merged_trace()
    }

    fn structural_fingerprint(&self) -> u64 {
        self.fingerprint()
    }

    fn install_budget(&mut self, budget: SimBudget) {
        self.set_budget(budget);
    }

    fn install_observer(&mut self, observer: SimObserver) {
        self.set_observer(observer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amsfi_analog::{blocks, AnalogCircuit, NodeKind};
    use amsfi_digital::{cells, Netlist};
    use amsfi_waves::{measure, Logic};

    /// Analog sine → digitizer → digital counter.
    fn sine_counter(freq_hz: f64) -> MixedSimulator {
        let mut ckt = AnalogCircuit::new();
        ckt.node("sine", NodeKind::Voltage);
        let sine = ckt.node_id("sine").unwrap();
        ckt.add(
            "src",
            blocks::SineSource::new(freq_hz, 2.5, 2.5),
            &[],
            &[sine],
        );

        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let en = net.signal("en", 1);
        let q = net.signal("q", 16);
        net.add("r", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
        net.add("e", cells::ConstVector::bit(Logic::One), &[], &[en]);
        net.add(
            "ctr",
            cells::Counter::new(16, Time::ZERO),
            &[clk, rst, en],
            &[q],
        );

        let mut mixed = MixedSimulator::new(
            Simulator::new(net),
            AnalogSolver::new(ckt, Time::from_ns(2)),
        );
        mixed.bind_digitizer("sine", "clk", 2.5, 0.2);
        mixed
    }

    #[test]
    fn digitized_sine_clocks_counter() {
        let mut mixed = sine_counter(10e6);
        mixed.run_until(Time::from_us(2)).unwrap();
        let q = mixed.digital().signal_id("q").unwrap();
        // 10 MHz over 2 us: 20 rising crossings (within one of rounding).
        let count = mixed.digital().value(q).to_u64().unwrap();
        assert!((19..=21).contains(&count), "count = {count}");
        assert_eq!(mixed.now(), Time::from_us(2));
    }

    #[test]
    fn digitizer_edge_timing_is_subsample_accurate() {
        let mut mixed = sine_counter(10e6);
        mixed.digital_mut().monitor_name("clk");
        mixed.run_until(Time::from_us(1)).unwrap();
        let w = mixed.digital().trace().digital("clk").unwrap();
        let periods: Vec<Time> = measure::periods(w).into_iter().map(|(_, p)| p).collect();
        assert!(periods.len() >= 8);
        // Skip the first period: the node's declared initial value (0 V)
        // differs from the source value at t = 0+ (2.5 V), so the very first
        // interpolated crossing is a startup artifact.
        for p in &periods[1..] {
            let err = (*p - Time::from_ns(100)).abs();
            // Base step is 2 ns (and the sine hint is ~3 ns); interpolation
            // must recover the 100 ns period to well under a step.
            assert!(err < Time::from_ps(100), "period {p}");
        }
    }

    #[test]
    fn driver_pushes_digital_level_into_analog() {
        // Digital clock drives an analog RC through a level driver.
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        net.add("ck", cells::ClockGen::new(Time::from_us(2)), &[], &[clk]);

        let mut ckt = AnalogCircuit::new();
        let vin = ckt.node("vin", NodeKind::Voltage);
        let vout = ckt.node("vout", NodeKind::Voltage);
        ckt.add("rc", blocks::RcLowPass::new(1e3, 1e-9), &[vin], &[vout]);

        let mut mixed = MixedSimulator::new(
            Simulator::new(net),
            AnalogSolver::new(ckt, Time::from_ns(20)),
        );
        mixed.bind_driver("clk", "vin", 0.0, 5.0);
        // Clock rises at 1 us; tau = 1 us. At 2 us the RC has charged ~63 %.
        mixed.run_until(Time::from_us(2)).unwrap();
        let v = mixed.analog().value(vout);
        let expect = 5.0 * (1.0 - (-1.0f64).exp());
        assert!((v - expect).abs() < 0.05, "v = {v}, expected {expect}");
    }

    #[test]
    fn digital_events_clamp_analog_steps() {
        // With a huge analog base step, the RC must still see the clock
        // edge exactly at 1 us because the kernel clamps to digital events.
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        net.add("ck", cells::ClockGen::new(Time::from_us(2)), &[], &[clk]);
        let mut ckt = AnalogCircuit::new();
        let vin = ckt.node("vin", NodeKind::Voltage);
        let vout = ckt.node("vout", NodeKind::Voltage);
        ckt.add("rc", blocks::RcLowPass::new(1e3, 1e-12), &[vin], &[vout]); // tau = 1 ns
        let mut mixed = MixedSimulator::new(
            Simulator::new(net),
            AnalogSolver::new(ckt, Time::from_us(10)), // absurdly coarse
        );
        mixed.bind_driver("clk", "vin", 0.0, 5.0);
        mixed
            .run_until(Time::from_us(1) + Time::from_ns(100))
            .unwrap();
        // 100 ns after the edge (100 tau), the fast RC has fully charged —
        // only possible if the edge landed at exactly 1 us.
        assert!((mixed.analog().value(vout) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn merged_trace_contains_both_domains() {
        let mut mixed = sine_counter(10e6);
        mixed.digital_mut().monitor_name("clk");
        mixed.analog_mut().monitor_name("sine");
        mixed.run_until(Time::from_us(1)).unwrap();
        let trace = mixed.merged_trace();
        assert!(trace.digital("clk").is_some());
        assert!(trace.analog("sine").is_some());
    }

    #[test]
    fn checkpoint_fork_equals_scratch_with_shared_stops() {
        let stop = Time::from_ns(437); // off every step grid on purpose
        let end = Time::from_us(2);

        let mut golden = sine_counter(10e6);
        golden.digital_mut().monitor_name("clk");
        golden.analog_mut().monitor_name("sine");
        golden.run_until(stop).unwrap();
        let cp = golden.checkpoint();
        golden.run_until(end).unwrap();

        let mut scratch = sine_counter(10e6);
        scratch.digital_mut().monitor_name("clk");
        scratch.analog_mut().monitor_name("sine");
        scratch.run_until(stop).unwrap();
        scratch.run_until(end).unwrap();

        let mut fork = cp.fork();
        assert_eq!(fork.now(), stop);
        fork.run_until(end).unwrap();
        assert_eq!(fork.merged_trace(), scratch.merged_trace());
        assert_eq!(fork.merged_trace(), golden.merged_trace());
        let q = fork.digital().signal_id("q").unwrap();
        assert_eq!(fork.digital().value(q), scratch.digital().value(q));
    }

    #[test]
    fn restore_validates_the_testbench_structure() {
        let mut mixed = sine_counter(10e6);
        mixed.run_until(Time::from_ns(100)).unwrap();
        let cp = mixed.checkpoint();

        // A different digitizer threshold is a different structure.
        let mut other = sine_counter(10e6);
        other.digitizers[0].threshold = 3.0;
        assert!(other.restore(&cp).is_err());

        let mut twin = sine_counter(10e6);
        twin.run_until(Time::from_us(1)).unwrap();
        twin.restore(&cp).unwrap();
        assert_eq!(twin.now(), Time::from_ns(100));
    }

    #[test]
    fn step_budget_bounds_the_sync_loop() {
        let mut mixed = sine_counter(10e6);
        mixed.set_budget(SimBudget::unlimited().with_max_steps(5));
        let err = mixed.run_until(Time::from_us(2)).unwrap_err();
        assert!(matches!(
            err,
            SimError::Guard(GuardViolation::StepBudgetExhausted { .. })
        ));
        assert!(mixed.now() < Time::from_us(2));
    }

    #[test]
    fn min_dt_floor_detects_timestep_collapse() {
        // The sine source hints a ~3 ns step; a 1 us floor trips instantly,
        // even though digital event clamping would also shrink the step.
        let mut mixed = sine_counter(10e6);
        mixed.set_budget(SimBudget::unlimited().with_min_dt(Time::from_us(1)));
        let err = mixed.run_until(Time::from_us(1)).unwrap_err();
        match err {
            SimError::Guard(GuardViolation::TimestepCollapse { min_dt, .. }) => {
                assert_eq!(min_dt, Time::from_us(1));
            }
            other => panic!("expected timestep collapse, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_analog_node_trips_the_guard() {
        // A source that pushes the node to infinity mid-run.
        #[derive(Debug, Clone)]
        struct Bomb {
            at: Time,
        }
        impl amsfi_analog::AnalogBlock for Bomb {
            fn step(&mut self, ctx: &mut amsfi_analog::AnalogContext<'_>) {
                let v = if ctx.now() >= self.at {
                    f64::INFINITY
                } else {
                    1.0
                };
                ctx.set(0, v);
            }
        }
        let mut ckt = AnalogCircuit::new();
        let n = ckt.node("boom", NodeKind::Voltage);
        ckt.add(
            "bomb",
            Bomb {
                at: Time::from_ns(50),
            },
            &[],
            &[n],
        );
        let net = Netlist::new();
        let mut mixed = MixedSimulator::new(
            Simulator::new(net),
            AnalogSolver::new(ckt, Time::from_ns(2)),
        );
        mixed.set_budget(SimBudget::unlimited().with_max_steps(1_000_000));
        let err = mixed.run_until(Time::from_us(1)).unwrap_err();
        match err {
            SimError::Guard(GuardViolation::NonFinite { signal, .. }) => {
                assert_eq!(signal, "boom");
            }
            other => panic!("expected non-finite guard, got {other:?}"),
        }
    }

    #[test]
    fn seeding_gives_boundary_signals_a_defined_start() {
        let mut mixed = sine_counter(10e6);
        mixed.digital_mut().monitor_name("clk");
        mixed.run_until(Time::from_ns(100)).unwrap();
        let w = mixed.digital().trace().digital("clk").unwrap();
        // The node starts at 0 V: seeded to '0' at time zero (never 'U'),
        // then the rising sine drives it high within the first quarter
        // period (25 ns).
        assert_eq!(w.value_at(Time::ZERO), Logic::Zero);
        assert_eq!(w.value_at(Time::from_ns(30)), Logic::One);
    }
}
