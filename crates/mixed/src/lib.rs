//! Mixed-mode co-simulation: the kernel that replaces the paper's
//! commercial VHDL-AMS simulator (ADVance-MS).
//!
//! [`MixedSimulator`] runs an event-driven digital netlist
//! ([`amsfi_digital::Simulator`]) and a continuous-time analog circuit
//! ([`amsfi_analog::AnalogSolver`]) in lock-step. Values cross the boundary
//! through two converters:
//!
//! * a **digitizer** (analog → digital): a threshold comparator — the
//!   "Digitizer (Comparator, Threshold 2.5 V)" of the paper's Fig. 5 — with
//!   linear interpolation of the crossing instant, so analog-derived clock
//!   edges keep sub-step timing accuracy;
//! * a **level driver** (digital → analog): a zero-order hold mapping logic
//!   levels onto rail voltages.
//!
//! See [`MixedSimulator`] for a complete runnable example.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod boundary;
mod sim;

pub use boundary::{DetectedEdge, Digitizer, LevelDriver};
pub use sim::MixedSimulator;
