//! Word-parallel digital fault simulation: one event wheel, 64 lanes per
//! gate evaluation.
//!
//! The lane-cloned [`BatchSimulator`](crate::BatchSimulator) advances up to
//! 64 *separate* scalar simulators in lock step — 64 event wheels, 64
//! `LogicVector` stores, 64 component evaluations per logical gate event.
//! This module is the PPSFP-style kernel that collapses all of that into
//! one machine:
//!
//! * **Plane-valued signal store** — each signal bit holds a
//!   [`LogicPlanes`] word: lane `l` of the planes is lane `l` of the batch,
//!   with the golden (fault-free) machine occupying lane
//!   [`GOLDEN_LANE`] (63). All lanes start identical at time zero, so a
//!   mutant lane *is* the golden machine until its injection instant.
//! * **One shared event wheel** — events carry `(planes value, lane mask)`.
//!   A drive applies to exactly the lanes whose mask bit is set *and*
//!   whose per-lane inertial generation still matches, so one event
//!   replaces up to 64 scalar heap operations.
//! * **Word evaluation** — a component is evaluated once per delta with the
//!   union of per-lane wake/change masks; cells with a native
//!   [`WordComponent`] implementation evaluate all lanes in a handful of
//!   plane operations, everything else falls back to a [`LaneFarm`] of 64
//!   scalar clones (still one wheel, one store).
//! * **Exact eval masks** — a lane is included in an evaluation only if one
//!   of *its* input lanes changed or a wake targets it. This is a
//!   correctness requirement, not an optimisation: a spurious evaluation
//!   would bump that lane's inertial generations and cancel pending
//!   transactions the scalar reference would have kept.
//! * **Seal by mask** — reconvergence retires a lane by clearing its bit
//!   from the live mask: signals diverged from golden fall out of a
//!   one-XOR-per-bit plane probe, components compare per-lane state, and
//!   pending events must show equal participation. Sealed lanes splice the
//!   golden suffix exactly like the lane-cloned kernel, so traces stay
//!   byte-identical to scalar runs.
//!
//! Per-lane traces are maintained incrementally: the golden lane records
//! from time zero, a mutant lane clones the golden trace at activation
//! (mirroring the lane-cloned `golden.clone()`) and records its own lanes'
//! changes from then on. Per-lane budgets and observers ride along; a
//! budget trip retires only that lane ([`LaneOutcome::Failed`]) and the
//! campaign engine re-runs the case scalar, preserving byte identity.

use crate::batch::{BatchReport, LaneOutcome};
use crate::component::{Action, Component, EvalContext};
use crate::netlist::{ComponentId, SignalId};
use crate::sim::{SimError, Simulator, WordSeed};
use amsfi_waves::{
    KernelMetrics, LogicPlanes, LogicVector, SimBudget, SimObserver, Time, Trace, LANES,
};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// The lane index reserved for the golden (fault-free) machine.
pub const GOLDEN_LANE: usize = LANES - 1;

/// A component lifted to word (64-lane) evaluation.
///
/// Implementors hold per-lane state and must evaluate exactly the lanes in
/// [`WordEvalContext::eval_mask`] — driving or waking a lane outside the
/// mask would corrupt that lane's inertial-generation bookkeeping.
pub trait WordComponent: Send + std::fmt::Debug {
    /// Evaluates the masked lanes at the context's current time.
    fn eval(&mut self, ctx: &mut WordEvalContext<'_>);

    /// Inverts one memorised bit of one lane (an SEU strike on that lane).
    fn flip_state_bit(&mut self, lane: usize, bit: usize) {
        let _ = (lane, bit);
    }

    /// Replaces one lane's encoded state (an erroneous FSM transition).
    fn force_state(&mut self, lane: usize, value: u64) {
        let _ = (lane, value);
    }

    /// True when lanes `a` and `b` hold exactly the same component state —
    /// the per-component leg of the reconvergence-seal comparison.
    fn lanes_equal(&self, a: usize, b: usize) -> bool;

    /// The scalar component instance backing one lane, if this word
    /// component is a [`LaneFarm`] of clones. Native plane implementations
    /// return `None`; callers needing in-place configuration (e.g. arming a
    /// saboteur) go through this.
    fn lane_component_mut(&mut self, lane: usize) -> Option<&mut dyn Component> {
        let _ = lane;
        None
    }
}

/// One action requested by a word evaluation: the word-level mirror of
/// [`Action`] with an explicit participating-lane mask.
#[derive(Debug)]
enum WordAction {
    Drive {
        transport: bool,
        output: usize,
        value: Vec<LogicPlanes>,
        delay: Time,
        mask: u64,
    },
    Wake {
        delay: Time,
        mask: u64,
    },
}

/// The evaluation context handed to [`WordComponent::eval`]: plane-valued
/// inputs, the lanes being evaluated, and a queue of masked actions.
#[derive(Debug)]
pub struct WordEvalContext<'a> {
    now: Time,
    eval_mask: u64,
    inputs: &'a [Vec<LogicPlanes>],
    actions: Vec<WordAction>,
}

impl<'a> WordEvalContext<'a> {
    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The lanes this evaluation covers. Every drive and wake must target a
    /// subset of this mask.
    pub fn eval_mask(&self) -> u64 {
        self.eval_mask
    }

    /// The planes of input port `index`, one [`LogicPlanes`] per bit.
    pub fn input(&self, index: usize) -> &[LogicPlanes] {
        &self.inputs[index]
    }

    /// The first (and for scalars, only) bit of input port `index`.
    pub fn input_bit(&self, index: usize) -> LogicPlanes {
        self.inputs[index][0]
    }

    /// Number of input ports.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Drives output `output` for every evaluated lane with inertial
    /// semantics.
    pub fn drive(&mut self, output: usize, value: Vec<LogicPlanes>, delay: Time) {
        let mask = self.eval_mask;
        self.drive_masked(output, value, delay, mask);
    }

    /// Single-bit convenience for [`WordEvalContext::drive`].
    pub fn drive_bit(&mut self, output: usize, value: LogicPlanes, delay: Time) {
        self.drive(output, vec![value], delay);
    }

    /// Drives output `output` for the lanes in `mask` (a subset of the eval
    /// mask) with inertial semantics: each masked lane's pending
    /// transactions on this output are cancelled.
    pub fn drive_masked(&mut self, output: usize, value: Vec<LogicPlanes>, delay: Time, mask: u64) {
        debug_assert_eq!(
            mask & !self.eval_mask,
            0,
            "drive mask must be a subset of the eval mask"
        );
        if mask == 0 {
            return;
        }
        self.actions.push(WordAction::Drive {
            transport: false,
            output,
            value,
            delay,
            mask,
        });
    }

    /// Single-bit convenience for [`WordEvalContext::drive_masked`].
    pub fn drive_bit_masked(&mut self, output: usize, value: LogicPlanes, delay: Time, mask: u64) {
        self.drive_masked(output, vec![value], delay, mask);
    }

    /// Drives with transport semantics (pending transactions survive) for
    /// the lanes in `mask`.
    pub fn drive_transport_masked(
        &mut self,
        output: usize,
        value: Vec<LogicPlanes>,
        delay: Time,
        mask: u64,
    ) {
        debug_assert_eq!(
            mask & !self.eval_mask,
            0,
            "drive mask must be a subset of the eval mask"
        );
        if mask == 0 {
            return;
        }
        self.actions.push(WordAction::Drive {
            transport: true,
            output,
            value,
            delay,
            mask,
        });
    }

    /// Requests a re-evaluation of every evaluated lane after `delay`.
    pub fn wake(&mut self, delay: Time) {
        let mask = self.eval_mask;
        self.wake_masked(delay, mask);
    }

    /// Requests a re-evaluation of the lanes in `mask` after `delay`.
    pub fn wake_masked(&mut self, delay: Time, mask: u64) {
        debug_assert_eq!(
            mask & !self.eval_mask,
            0,
            "wake mask must be a subset of the eval mask"
        );
        if mask == 0 {
            return;
        }
        self.actions.push(WordAction::Wake { delay, mask });
    }
}

/// The universal [`WordComponent`] fallback: 64 scalar clones of one
/// component, evaluated per masked lane and their actions merged back into
/// masked word actions.
///
/// Per merge round `r`, the `r`-th action of every evaluated lane is
/// grouped by `(kind, output, delay)`; lanes sharing a group become one
/// word action with per-lane values packed into planes. Per-lane action
/// *order* is preserved (round `r` schedules before round `r + 1`), which
/// keeps each lane's inertial-cancellation sequence identical to a scalar
/// run; cross-lane grouping order is irrelevant because lanes are
/// independent.
struct LaneFarm {
    lanes: Vec<Box<dyn Component>>,
    staged: Vec<LogicVector>,
    lane_actions: Vec<Vec<Action>>,
}

impl std::fmt::Debug for LaneFarm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneFarm")
            .field("lanes", &self.lanes)
            .finish_non_exhaustive()
    }
}

impl LaneFarm {
    fn new(prototype: &dyn Component) -> Self {
        LaneFarm {
            lanes: (0..LANES).map(|_| prototype.clone_box()).collect(),
            staged: Vec::new(),
            lane_actions: (0..LANES).map(|_| Vec::new()).collect(),
        }
    }
}

/// One merge group of a [`LaneFarm`] round.
enum FarmGroup {
    Drive {
        transport: bool,
        output: usize,
        delay: Time,
        mask: u64,
        value: Vec<LogicPlanes>,
    },
    Wake {
        delay: Time,
        mask: u64,
    },
}

impl WordComponent for LaneFarm {
    fn eval(&mut self, ctx: &mut WordEvalContext<'_>) {
        let mask = ctx.eval_mask();
        let ports = ctx.input_count();
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            self.staged.clear();
            for port in 0..ports {
                self.staged
                    .push(ctx.input(port).iter().map(|p| p.lane(lane)).collect());
            }
            let recycled = std::mem::take(&mut self.lane_actions[lane]);
            let mut sctx = EvalContext::reuse(ctx.now(), &self.staged, recycled);
            self.lanes[lane].eval(&mut sctx);
            self.lane_actions[lane] = std::mem::take(&mut sctx.actions);
        }

        let mut groups: Vec<FarmGroup> = Vec::new();
        let mut round = 0usize;
        loop {
            groups.clear();
            let mut progressed = false;
            let mut m = mask;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                let Some(action) = self.lane_actions[lane].get(round) else {
                    continue;
                };
                progressed = true;
                match action {
                    Action::DriveInertial {
                        output,
                        value,
                        delay,
                    }
                    | Action::DriveTransport {
                        output,
                        value,
                        delay,
                    } => {
                        let transport = matches!(action, Action::DriveTransport { .. });
                        let slot = groups.iter_mut().find_map(|g| match g {
                            FarmGroup::Drive {
                                transport: tr,
                                output: o,
                                delay: d,
                                mask,
                                value,
                            } if *tr == transport && *o == *output && *d == *delay => {
                                Some((mask, value))
                            }
                            _ => None,
                        });
                        let (group_mask, group_value) = match slot {
                            Some(found) => found,
                            None => {
                                groups.push(FarmGroup::Drive {
                                    transport,
                                    output: *output,
                                    delay: *delay,
                                    mask: 0,
                                    value: vec![LogicPlanes::new(); value.width()],
                                });
                                let Some(FarmGroup::Drive { mask, value, .. }) = groups.last_mut()
                                else {
                                    unreachable!("just pushed a drive group");
                                };
                                (mask, value)
                            }
                        };
                        *group_mask |= 1 << lane;
                        for (bit, planes) in group_value.iter_mut().enumerate() {
                            planes.set_lane(lane, value[bit]);
                        }
                    }
                    Action::Wake { delay } => {
                        let slot = groups.iter_mut().find_map(|g| match g {
                            FarmGroup::Wake { delay: d, mask } if *d == *delay => Some(mask),
                            _ => None,
                        });
                        match slot {
                            Some(group_mask) => *group_mask |= 1 << lane,
                            None => groups.push(FarmGroup::Wake {
                                delay: *delay,
                                mask: 1 << lane,
                            }),
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
            for group in groups.drain(..) {
                match group {
                    FarmGroup::Drive {
                        transport: false,
                        output,
                        delay,
                        mask,
                        value,
                    } => ctx.drive_masked(output, value, delay, mask),
                    FarmGroup::Drive {
                        transport: true,
                        output,
                        delay,
                        mask,
                        value,
                    } => ctx.drive_transport_masked(output, value, delay, mask),
                    FarmGroup::Wake { delay, mask } => ctx.wake_masked(delay, mask),
                }
            }
            round += 1;
        }
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            self.lane_actions[lane].clear();
        }
    }

    fn flip_state_bit(&mut self, lane: usize, bit: usize) {
        self.lanes[lane].flip_state_bit(bit);
    }

    fn force_state(&mut self, lane: usize, value: u64) {
        self.lanes[lane].force_state(value);
    }

    fn lanes_equal(&self, a: usize, b: usize) -> bool {
        // Same criterion as the scalar seal comparison
        // (`Simulator::lockstep_state_eq`): `Debug`-rendered state equality.
        format!("{:?}", self.lanes[a]) == format!("{:?}", self.lanes[b])
    }

    fn lane_component_mut(&mut self, lane: usize) -> Option<&mut dyn Component> {
        Some(&mut *self.lanes[lane])
    }
}

/// Per-lane inertial generations attached to a pending drive event.
#[derive(Debug)]
enum GenSet {
    /// All participating lanes were scheduled at the same generation (the
    /// lock-step common case).
    Uniform(u64),
    /// Per-lane generations, indexed by lane.
    PerLane(Box<[u64; LANES]>),
}

#[derive(Debug)]
enum WordEventKind {
    Drive {
        component: usize,
        output: usize,
        value: Vec<LogicPlanes>,
        mask: u64,
        gens: GenSet,
    },
    Wake {
        component: usize,
        mask: u64,
    },
}

#[derive(Debug)]
struct WordEvent {
    time: Time,
    seq: u64,
    kind: WordEventKind,
}

impl PartialEq for WordEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for WordEvent {}

impl PartialOrd for WordEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WordEvent {
    /// Reversed so the `BinaryHeap` becomes a min-heap on `(time, seq)`.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct WordSignal {
    name: String,
    width: usize,
    planes: Vec<LogicPlanes>,
    readers: Vec<usize>,
    monitored: bool,
}

struct WordSlot {
    name: String,
    comp: Box<dyn WordComponent>,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
    /// Per-output, per-lane driver generation for inertial cancellation.
    out_gens: Vec<Vec<u64>>,
}

/// Reusable hot-loop buffers of the word kernel, mirroring the scalar
/// simulator's `SimScratch` but with per-entry lane masks instead of bits.
#[derive(Default)]
struct WordScratch {
    /// Per-signal changed-lane mask for the current time point.
    changed: Vec<u64>,
    changed_list: Vec<usize>,
    /// Per-component eval-lane mask for the current delta cycle.
    eval: Vec<u64>,
    eval_list: Vec<usize>,
    /// Input planes staged for the component being evaluated.
    inputs: Vec<Vec<LogicPlanes>>,
    /// Recycled action list handed to each [`WordEvalContext`].
    actions: Vec<WordAction>,
}

/// The 64-lane word machine: plane-valued signals, one event wheel, one
/// evaluation per gate event. Crate-internal; driven by
/// [`WordBatchSimulator`].
struct WordSimulator {
    signals: Vec<WordSignal>,
    components: Vec<WordSlot>,
    queue: BinaryHeap<WordEvent>,
    seq: u64,
    now: Time,
    delta_limit: usize,
    events_processed: u64,
    /// Lanes still simulating (sealed/failed/unused lanes are frozen).
    live: u64,
    /// Lanes whose trace is being recorded (golden + activated mutants).
    recording: u64,
    /// Mutant lanes that have been activated (injected).
    injected: u64,
    /// Per-lane traces; index [`GOLDEN_LANE`] is the golden trace.
    traces: Vec<Trace>,
    /// Machine-wide (golden) budget: a trip here aborts the whole word run.
    budget: SimBudget,
    golden_observer: Option<SimObserver>,
    lane_budgets: Vec<Option<SimBudget>>,
    lane_observers: Vec<Option<SimObserver>>,
    lane_failures: Vec<Option<String>>,
    scratch: WordScratch,
}

impl WordSimulator {
    /// Builds the word machine from an unstarted scalar simulator.
    ///
    /// # Panics
    ///
    /// Panics if the simulator has already run: all 64 lanes must share the
    /// power-on state so a mutant lane equals the golden machine until its
    /// injection instant.
    fn from_scalar(sim: Simulator) -> Self {
        let seed: WordSeed = sim.into_word_seed();
        assert!(
            !seed.started && seed.now == Time::ZERO,
            "word-parallel conversion requires an unstarted simulator"
        );
        let signals = seed
            .signals
            .into_iter()
            .map(|s| WordSignal {
                planes: s.value.iter().map(LogicPlanes::splat).collect(),
                name: s.name,
                width: s.width,
                readers: s.readers,
                monitored: s.monitored,
            })
            .collect();
        let components: Vec<WordSlot> = seed
            .components
            .into_iter()
            .map(|c| {
                let comp = c
                    .comp
                    .word_component()
                    .unwrap_or_else(|| Box::new(LaneFarm::new(&*c.comp)));
                WordSlot {
                    name: c.name,
                    comp,
                    out_gens: c.outputs.iter().map(|_| vec![0u64; LANES]).collect(),
                    inputs: c.inputs,
                    outputs: c.outputs,
                }
            })
            .collect();
        let mut sim = WordSimulator {
            signals,
            components,
            queue: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
            delta_limit: seed.delta_limit,
            events_processed: 0,
            live: u64::MAX,
            recording: 1 << GOLDEN_LANE,
            injected: 0,
            traces: (0..LANES).map(|_| Trace::new()).collect(),
            budget: seed.budget,
            golden_observer: seed.observer,
            lane_budgets: (0..LANES).map(|_| None).collect(),
            lane_observers: (0..LANES).map(|_| None).collect(),
            lane_failures: (0..LANES).map(|_| None).collect(),
            scratch: WordScratch::default(),
        };
        for c in 0..sim.components.len() {
            sim.push_event(
                Time::ZERO,
                WordEventKind::Wake {
                    component: c,
                    mask: u64::MAX,
                },
            );
        }
        sim
    }

    fn push_event(&mut self, time: Time, kind: WordEventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(WordEvent { time, seq, kind });
    }

    /// Retires lane `lane` with an error: frozen, no longer recorded.
    fn fail_lane(&mut self, lane: usize, error: String) {
        self.lane_failures[lane] = Some(error);
        self.live &= !(1 << lane);
        self.recording &= !(1 << lane);
    }

    /// Runs until simulation time `t_end`, processing every event at or
    /// before it across all live lanes.
    ///
    /// # Errors
    ///
    /// A delta overflow or a machine-wide (golden) budget trip fails the
    /// whole word run — per-lane faults cannot be untangled from a
    /// non-converging word delta cycle, and nothing can be compared
    /// against a broken golden lane. Per-*lane* budget trips retire only
    /// that lane (recorded in `lane_failures`).
    fn run_until(&mut self, t_end: Time) -> Result<(), SimError> {
        let before = self.events_processed;
        let result = self.drain_until(t_end);
        if let Some(metrics) = self.budget.metrics() {
            metrics.digital_events.add(self.events_processed - before);
        }
        result
    }

    fn drain_until(&mut self, t_end: Time) -> Result<(), SimError> {
        while let Some(event) = self.queue.peek() {
            let t = event.time;
            if t > t_end {
                break;
            }
            self.budget.note_step(t)?;
            self.note_lane_budgets(t);
            self.advance_time_point(t)?;
            self.poll_observers(t);
        }
        if t_end > self.now {
            self.now = t_end;
        }
        let now = self.now;
        if let Some(observer) = self.golden_observer.as_mut() {
            observer.flush(now, &[&self.traces[GOLDEN_LANE]]);
        }
        for lane in 0..LANES {
            if lane != GOLDEN_LANE && self.recording & (1 << lane) != 0 {
                if let Some(observer) = self.lane_observers[lane].as_mut() {
                    observer.flush(now, &[&self.traces[lane]]);
                }
            }
        }
        Ok(())
    }

    /// Charges one step to every activated live lane's budget; a trip
    /// retires that lane only.
    fn note_lane_budgets(&mut self, t: Time) {
        let mut m = self.injected & self.live;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            if let Some(budget) = self.lane_budgets[lane].as_mut() {
                if let Err(v) = budget.note_step(t) {
                    self.fail_lane(lane, SimError::from(v).to_string());
                }
            }
        }
    }

    fn poll_observers(&mut self, t: Time) {
        if let Some(observer) = self.golden_observer.as_mut() {
            observer.poll(t, &[&self.traces[GOLDEN_LANE]]);
        }
        for lane in 0..LANES {
            if lane != GOLDEN_LANE && self.recording & (1 << lane) != 0 {
                if let Some(observer) = self.lane_observers[lane].as_mut() {
                    observer.poll(t, &[&self.traces[lane]]);
                }
            }
        }
    }

    fn mark_changed(&mut self, sig: usize, lanes: u64) {
        if self.scratch.changed[sig] == 0 {
            self.scratch.changed_list.push(sig);
        }
        self.scratch.changed[sig] |= lanes;
    }

    fn mark_eval(&mut self, comp: usize, lanes: u64) {
        if self.scratch.eval[comp] == 0 {
            self.scratch.eval_list.push(comp);
        }
        self.scratch.eval[comp] |= lanes;
    }

    /// The lanes of a pending drive whose generation still matches the
    /// driver's current per-lane counter.
    fn gen_match_mask(&self, component: usize, output: usize, gens: &GenSet, mask: u64) -> u64 {
        let current = &self.components[component].out_gens[output];
        let mut ok = 0u64;
        let mut m = mask;
        match gens {
            GenSet::Uniform(g) => {
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if current[lane] == *g {
                        ok |= 1 << lane;
                    }
                }
            }
            GenSet::PerLane(v) => {
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if current[lane] == v[lane] {
                        ok |= 1 << lane;
                    }
                }
            }
        }
        ok
    }

    /// Processes every event and delta cycle at time `t` for all live
    /// lanes, then records per-lane transitions of monitored signals.
    fn advance_time_point(&mut self, t: Time) -> Result<(), SimError> {
        self.now = t;
        self.scratch.changed.resize(self.signals.len(), 0);
        self.scratch.eval.resize(self.components.len(), 0);
        let mut delta = 0usize;
        loop {
            let mut any_event = false;
            while self.queue.peek().is_some_and(|e| e.time == t) {
                let event = self.queue.pop().expect("peeked");
                any_event = true;
                self.events_processed += 1;
                match event.kind {
                    WordEventKind::Drive {
                        component,
                        output,
                        value,
                        mask,
                        gens,
                    } => {
                        let valid = self.gen_match_mask(component, output, &gens, mask) & self.live;
                        if valid == 0 {
                            continue;
                        }
                        let sig = self.components[component].outputs[output].0;
                        debug_assert_eq!(
                            self.signals[sig].width,
                            value.len(),
                            "component {:?} drove width {} onto signal {:?} of width {}",
                            self.components[component].name,
                            value.len(),
                            self.signals[sig].name,
                            self.signals[sig].width,
                        );
                        let mut changed_lanes = 0u64;
                        {
                            let state = &mut self.signals[sig];
                            for (bit, v) in value.iter().enumerate() {
                                let old = state.planes[bit];
                                let new = old.select(valid, *v);
                                changed_lanes |= new.diverged_mask(old);
                                state.planes[bit] = new;
                            }
                        }
                        if changed_lanes != 0 {
                            self.mark_changed(sig, changed_lanes);
                            for i in 0..self.signals[sig].readers.len() {
                                let reader = self.signals[sig].readers[i];
                                self.mark_eval(reader, changed_lanes);
                            }
                        }
                    }
                    WordEventKind::Wake { component, mask } => {
                        let lanes = mask & self.live;
                        if lanes != 0 {
                            self.mark_eval(component, lanes);
                        }
                    }
                }
            }
            if !any_event && self.scratch.eval_list.is_empty() {
                break;
            }
            // Evaluate sensitive components in deterministic id order, like
            // the scalar kernel's ascending bitset drain.
            let mut eval_list = std::mem::take(&mut self.scratch.eval_list);
            eval_list.sort_unstable();
            for &c in &eval_list {
                let mask = std::mem::replace(&mut self.scratch.eval[c], 0);
                if mask != 0 {
                    self.eval_component(c, t, mask);
                }
            }
            eval_list.clear();
            self.scratch.eval_list = eval_list;
            delta += 1;
            if delta > self.delta_limit {
                return Err(SimError::DeltaOverflow {
                    time: t,
                    limit: self.delta_limit,
                });
            }
            if self.queue.peek().is_none_or(|e| e.time != t) {
                break;
            }
        }
        // Record per-lane transitions of monitored signals that settled to
        // a new value at t, ascending signal id like the scalar kernel.
        let mut changed_list = std::mem::take(&mut self.scratch.changed_list);
        changed_list.sort_unstable();
        for &sig in &changed_list {
            let lanes = std::mem::replace(&mut self.scratch.changed[sig], 0);
            let rec = lanes & self.recording & self.live;
            let state = &self.signals[sig];
            if rec == 0 || !state.monitored {
                continue;
            }
            let mut m = rec;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                if state.width == 1 {
                    self.traces[lane]
                        .record_digital(&state.name, t, state.planes[0].lane(lane))
                        .expect("time is monotonic");
                } else {
                    for bit in 0..state.width {
                        let bit_name = format!("{}[{bit}]", state.name);
                        self.traces[lane]
                            .record_digital(&bit_name, t, state.planes[bit].lane(lane))
                            .expect("time is monotonic");
                    }
                }
            }
        }
        changed_list.clear();
        self.scratch.changed_list = changed_list;
        Ok(())
    }

    /// Evaluates component `c` for the lanes in `mask` and schedules its
    /// masked actions with per-lane generation bookkeeping.
    fn eval_component(&mut self, c: usize, t: Time, mask: u64) {
        let mut actions = {
            let slot = &self.components[c];
            let ports = slot.inputs.len();
            let inputs = &mut self.scratch.inputs;
            if inputs.len() < ports {
                inputs.resize_with(ports, Vec::new);
            }
            for (port, &sig) in slot.inputs.iter().enumerate() {
                inputs[port].clear();
                inputs[port].extend_from_slice(&self.signals[sig.0].planes);
            }
            let recycled = std::mem::take(&mut self.scratch.actions);
            let mut ctx = WordEvalContext {
                now: t,
                eval_mask: mask,
                inputs: &inputs[..ports],
                actions: recycled,
            };
            self.components[c].comp.eval(&mut ctx);
            ctx.actions
        };
        for action in actions.drain(..) {
            match action {
                WordAction::Drive {
                    transport,
                    output,
                    value,
                    delay,
                    mask: lanes,
                } => {
                    let gens = {
                        let current = &mut self.components[c].out_gens[output];
                        if !transport {
                            let mut m = lanes;
                            while m != 0 {
                                let lane = m.trailing_zeros() as usize;
                                m &= m - 1;
                                current[lane] += 1;
                            }
                        }
                        snapshot_gens(current, lanes)
                    };
                    self.push_event(
                        t + delay,
                        WordEventKind::Drive {
                            component: c,
                            output,
                            value,
                            mask: lanes,
                            gens,
                        },
                    );
                }
                WordAction::Wake { delay, mask: lanes } => {
                    self.push_event(
                        t + delay,
                        WordEventKind::Wake {
                            component: c,
                            mask: lanes,
                        },
                    );
                }
            }
        }
        self.scratch.actions = actions;
    }

    /// True when lane `lane`'s complete future-relevant machine state equals
    /// the golden lane's: every component's per-lane state matches and every
    /// pending event shows equal (valid) participation with equal values.
    /// Signal equality is checked by the caller's plane probe. Conservative:
    /// equivalent-but-differently-scheduled futures are not recognised,
    /// which can only delay a seal, never corrupt one.
    fn lane_state_eq_golden(&self, lane: usize) -> bool {
        for slot in &self.components {
            if !slot.comp.lanes_equal(lane, GOLDEN_LANE) {
                return false;
            }
        }
        for event in &self.queue {
            match &event.kind {
                WordEventKind::Wake { mask, .. } => {
                    if (mask >> lane) & 1 != (mask >> GOLDEN_LANE) & 1 {
                        return false;
                    }
                }
                WordEventKind::Drive {
                    component,
                    output,
                    value,
                    mask,
                    gens,
                } => {
                    let valid = self.gen_match_mask(*component, *output, gens, *mask);
                    let in_lane = (valid >> lane) & 1 != 0;
                    if in_lane != ((valid >> GOLDEN_LANE) & 1 != 0) {
                        return false;
                    }
                    if in_lane && value.iter().any(|p| p.lane(lane) != p.lane(GOLDEN_LANE)) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Snapshots the per-lane generations of `lanes`, collapsing to
/// [`GenSet::Uniform`] when they agree (the lock-step common case).
fn snapshot_gens(current: &[u64], lanes: u64) -> GenSet {
    let mut m = lanes;
    let first = current[m.trailing_zeros() as usize];
    while m != 0 {
        let lane = m.trailing_zeros() as usize;
        m &= m - 1;
        if current[lane] != first {
            let mut all = [0u64; LANES];
            all.copy_from_slice(current);
            return GenSet::PerLane(Box::new(all));
        }
    }
    GenSet::Uniform(first)
}

/// A mid-run fault-injection surface shared by the scalar [`Simulator`]
/// and one lane of the word machine, so a campaign's inject/setup closures
/// can run unchanged on either kernel.
pub trait InjectTarget {
    /// Inverts one memorised bit (an SEU) and schedules a re-evaluation.
    fn flip_state(&mut self, component: ComponentId, bit: usize);

    /// Forces the encoded state (an erroneous FSM transition) and schedules
    /// a re-evaluation.
    fn force_state(&mut self, component: ComponentId, value: u64);

    /// Looks up a component instance by name.
    fn component_id(&self, name: &str) -> Option<ComponentId>;

    /// Mutable access to a component instance, for in-place configuration
    /// such as arming a saboteur.
    ///
    /// # Panics
    ///
    /// On a word-kernel lane whose component has a native plane
    /// implementation (no per-lane scalar instance exists). Saboteurs and
    /// all other stateful injection surfaces are farm-backed, so campaign
    /// inject closures never hit this.
    fn component_mut(&mut self, component: ComponentId) -> &mut dyn Component;

    /// Schedules a re-evaluation of `component` at `at` (clamped to the
    /// present).
    fn wake_component(&mut self, component: ComponentId, at: Time);

    /// Installs the per-case budget.
    fn set_budget(&mut self, budget: SimBudget);

    /// Installs the per-case observer.
    fn set_observer(&mut self, observer: SimObserver);
}

impl InjectTarget for Simulator {
    fn flip_state(&mut self, component: ComponentId, bit: usize) {
        Simulator::flip_state(self, component, bit);
    }

    fn force_state(&mut self, component: ComponentId, value: u64) {
        Simulator::force_state(self, component, value);
    }

    fn component_id(&self, name: &str) -> Option<ComponentId> {
        Simulator::component_id(self, name)
    }

    fn component_mut(&mut self, component: ComponentId) -> &mut dyn Component {
        Simulator::component_mut(self, component)
    }

    fn wake_component(&mut self, component: ComponentId, at: Time) {
        Simulator::wake_component(self, component, at);
    }

    fn set_budget(&mut self, budget: SimBudget) {
        Simulator::set_budget(self, budget);
    }

    fn set_observer(&mut self, observer: SimObserver) {
        Simulator::set_observer(self, observer);
    }
}

/// One lane of the word machine viewed as an injection surface.
struct WordLaneCtx<'a> {
    sim: &'a mut WordSimulator,
    lane: usize,
}

impl InjectTarget for WordLaneCtx<'_> {
    fn flip_state(&mut self, component: ComponentId, bit: usize) {
        self.sim.components[component.0]
            .comp
            .flip_state_bit(self.lane, bit);
        let now = self.sim.now;
        self.sim.push_event(
            now,
            WordEventKind::Wake {
                component: component.0,
                mask: 1 << self.lane,
            },
        );
    }

    fn force_state(&mut self, component: ComponentId, value: u64) {
        self.sim.components[component.0]
            .comp
            .force_state(self.lane, value);
        let now = self.sim.now;
        self.sim.push_event(
            now,
            WordEventKind::Wake {
                component: component.0,
                mask: 1 << self.lane,
            },
        );
    }

    fn component_id(&self, name: &str) -> Option<ComponentId> {
        self.sim
            .components
            .iter()
            .position(|slot| slot.name == name)
            .map(ComponentId)
    }

    fn component_mut(&mut self, component: ComponentId) -> &mut dyn Component {
        let name = self.sim.components[component.0].name.clone();
        self.sim.components[component.0]
            .comp
            .lane_component_mut(self.lane)
            .unwrap_or_else(|| {
                panic!("component {name:?} has a native word implementation; no per-lane scalar instance to configure")
            })
    }

    fn wake_component(&mut self, component: ComponentId, at: Time) {
        let at = at.max(self.sim.now);
        self.sim.push_event(
            at,
            WordEventKind::Wake {
                component: component.0,
                mask: 1 << self.lane,
            },
        );
    }

    fn set_budget(&mut self, budget: SimBudget) {
        self.sim.lane_budgets[self.lane] = Some(budget);
    }

    fn set_observer(&mut self, observer: SimObserver) {
        self.sim.lane_observers[self.lane] = Some(observer);
    }
}

enum WordLaneState {
    Pending,
    Running,
    Sealed { trace: Trace, at: Time },
    Failed(String),
}

struct WordLane {
    inject_at: Time,
    state: WordLaneState,
}

/// Word-parallel counterpart of [`BatchSimulator`](crate::BatchSimulator):
/// up to [`WordBatchSimulator::MAX_LANES`] mutant lanes plus the golden
/// machine in one 64-lane word, sharing a single event wheel.
///
/// The run contract (stop grid, injection positioning, per-lane outcomes,
/// golden-suffix splicing) matches the lane-cloned kernel, so it produces
/// the same [`BatchReport`] and byte-identical traces — the closures just
/// take [`InjectTarget`] instead of `&mut Simulator`.
///
/// # Examples
///
/// ```
/// use amsfi_digital::{cells, LaneOutcome, Netlist, Simulator, WordBatchSimulator};
/// use amsfi_waves::{Logic, Time};
///
/// fn build() -> Simulator {
///     let mut net = Netlist::new();
///     let clk = net.signal("clk", 1);
///     let rst = net.signal("rst", 1);
///     let en = net.signal("en", 1);
///     let q = net.signal("q", 8);
///     net.add("ck", cells::ClockGen::new(Time::from_ns(20)), &[], &[clk]);
///     net.add("r", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
///     net.add("e", cells::ConstVector::bit(Logic::One), &[], &[en]);
///     net.add("ctr", cells::Counter::new(8, Time::ZERO), &[clk, rst, en], &[q]);
///     let mut sim = Simulator::new(net);
///     sim.monitor_name("q");
///     sim
/// }
///
/// let targets = build().mutant_targets();
/// let ctr = targets.iter().find(|t| t.component_name == "ctr").unwrap();
///
/// let mut batch = WordBatchSimulator::new(build(), Time::from_us(2));
/// batch.add_lane(Time::from_ns(100));
/// let report = batch.run(
///     |_lane, target| {
///         target.flip_state(ctr.component, ctr.bit);
///         Ok(())
///     },
///     |_lane, _target| {},
/// )?;
/// assert!(matches!(report.outcomes[0], LaneOutcome::Completed { .. }));
/// # Ok::<(), amsfi_digital::SimError>(())
/// ```
pub struct WordBatchSimulator {
    sim: WordSimulator,
    t_end: Time,
    seal_stride: Option<Time>,
    lanes: Vec<WordLane>,
    metrics: Option<Arc<KernelMetrics>>,
}

impl std::fmt::Debug for WordBatchSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WordBatchSimulator")
            .field("t_end", &self.t_end)
            .field("lanes", &self.lanes.len())
            .finish_non_exhaustive()
    }
}

impl WordBatchSimulator {
    /// Mutant lanes per word: lane [`GOLDEN_LANE`] is the golden machine.
    pub const MAX_LANES: usize = LANES - 1;

    /// Wraps a fault-free, *unstarted* simulator (monitoring already
    /// attached, budget already installed) as a word batch to `t_end`.
    ///
    /// # Panics
    ///
    /// Panics if the simulator has already run (see the word kernel's
    /// shared-prefix requirement).
    pub fn new(golden: Simulator, t_end: Time) -> Self {
        WordBatchSimulator {
            sim: WordSimulator::from_scalar(golden),
            t_end,
            seal_stride: None,
            lanes: Vec::new(),
            metrics: None,
        }
    }

    /// Sets the spacing of intermediate lock-step stops (divergence probes
    /// and seal checks), like
    /// [`BatchSimulator::with_seal_stride`](crate::BatchSimulator::with_seal_stride).
    #[must_use]
    pub fn with_seal_stride(mut self, stride: Time) -> Self {
        assert!(stride > Time::ZERO, "seal stride must be positive");
        self.seal_stride = Some(stride);
        self
    }

    /// Feeds the lanes-active/lane-occupancy histograms and lane-seal
    /// counter.
    pub fn set_metrics(&mut self, metrics: Arc<KernelMetrics>) {
        self.metrics = Some(metrics);
    }

    /// Adds a mutant lane injected at `inject_at` (clamped to the horizon)
    /// and returns its lane id.
    ///
    /// # Panics
    ///
    /// Panics when the batch already holds
    /// [`WordBatchSimulator::MAX_LANES`] lanes.
    pub fn add_lane(&mut self, inject_at: Time) -> usize {
        assert!(
            self.lanes.len() < Self::MAX_LANES,
            "a word batch holds at most {} mutant lanes",
            Self::MAX_LANES
        );
        self.lanes.push(WordLane {
            inject_at: inject_at.min(self.t_end),
            state: WordLaneState::Pending,
        });
        self.lanes.len() - 1
    }

    /// The lock-step stop grid: every injection instant, seal-check
    /// points, and the horizon. Ascending and deduplicated.
    fn stops(&self) -> Vec<Time> {
        let mut stops: Vec<Time> = self.lanes.iter().map(|l| l.inject_at).collect();
        let start = self.sim.now;
        let stride = self.seal_stride.unwrap_or_else(|| {
            let span = self.t_end - start;
            (span / 64).max(Time::from_fs(1))
        });
        let mut t = start + stride;
        while t < self.t_end {
            stops.push(t);
            t += stride;
        }
        stops.push(self.t_end);
        stops.sort_unstable();
        stops.dedup();
        stops.retain(|&t| t >= start);
        stops
    }

    /// Moves per-lane failures recorded inside the word machine (budget
    /// trips) into the lane table.
    fn collect_failures(&mut self) {
        for (lane_id, lane) in self.lanes.iter_mut().enumerate() {
            if matches!(lane.state, WordLaneState::Running) {
                if let Some(error) = self.sim.lane_failures[lane_id].take() {
                    lane.state = WordLaneState::Failed(error);
                }
            }
        }
    }

    /// Runs the batch to the horizon. Same contract as
    /// [`BatchSimulator::run`](crate::BatchSimulator::run): `inject` arms a
    /// lane's fault positioned exactly at its injection instant, `setup`
    /// runs first (budgets, observers); only a golden/machine-wide failure
    /// is an error, per-lane failures land in the lane's [`LaneOutcome`].
    ///
    /// # Errors
    ///
    /// A machine-wide failure: golden budget trip or word delta overflow
    /// (a word delta cycle's non-convergence cannot be attributed to one
    /// lane). The campaign engine falls back to scalar for the whole group.
    pub fn run(
        mut self,
        mut inject: impl FnMut(usize, &mut dyn InjectTarget) -> Result<(), String>,
        mut setup: impl FnMut(usize, &mut dyn InjectTarget),
    ) -> Result<BatchReport, SimError> {
        // Freeze the unused lanes: only added mutants and golden simulate.
        let mut used = 1u64 << GOLDEN_LANE;
        for lane_id in 0..self.lanes.len() {
            used |= 1 << lane_id;
        }
        self.sim.live = used;

        let stops = self.stops();
        for &t in &stops {
            self.sim.run_until(t)?;
            self.collect_failures();

            // Activate lanes whose injection instant this stop is: clone
            // the golden trace prefix (the in-word equivalent of cloning
            // the golden machine), then run setup + inject on the lane.
            let mut activated = false;
            for lane_id in 0..self.lanes.len() {
                if !matches!(self.lanes[lane_id].state, WordLaneState::Pending)
                    || self.lanes[lane_id].inject_at != t
                {
                    continue;
                }
                self.sim.traces[lane_id] = self.sim.traces[GOLDEN_LANE].clone();
                self.sim.recording |= 1 << lane_id;
                self.sim.injected |= 1 << lane_id;
                let mut ctx = WordLaneCtx {
                    sim: &mut self.sim,
                    lane: lane_id,
                };
                setup(lane_id, &mut ctx);
                match inject(lane_id, &mut ctx) {
                    Ok(()) => {
                        self.lanes[lane_id].state = WordLaneState::Running;
                        activated = true;
                    }
                    Err(e) => {
                        self.sim.fail_lane(lane_id, e.clone());
                        self.sim.lane_failures[lane_id] = None;
                        self.lanes[lane_id].state = WordLaneState::Failed(e);
                    }
                }
            }
            // Drain the injection wakes scheduled at the stop itself, so
            // the corrupted state propagates before the seal probe — the
            // same re-opened time point a cloned lane processes.
            if activated {
                self.sim.run_until(t)?;
                self.collect_failures();
            }

            self.seal_reconverged(t);

            let active = self
                .lanes
                .iter()
                .filter(|l| matches!(l.state, WordLaneState::Running | WordLaneState::Pending))
                .count();
            if let Some(metrics) = &self.metrics {
                metrics.lanes_active.observe(active as u64);
                // Mutant lanes only: the golden lane is live by
                // construction, and excluding it keeps every observation
                // within the 63-slot mutant capacity (so the log₂ p50
                // never reads past the word width).
                metrics
                    .lane_occupancy
                    .observe(u64::from(self.sim.live.count_ones().saturating_sub(1)));
            }
            if active == 0 {
                break;
            }
        }
        // The golden lane must reach the horizon even if every mutant lane
        // retired early: sealed traces splice in its suffix.
        self.sim.run_until(self.t_end)?;
        self.collect_failures();

        let golden_trace = std::mem::take(&mut self.sim.traces[GOLDEN_LANE]);
        let outcomes = self
            .lanes
            .iter_mut()
            .enumerate()
            .map(|(lane_id, lane)| {
                match std::mem::replace(&mut lane.state, WordLaneState::Pending) {
                    WordLaneState::Pending => {
                        unreachable!("stop grid covers every injection instant")
                    }
                    WordLaneState::Running => LaneOutcome::Completed {
                        trace: std::mem::take(&mut self.sim.traces[lane_id]),
                        sealed_at: None,
                    },
                    WordLaneState::Sealed { mut trace, at } => {
                        trace.splice_golden_suffix(&golden_trace, at);
                        LaneOutcome::Completed {
                            trace,
                            sealed_at: Some(at),
                        }
                    }
                    WordLaneState::Failed(error) => LaneOutcome::Failed { error },
                }
            })
            .collect();
        Ok(BatchReport {
            golden: golden_trace,
            outcomes,
        })
    }

    /// Seals every running lane whose machine state has reconverged with
    /// the golden lane's at stop `t`: plane-XOR probe over *all* signals
    /// first (one `diverged_mask` per signal bit covers every lane at
    /// once), then per-component and pending-event confirmation for the
    /// clean candidates.
    fn seal_reconverged(&mut self, t: Time) {
        let mut candidates = 0u64;
        for (lane_id, lane) in self.lanes.iter().enumerate() {
            if matches!(lane.state, WordLaneState::Running) {
                candidates |= 1 << lane_id;
            }
        }
        if candidates == 0 {
            return;
        }
        let mut diverged = 0u64;
        for sig in &self.sim.signals {
            for plane in &sig.planes {
                diverged |= plane.diverged_mask(plane.broadcast_lane(GOLDEN_LANE));
            }
        }
        let mut m = candidates & !diverged;
        while m != 0 {
            let lane_id = m.trailing_zeros() as usize;
            m &= m - 1;
            if !self.sim.lane_state_eq_golden(lane_id) {
                continue;
            }
            let trace = std::mem::take(&mut self.sim.traces[lane_id]);
            self.lanes[lane_id].state = WordLaneState::Sealed { trace, at: t };
            self.sim.live &= !(1 << lane_id);
            self.sim.recording &= !(1 << lane_id);
            if let Some(metrics) = &self.metrics {
                metrics.lane_seals.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{ClockGen, ConstVector, Counter};
    use crate::{DigitalSaboteur, Netlist};
    use amsfi_faults::{DigitalFault, DigitalFaultKind};
    use amsfi_waves::Logic;

    /// Same circuit as the lane-cloned batch tests: a clocked 8-bit counter.
    fn build() -> Simulator {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let en = net.signal("en", 1);
        let q = net.signal("q", 8);
        net.add("ck", ClockGen::new(Time::from_ns(20)), &[], &[clk]);
        net.add("r", ConstVector::bit(Logic::Zero), &[], &[rst]);
        net.add("e", ConstVector::bit(Logic::One), &[], &[en]);
        net.add("ctr", Counter::new(8, Time::ZERO), &[clk, rst, en], &[q]);
        let mut sim = Simulator::new(net);
        sim.monitor_name("q");
        sim
    }

    fn counter_target(sim: &Simulator) -> crate::MutantTarget {
        sim.mutant_targets()
            .into_iter()
            .find(|t| t.component_name == "ctr")
            .expect("counter present")
    }

    fn scalar_flip(at: Time, bit: usize, t_end: Time) -> Trace {
        let mut sim = build();
        let target = counter_target(&sim);
        sim.run_until(at).unwrap();
        sim.flip_state(target.component, bit);
        sim.run_until(t_end).unwrap();
        sim.into_trace()
    }

    #[test]
    fn word_lanes_match_scalar_traces_byte_for_byte() {
        const T_END: Time = Time::from_us(4);
        let times = [Time::from_ns(105), Time::from_ns(330), Time::from_us(1)];
        let bits = [0usize, 3, 7];

        let target = counter_target(&build());
        let mut batch = WordBatchSimulator::new(build(), T_END);
        let mut cases = Vec::new();
        for &at in &times {
            for &bit in &bits {
                batch.add_lane(at);
                cases.push((at, bit));
            }
        }
        let report = batch
            .run(
                |lane, sim| {
                    sim.flip_state(target.component, cases[lane].1);
                    Ok(())
                },
                |_, _| {},
            )
            .unwrap();

        for (lane, &(at, bit)) in cases.iter().enumerate() {
            let scalar = scalar_flip(at, bit, T_END);
            match &report.outcomes[lane] {
                LaneOutcome::Completed { trace, .. } => {
                    assert_eq!(trace, &scalar, "lane {lane} (flip bit {bit} @ {at})");
                }
                LaneOutcome::Failed { error } => panic!("lane {lane}: {error}"),
            }
        }
    }

    #[test]
    fn word_golden_trace_matches_pristine_scalar() {
        const T_END: Time = Time::from_us(4);
        let mut scalar = build();
        scalar.run_until(T_END).unwrap();
        let scalar_trace = scalar.into_trace();

        let mut batch = WordBatchSimulator::new(build(), T_END);
        let target = counter_target(&build());
        batch.add_lane(Time::from_ns(100));
        let report = batch
            .run(
                |_, sim| {
                    sim.flip_state(target.component, 0);
                    Ok(())
                },
                |_, _| {},
            )
            .unwrap();
        assert_eq!(report.golden, scalar_trace);
    }

    #[test]
    fn word_washed_out_pulse_reconverges_and_seals() {
        const T_END: Time = Time::from_us(4);
        let fault = DigitalFault::new(
            DigitalFaultKind::SetPulse {
                width: Time::from_ns(4),
            },
            Time::from_ns(42),
        );

        fn build_sab(fault: Option<DigitalFault>) -> Simulator {
            let mut net = Netlist::new();
            let clk = net.signal("clk", 1);
            let rst = net.signal("rst", 1);
            let en = net.signal("en", 1);
            let q = net.signal("q", 8);
            net.add("ck", ClockGen::new(Time::from_ns(20)), &[], &[clk]);
            net.add("r", ConstVector::bit(Logic::Zero), &[], &[rst]);
            net.add("e", ConstVector::bit(Logic::One), &[], &[en]);
            net.add("ctr", Counter::new(8, Time::ZERO), &[clk, rst, en], &[q]);
            let mut sab = DigitalSaboteur::new(1);
            if let Some(f) = fault {
                sab = sab.with_fault(f);
            }
            net.insert_saboteur(en, Box::new(sab));
            let mut sim = Simulator::new(net);
            sim.monitor_name("q");
            sim
        }

        let mut scalar = build_sab(Some(fault.clone()));
        scalar.run_until(T_END).unwrap();
        let scalar_trace = scalar.into_trace();

        let mut batch =
            WordBatchSimulator::new(build_sab(None), T_END).with_seal_stride(Time::from_ns(50));
        let lane = batch.add_lane(Time::ZERO);
        let report = batch
            .run(
                |_, sim| {
                    let sab = sim.component_id("saboteur(en)").expect("saboteur present");
                    sim.component_mut(sab)
                        .as_any_mut()
                        .downcast_mut::<DigitalSaboteur>()
                        .expect("saboteur type")
                        .arm(fault.clone());
                    sim.wake_component(sab, fault.at);
                    Ok(())
                },
                |_, _| {},
            )
            .unwrap();

        match &report.outcomes[lane] {
            LaneOutcome::Completed { trace, sealed_at } => {
                assert_eq!(trace, &scalar_trace);
                let sealed = sealed_at.expect("washed-out pulse must seal");
                assert!(sealed < Time::from_us(1), "sealed late: {sealed}");
            }
            LaneOutcome::Failed { error } => panic!("{error}"),
        }
    }

    #[test]
    fn word_guard_trip_retires_only_that_lane() {
        const T_END: Time = Time::from_us(2);
        let target = counter_target(&build());
        let mut batch = WordBatchSimulator::new(build(), T_END);
        let strict = batch.add_lane(Time::from_ns(100));
        let free = batch.add_lane(Time::from_ns(100));
        let report = batch
            .run(
                |_, sim| {
                    sim.flip_state(target.component, 7);
                    Ok(())
                },
                |lane, sim| {
                    if lane == strict {
                        sim.set_budget(SimBudget::unlimited().with_max_steps(3));
                    }
                },
            )
            .unwrap();
        assert!(
            matches!(&report.outcomes[strict], LaneOutcome::Failed { error } if error.contains("step-budget-exhausted")),
            "strict lane must trip its budget: {:?}",
            report.outcomes[strict]
        );
        let scalar = scalar_flip(Time::from_ns(100), 7, T_END);
        match &report.outcomes[free] {
            LaneOutcome::Completed { trace, .. } => assert_eq!(trace, &scalar),
            LaneOutcome::Failed { error } => panic!("free lane failed: {error}"),
        }
    }

    #[test]
    fn word_report_matches_lane_cloned_report() {
        // The word kernel and the lane-cloned kernel must agree outcome for
        // outcome on the same batch: traces, seal instants and all.
        const T_END: Time = Time::from_us(4);
        let times = [Time::from_ns(105), Time::from_ns(330), Time::from_us(1)];
        let bits = [0usize, 3, 7];

        let target = counter_target(&build());
        let mut cases = Vec::new();
        for &at in &times {
            for &bit in &bits {
                cases.push((at, bit));
            }
        }

        let mut cloned = crate::BatchSimulator::new(build(), T_END);
        let mut word = WordBatchSimulator::new(build(), T_END);
        for &(at, _) in &cases {
            cloned.add_lane(at);
            word.add_lane(at);
        }
        let cloned_report = cloned
            .run(
                |lane, sim| {
                    sim.flip_state(target.component, cases[lane].1);
                    Ok(())
                },
                |_, _| {},
            )
            .unwrap();
        let word_report = word
            .run(
                |lane, sim| {
                    sim.flip_state(target.component, cases[lane].1);
                    Ok(())
                },
                |_, _| {},
            )
            .unwrap();

        assert_eq!(cloned_report.golden, word_report.golden);
        for (lane, (c, w)) in cloned_report
            .outcomes
            .iter()
            .zip(&word_report.outcomes)
            .enumerate()
        {
            match (c, w) {
                (
                    LaneOutcome::Completed {
                        trace: ct,
                        sealed_at: cs,
                    },
                    LaneOutcome::Completed {
                        trace: wt,
                        sealed_at: ws,
                    },
                ) => {
                    assert_eq!(ct, wt, "lane {lane} trace");
                    assert_eq!(cs, ws, "lane {lane} seal instant");
                }
                other => panic!("lane {lane}: outcome mismatch {other:?}"),
            }
        }
    }
}
