//! The component model of the digital simulator.
//!
//! A [`Component`] is the Rust equivalent of a VHDL entity/architecture pair:
//! it is evaluated whenever one of its input signals changes (its sensitivity
//! list is all of its inputs) or a self-scheduled wake-up fires, and it reacts
//! by driving its output ports after a delay.
//!
//! Components with memorised state additionally expose *mutant* hooks
//! ([`Component::state_bits`], [`Component::flip_state_bit`], …): the paper's
//! Section 3.2 instrumentation that lets the fault-injection flow flip the
//! value of "memorised signals or variables" inside a block.

use amsfi_waves::{Logic, LogicVector, Time};

/// One action requested by a component evaluation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Action {
    /// Drive output port `output` with `value` after `delay`, with inertial
    /// semantics (cancels this driver's pending transactions).
    DriveInertial {
        /// Output port index.
        output: usize,
        /// New value.
        value: LogicVector,
        /// Delay from now.
        delay: Time,
    },
    /// Drive with transport semantics (pending transactions survive).
    DriveTransport {
        /// Output port index.
        output: usize,
        /// New value.
        value: LogicVector,
        /// Delay from now.
        delay: Time,
    },
    /// Re-evaluate this component after `delay`.
    Wake {
        /// Delay from now.
        delay: Time,
    },
}

/// The evaluation context handed to [`Component::eval`]: read-only access to
/// the current input values and a queue of requested actions.
#[derive(Debug)]
pub struct EvalContext<'a> {
    now: Time,
    inputs: &'a [LogicVector],
    pub(crate) actions: Vec<Action>,
}

impl<'a> EvalContext<'a> {
    #[cfg(test)]
    pub(crate) fn new(now: Time, inputs: &'a [LogicVector]) -> Self {
        Self::reuse(now, inputs, Vec::new())
    }

    /// Builds a context, recycling a previously drained action list so the
    /// simulators' hot loops do not allocate one per eval.
    pub(crate) fn reuse(now: Time, inputs: &'a [LogicVector], actions: Vec<Action>) -> Self {
        debug_assert!(actions.is_empty(), "recycled action list must be drained");
        EvalContext {
            now,
            inputs,
            actions,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The value of input port `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for this component's inputs.
    pub fn input(&self, index: usize) -> &LogicVector {
        &self.inputs[index]
    }

    /// The first (and for scalars, only) bit of input port `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the input has zero width.
    pub fn input_bit(&self, index: usize) -> Logic {
        self.inputs[index][0]
    }

    /// Drives output port `output` with `value` after `delay`, cancelling any
    /// pending transaction from this driver (inertial delay, the VHDL
    /// default).
    pub fn drive(&mut self, output: usize, value: LogicVector, delay: Time) {
        self.actions.push(Action::DriveInertial {
            output,
            value,
            delay,
        });
    }

    /// Scalar convenience for [`EvalContext::drive`].
    pub fn drive_bit(&mut self, output: usize, value: Logic, delay: Time) {
        self.drive(output, LogicVector::filled(value, 1), delay);
    }

    /// Drives with transport semantics: earlier pending transactions from
    /// this driver are preserved (used by stimulus sources that pre-schedule
    /// a whole waveform).
    pub fn drive_transport(&mut self, output: usize, value: LogicVector, delay: Time) {
        self.actions.push(Action::DriveTransport {
            output,
            value,
            delay,
        });
    }

    /// Scalar convenience for [`EvalContext::drive_transport`].
    pub fn drive_transport_bit(&mut self, output: usize, value: Logic, delay: Time) {
        self.drive_transport(output, LogicVector::filled(value, 1), delay);
    }

    /// Requests a re-evaluation of this component after `delay` even if no
    /// input changes (like a VHDL `wait for`).
    pub fn wake(&mut self, delay: Time) {
        self.actions.push(Action::Wake { delay });
    }
}

/// Object-safe clone and downcast support for boxed components.
pub trait ComponentClone {
    /// Clones this component into a new box.
    fn clone_box(&self) -> Box<dyn Component>;

    /// The component as `Any`, so callers holding a `ComponentId` can
    /// downcast to the concrete type — e.g. to arm a
    /// [`DigitalSaboteur`](crate::DigitalSaboteur) in place mid-run.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<T: Component + Clone + 'static> ComponentClone for T {
    fn clone_box(&self) -> Box<dyn Component> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

impl Clone for Box<dyn Component> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A behavioural digital block: the unit of structure in a [`Netlist`].
///
/// Implementors must be `Clone` (so the fault-injection campaign can re-run a
/// pristine copy of the circuit) and `Send` (so campaigns can run runs on
/// worker threads).
///
/// [`Netlist`]: crate::Netlist
pub trait Component: ComponentClone + Send + std::fmt::Debug {
    /// Evaluates the component. Called once at time zero (power-on), then
    /// whenever any input signal changes value or a requested wake fires.
    fn eval(&mut self, ctx: &mut EvalContext<'_>);

    /// The declared port interface, used by [`Netlist::add`] to validate
    /// connections. The default (an empty spec) skips validation.
    ///
    /// [`Netlist::add`]: crate::Netlist::add
    fn port_spec(&self) -> crate::PortSpec {
        crate::PortSpec::default()
    }

    /// Number of SEU-targetable memorised bits in this component.
    ///
    /// Zero (the default) means the component is purely combinational and
    /// cannot host an SEU, only SETs on its interconnects.
    fn state_bits(&self) -> usize {
        0
    }

    /// Inverts one memorised bit, modelling an SEU strike. After the flip the
    /// simulator re-evaluates the component so the corrupted state propagates.
    ///
    /// The default does nothing (no state).
    fn flip_state_bit(&mut self, bit: usize) {
        let _ = bit;
    }

    /// A human-readable label for a memorised bit (used in campaign reports).
    fn state_label(&self, bit: usize) -> String {
        format!("bit{bit}")
    }

    /// Replaces the encoded state with `value`, modelling the erroneous FSM
    /// transition fault of the paper's reference \[11\]. The default does
    /// nothing.
    fn force_state(&mut self, value: u64) {
        let _ = value;
    }

    /// The current encoded state, if this component has one and it fits in
    /// 64 bits. Used by latent-fault detection at the end of a run.
    fn state_value(&self) -> Option<u64> {
        None
    }

    /// The word-parallel (64-lane) form of this component, holding one copy
    /// of the current state per lane, if it has a native plane-arithmetic
    /// implementation. `None` (the default) makes the word kernel fall back
    /// to a [`LaneFarm`](crate::word::WordComponent) of 64 scalar clones —
    /// always correct, but it pays 64 scalar evaluations per word
    /// evaluation, so hot cells should implement this.
    fn word_component(&self) -> Option<Box<dyn crate::word::WordComponent>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Probe;

    impl Component for Probe {
        fn eval(&mut self, ctx: &mut EvalContext<'_>) {
            let v = ctx.input_bit(0);
            ctx.drive_bit(0, !v, Time::from_ns(1));
        }
    }

    #[test]
    fn context_collects_actions() {
        let inputs = vec![LogicVector::filled(Logic::One, 1)];
        let mut ctx = EvalContext::new(Time::from_ns(5), &inputs);
        let mut p = Probe;
        p.eval(&mut ctx);
        assert_eq!(ctx.actions.len(), 1);
        assert_eq!(ctx.now(), Time::from_ns(5));
        match &ctx.actions[0] {
            Action::DriveInertial {
                output,
                value,
                delay,
            } => {
                assert_eq!(*output, 0);
                assert_eq!(value[0], Logic::Zero);
                assert_eq!(*delay, Time::from_ns(1));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn boxed_component_clones() {
        let boxed: Box<dyn Component> = Box::new(Probe);
        let cloned = boxed.clone();
        assert_eq!(cloned.state_bits(), 0);
        assert_eq!(cloned.state_value(), None);
        assert_eq!(cloned.state_label(3), "bit3");
    }

    #[test]
    fn default_mutant_hooks_are_inert() {
        let mut p = Probe;
        p.flip_state_bit(0);
        p.force_state(42);
        assert_eq!(p.state_bits(), 0);
    }
}
