//! The event-driven simulation kernel.
//!
//! Implements the semantics a VHDL-based injection flow relies on: an event
//! wheel ordered by `(time, sequence)`, delta cycles at each time point,
//! inertial/transport delay, and value-change tracing of monitored signals.
//! Mid-run mutant operations ([`Simulator::flip_state`]) let the campaign
//! engine strike an SEU at an exact simulation instant and have the corrupted
//! state propagate on the next delta.

use crate::component::{Action, EvalContext};
use crate::netlist::{ComponentDecl, ComponentId, Netlist, SignalDecl, SignalId};
use amsfi_waves::{
    Checkpoint, CheckpointMismatch, Fnv1a, ForkableSim, GuardViolation, LogicVector, SimBudget,
    SimObserver, Time, Trace,
};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Errors produced while simulating.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A time point did not converge within the delta-cycle limit —
    /// almost always a zero-delay combinational loop.
    DeltaOverflow {
        /// The simulation time that failed to converge.
        time: Time,
        /// The configured delta limit.
        limit: usize,
    },
    /// The installed [`SimBudget`] tripped: step budget exhausted, deadline
    /// passed, cooperative cancellation, or a numerical guard.
    Guard(GuardViolation),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DeltaOverflow { time, limit } => write!(
                f,
                "delta cycles exceeded {limit} at {time}: probable zero-delay combinational loop"
            ),
            SimError::Guard(v) => write!(f, "{v}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Guard(v) => Some(v),
            SimError::DeltaOverflow { .. } => None,
        }
    }
}

impl From<GuardViolation> for SimError {
    fn from(v: GuardViolation) -> Self {
        SimError::Guard(v)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum EventKind {
    Drive {
        component: usize,
        output: usize,
        value: LogicVector,
        generation: u64,
    },
    Wake {
        component: usize,
    },
    /// A value forced from outside the netlist (e.g. by the mixed-mode
    /// kernel's digitizers). External drives bypass driver generations.
    External {
        signal: usize,
        value: LogicVector,
    },
}

/// A pending event normalised for lock-step state comparison: valid inertial
/// drives lose their absolute generation number (only validity matters for
/// future behaviour — see [`Simulator::state_digest`]).
#[derive(Debug, Clone, PartialEq)]
enum NormalEvent {
    Drive {
        component: usize,
        output: usize,
        value: LogicVector,
    },
    Wake {
        component: usize,
    },
    External {
        signal: usize,
        value: LogicVector,
    },
}

#[derive(Debug, Clone)]
struct Event {
    time: Time,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    /// Reversed so the `BinaryHeap` becomes a min-heap on `(time, seq)`.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[derive(Debug, Clone)]
struct SignalState {
    name: String,
    width: usize,
    value: LogicVector,
    readers: Vec<usize>,
    monitored: bool,
}

#[derive(Debug, Clone)]
struct ComponentSlot {
    name: String,
    comp: Box<dyn crate::Component>,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
    /// Per-output driver generation for inertial cancellation.
    out_generation: Vec<u64>,
}

/// Reusable hot-loop buffers. A time point historically allocated a fresh
/// eval set, changed set, input stage and action list per delta cycle;
/// keeping them on the simulator turns the per-delta cost into a handful of
/// clears. The contents are transient (always cleared before use), so
/// cloning or checkpointing a simulator mid-flight carries no meaning.
#[derive(Debug, Clone, Default)]
struct SimScratch {
    /// One bit per component: the eval set of the current delta cycle.
    eval: Vec<u64>,
    /// One bit per signal: signals that changed at the current time point.
    changed: Vec<u64>,
    /// Input values staged for the component being evaluated.
    inputs: Vec<LogicVector>,
    /// Recycled action list handed to each [`EvalContext`].
    actions: Vec<Action>,
}

impl SimScratch {
    fn ensure(&mut self, signals: usize, components: usize) {
        self.changed.resize(signals.div_ceil(64), 0);
        self.eval.resize(components.div_ceil(64), 0);
    }
}

fn bitset_insert(words: &mut [u64], idx: usize) {
    words[idx / 64] |= 1 << (idx % 64);
}

/// Visits set bits in ascending index order.
fn bitset_drain(words: &mut [u64], mut visit: impl FnMut(usize)) {
    for (w, word) in words.iter_mut().enumerate() {
        let mut bits = *word;
        *word = 0;
        while bits != 0 {
            visit(w * 64 + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
}

/// One signal of a simulator torn down into [`WordSeed`] form.
pub(crate) struct WordSeedSignal {
    pub(crate) name: String,
    pub(crate) width: usize,
    pub(crate) value: LogicVector,
    pub(crate) readers: Vec<usize>,
    pub(crate) monitored: bool,
}

/// One component of a simulator torn down into [`WordSeed`] form.
pub(crate) struct WordSeedComponent {
    pub(crate) name: String,
    pub(crate) comp: Box<dyn crate::Component>,
    pub(crate) inputs: Vec<SignalId>,
    pub(crate) outputs: Vec<SignalId>,
}

/// The raw pieces of an unstarted [`Simulator`], handed to the
/// word-parallel kernel so it can build its plane-valued store without
/// reaching into the scalar simulator's private fields.
pub(crate) struct WordSeed {
    pub(crate) started: bool,
    pub(crate) now: Time,
    pub(crate) delta_limit: usize,
    pub(crate) budget: SimBudget,
    pub(crate) observer: Option<SimObserver>,
    pub(crate) signals: Vec<WordSeedSignal>,
    pub(crate) components: Vec<WordSeedComponent>,
}

/// An event-driven simulator executing one [`Netlist`].
///
/// # Examples
///
/// ```
/// use amsfi_digital::{cells, Netlist, Simulator};
/// use amsfi_waves::{Logic, Time};
///
/// let mut net = Netlist::new();
/// let clk = net.signal("clk", 1);
/// net.add("clkgen", cells::ClockGen::new(Time::from_ns(20)), &[], &[clk]);
/// let mut sim = Simulator::new(net);
/// sim.monitor_name("clk");
/// sim.run_until(Time::from_ns(100))?;
/// let wave = sim.trace().digital("clk").expect("monitored");
/// assert_eq!(wave.rising_edges().len(), 5);
/// # Ok::<(), amsfi_digital::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    signals: Vec<SignalState>,
    components: Vec<ComponentSlot>,
    queue: BinaryHeap<Event>,
    seq: u64,
    now: Time,
    started: bool,
    trace: Trace,
    delta_limit: usize,
    events_processed: u64,
    netlist_names: std::collections::HashMap<String, SignalId>,
    budget: SimBudget,
    observer: Option<SimObserver>,
    scratch: SimScratch,
}

impl Simulator {
    /// Builds a simulator for `netlist`. Every component is scheduled for a
    /// power-on evaluation at time zero.
    pub fn new(netlist: Netlist) -> Self {
        let mut names = std::collections::HashMap::new();
        let signals = netlist
            .signals
            .iter()
            .enumerate()
            .map(|(i, decl)| {
                let SignalDecl {
                    name,
                    width,
                    readers,
                    ..
                } = decl;
                names.insert(name.clone(), SignalId(i));
                SignalState {
                    name: name.clone(),
                    width: *width,
                    value: LogicVector::new(*width),
                    readers: readers.iter().map(|r| r.0).collect(),
                    monitored: false,
                }
            })
            .collect();
        let components: Vec<ComponentSlot> = netlist
            .components
            .into_iter()
            .map(|decl| {
                let ComponentDecl {
                    name,
                    comp,
                    inputs,
                    outputs,
                } = decl;
                let out_generation = vec![0; outputs.len()];
                ComponentSlot {
                    name,
                    comp,
                    inputs,
                    outputs,
                    out_generation,
                }
            })
            .collect();
        let mut sim = Simulator {
            signals,
            components,
            queue: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
            started: false,
            trace: Trace::new(),
            delta_limit: 10_000,
            events_processed: 0,
            netlist_names: names,
            budget: SimBudget::unlimited(),
            observer: None,
            scratch: SimScratch::default(),
        };
        for c in 0..sim.components.len() {
            sim.push_event(Time::ZERO, EventKind::Wake { component: c });
        }
        sim
    }

    /// Sets the delta-cycle limit per time point (default 10 000).
    pub fn set_delta_limit(&mut self, limit: usize) {
        self.delta_limit = limit.max(1);
    }

    /// Installs a [`SimBudget`]. Every simulated time point counts as one
    /// budget step; the cancellation token and deadline are probed at the
    /// same cadence. The default budget is unlimited.
    pub fn set_budget(&mut self, budget: SimBudget) {
        self.budget = budget;
    }

    /// The installed budget.
    pub fn budget(&self) -> &SimBudget {
        &self.budget
    }

    /// Installs a [`SimObserver`] polled (at its stride) after each fully
    /// drained time point, with that instant as the finality watermark:
    /// every trace record strictly below it is frozen. Replaces any
    /// previous observer.
    pub fn set_observer(&mut self, observer: SimObserver) {
        self.observer = Some(observer);
    }

    /// Marks a signal for tracing. Must be called before the first
    /// [`Simulator::run_until`] to capture the waveform from time zero.
    /// Scalars are recorded under the signal name; each bit of a bus is
    /// recorded as `"name[i]"`.
    pub fn monitor(&mut self, signal: SignalId) {
        self.signals[signal.0].monitored = true;
    }

    /// Like [`Simulator::monitor`], resolving the signal by name.
    ///
    /// # Panics
    ///
    /// Panics if no signal has that name.
    pub fn monitor_name(&mut self, name: &str) {
        let id = self
            .signal_id(name)
            .unwrap_or_else(|| panic!("no signal named {name:?}"));
        self.monitor(id);
    }

    /// Looks up a signal by name.
    pub fn signal_id(&self, name: &str) -> Option<SignalId> {
        self.netlist_names.get(name).copied()
    }

    /// Ids of all monitored signals, ascending. The batch simulator uses
    /// this set as its cheap per-stop divergence probe: a mutant lane whose
    /// monitored values all match the golden machine's is a candidate for
    /// the (more expensive) full reconvergence-seal comparison.
    pub fn monitored_signals(&self) -> Vec<SignalId> {
        self.signals
            .iter()
            .enumerate()
            .filter(|(_, s)| s.monitored)
            .map(|(i, _)| SignalId(i))
            .collect()
    }

    /// The name of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn signal_name(&self, signal: SignalId) -> &str {
        &self.signals[signal.0].name
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The current value of a signal.
    pub fn value(&self, signal: SignalId) -> &LogicVector {
        &self.signals[signal.0].value
    }

    /// The trace of monitored signals recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulator and returns its trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Total number of events applied so far (a throughput statistic).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Inverts one memorised bit of `component` (an SEU) and schedules a
    /// re-evaluation so the corrupted state propagates immediately.
    pub fn flip_state(&mut self, component: ComponentId, bit: usize) {
        self.components[component.0].comp.flip_state_bit(bit);
        self.push_event(
            self.now,
            EventKind::Wake {
                component: component.0,
            },
        );
    }

    /// Forces the encoded state of `component` (an erroneous FSM transition)
    /// and schedules a re-evaluation.
    pub fn force_state(&mut self, component: ComponentId, value: u64) {
        self.components[component.0].comp.force_state(value);
        self.push_event(
            self.now,
            EventKind::Wake {
                component: component.0,
            },
        );
    }

    /// Forces `signal` to `value` at time `at` (which must not precede the
    /// current time). This is the entry point for values crossing the
    /// analog-to-digital boundary: the mixed-mode kernel's digitizers call it
    /// with the interpolated threshold-crossing instant.
    ///
    /// The target signal should have no component driver; an external drive
    /// on a driven signal is overwritten by the driver's next transaction.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`Simulator::now`].
    pub fn inject_value(&mut self, signal: SignalId, value: LogicVector, at: Time) {
        assert!(
            at >= self.now,
            "cannot inject at {at}: simulator already at {}",
            self.now
        );
        self.push_event(
            at,
            EventKind::External {
                signal: signal.0,
                value,
            },
        );
    }

    /// The time of the earliest pending event, if any. The mixed-mode kernel
    /// uses this to clamp analog integration steps so that digital activity
    /// lands exactly on analog step boundaries.
    pub fn next_event_time(&self) -> Option<Time> {
        self.queue.peek().map(|e| e.time)
    }

    /// The encoded state of `component`, if it exposes one.
    pub fn state_value(&self, component: ComponentId) -> Option<u64> {
        self.components[component.0].comp.state_value()
    }

    /// Enumerates every SEU-targetable memorised bit, like
    /// [`Netlist::mutant_targets`] but after the netlist has been lowered
    /// into the simulator.
    ///
    /// [`Netlist::mutant_targets`]: crate::Netlist::mutant_targets
    pub fn mutant_targets(&self) -> Vec<crate::MutantTarget> {
        let mut out = Vec::new();
        for (idx, slot) in self.components.iter().enumerate() {
            for bit in 0..slot.comp.state_bits() {
                out.push(crate::MutantTarget {
                    component: ComponentId(idx),
                    component_name: slot.name.clone(),
                    bit,
                    label: slot.comp.state_label(bit),
                });
            }
        }
        out
    }

    /// Mutable access to a component instance, for configuring saboteurs
    /// after the netlist has been lowered into the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn component_mut(&mut self, component: ComponentId) -> &mut dyn crate::Component {
        &mut *self.components[component.0].comp
    }

    /// Looks up a component instance by name.
    pub fn component_id(&self, name: &str) -> Option<ComponentId> {
        self.components
            .iter()
            .position(|slot| slot.name == name)
            .map(ComponentId)
    }

    /// Schedules a re-evaluation of `component` at absolute time `at`
    /// (clamped to the present), as if the component had requested the
    /// wake itself. Pairs with
    /// [`DigitalSaboteur::arm`](crate::DigitalSaboteur::arm) to inject a
    /// wire fault into an already-running simulator.
    pub fn wake_component(&mut self, component: ComponentId, at: Time) {
        let at = at.max(self.now);
        self.push_event(
            at,
            EventKind::Wake {
                component: component.0,
            },
        );
    }

    /// A hash of the simulator's structure — signal names and widths,
    /// component names and port arities — but none of its mutable run
    /// state. Two simulators lowered from the same netlist agree; a
    /// [`Checkpoint`] refuses to restore across differing fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str("amsfi-digital");
        h.eat();
        h.write_u64(self.signals.len() as u64);
        h.eat();
        for s in &self.signals {
            h.write_str(&s.name);
            h.eat();
            h.write_u64(s.width as u64);
            h.eat();
        }
        h.write_u64(self.components.len() as u64);
        h.eat();
        for c in &self.components {
            h.write_str(&c.name);
            h.eat();
            h.write_u64(c.inputs.len() as u64);
            h.write_u64(c.outputs.len() as u64);
            h.eat();
        }
        h.finish()
    }

    /// The pending event queue normalised to future-relevant form: stale
    /// inertial drives (whose generation no longer matches the output's
    /// counter) are dropped, events are ordered by `(time, seq)`, and
    /// surviving drives keep only their target/value (the absolute
    /// generation number never matters once a drive is known valid).
    fn pending_events(&self) -> Vec<(Time, u64, NormalEvent)> {
        let mut out: Vec<(Time, u64, NormalEvent)> = self
            .queue
            .iter()
            .filter_map(|e| {
                let kind = match &e.kind {
                    EventKind::Drive {
                        component,
                        output,
                        value,
                        generation,
                    } => {
                        if self.components[*component].out_generation[*output] != *generation {
                            return None; // already cancelled; will be skipped when popped
                        }
                        NormalEvent::Drive {
                            component: *component,
                            output: *output,
                            value: value.clone(),
                        }
                    }
                    EventKind::Wake { component } => NormalEvent::Wake {
                        component: *component,
                    },
                    EventKind::External { signal, value } => NormalEvent::External {
                        signal: *signal,
                        value: value.clone(),
                    },
                };
                Some((e.time, e.seq, kind))
            })
            .collect();
        out.sort_by_key(|(t, seq, _)| (*t, *seq));
        out
    }

    /// A digest of all future-relevant run state: current time, signal
    /// values, component state (via `Debug`) and the normalised pending
    /// event queue. Two simulators with equal digests and equal
    /// [`Simulator::lockstep_state_eq`] produce identical behaviour from
    /// here on (given equally non-constraining budgets), which is the
    /// reconvergence-seal criterion of the batch simulator.
    ///
    /// Trace history, throughput counters, budgets and observers are
    /// deliberately excluded: they do not influence future transitions.
    pub fn state_digest(&self) -> u64 {
        use std::fmt::Write as _;
        let mut h = Fnv1a::new();
        h.write_u64(self.now.as_fs() as u64);
        h.eat();
        let mut buf = String::new();
        for s in &self.signals {
            buf.clear();
            for bit in s.value.iter() {
                buf.push(bit.to_char());
            }
            h.write_str(&buf);
            h.eat();
        }
        for c in &self.components {
            buf.clear();
            let _ = write!(buf, "{:?}", c.comp);
            h.write_str(&buf);
            h.eat();
        }
        for (t, _, kind) in self.pending_events() {
            h.write_u64(t.as_fs() as u64);
            buf.clear();
            let _ = write!(buf, "{kind:?}");
            h.write_str(&buf);
            h.eat();
        }
        h.finish()
    }

    /// Exact equality of future-relevant run state (same criterion as
    /// [`Simulator::state_digest`], without hashing). The batch simulator
    /// confirms a digest match with this before sealing a lane, so a hash
    /// collision can never produce a wrong verdict.
    pub fn lockstep_state_eq(&self, other: &Simulator) -> bool {
        self.now == other.now
            && self.signals.len() == other.signals.len()
            && self
                .signals
                .iter()
                .zip(&other.signals)
                .all(|(a, b)| a.value == b.value)
            && self.components.len() == other.components.len()
            && self
                .components
                .iter()
                .zip(&other.components)
                .all(|(a, b)| format!("{:?}", a.comp) == format!("{:?}", b.comp))
            && {
                let a = self.pending_events();
                let b = other.pending_events();
                a.len() == b.len()
                    && a.iter()
                        .zip(&b)
                        .all(|((ta, _, ka), (tb, _, kb))| ta == tb && ka == kb)
            }
    }

    /// Snapshots the complete simulator — pending event queue, component
    /// state, signal values and the trace recorded so far — for
    /// golden-prefix forking.
    pub fn checkpoint(&self) -> Checkpoint<Simulator> {
        Checkpoint::capture(self)
    }

    /// Replaces this simulator's state with `checkpoint`'s, validating the
    /// structural fingerprint first.
    ///
    /// # Errors
    ///
    /// [`CheckpointMismatch`] when the checkpoint was captured from a
    /// structurally different netlist.
    pub fn restore(
        &mut self,
        checkpoint: &Checkpoint<Simulator>,
    ) -> Result<(), CheckpointMismatch> {
        *self = checkpoint.restore_into(self)?;
        Ok(())
    }

    /// Tears the simulator down into the pieces the word-parallel kernel
    /// is built from (crate-internal; see [`crate::WordBatchSimulator`]).
    pub(crate) fn into_word_seed(self) -> WordSeed {
        WordSeed {
            started: self.started,
            now: self.now,
            delta_limit: self.delta_limit,
            budget: self.budget,
            observer: self.observer,
            signals: self
                .signals
                .into_iter()
                .map(|s| WordSeedSignal {
                    name: s.name,
                    width: s.width,
                    value: s.value,
                    readers: s.readers,
                    monitored: s.monitored,
                })
                .collect(),
            components: self
                .components
                .into_iter()
                .map(|c| WordSeedComponent {
                    name: c.name,
                    comp: c.comp,
                    inputs: c.inputs,
                    outputs: c.outputs,
                })
                .collect(),
        }
    }

    /// Runs until simulation time `t_end`, processing every event scheduled
    /// at or before it. Idempotent if no events remain.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DeltaOverflow`] if a time point does not converge
    /// (zero-delay combinational loop), or [`SimError::Guard`] if the
    /// installed [`SimBudget`] trips (step budget, deadline, cancellation).
    pub fn run_until(&mut self, t_end: Time) -> Result<(), SimError> {
        self.started = true;
        let before = self.events_processed;
        let result = self.drain_until(t_end);
        if let Some(metrics) = self.budget.metrics() {
            metrics.digital_events.add(self.events_processed - before);
        }
        result
    }

    fn drain_until(&mut self, t_end: Time) -> Result<(), SimError> {
        while let Some(event) = self.queue.peek() {
            let t = event.time;
            if t > t_end {
                break;
            }
            self.budget.note_step(t)?;
            self.advance_time_point(t)?;
            if let Some(observer) = self.observer.as_mut() {
                observer.poll(t, &[&self.trace]);
            }
        }
        if t_end > self.now {
            self.now = t_end;
        }
        if let Some(observer) = self.observer.as_mut() {
            observer.flush(self.now, &[&self.trace]);
        }
        Ok(())
    }

    fn push_event(&mut self, time: Time, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { time, seq, kind });
    }

    /// Processes every event and delta cycle at time `t`.
    fn advance_time_point(&mut self, t: Time) -> Result<(), SimError> {
        self.now = t;
        self.scratch
            .ensure(self.signals.len(), self.components.len());
        self.scratch.changed.fill(0);
        let mut delta = 0usize;
        loop {
            // Apply the current batch of events at time t.
            let mut any_event = false;
            while self.queue.peek().is_some_and(|e| e.time == t) {
                let event = self.queue.pop().expect("peeked");
                any_event = true;
                self.events_processed += 1;
                match event.kind {
                    EventKind::Drive {
                        component,
                        output,
                        value,
                        generation,
                    } => {
                        let slot = &self.components[component];
                        if slot.out_generation[output] != generation {
                            continue; // cancelled by a later inertial drive
                        }
                        let sig = slot.outputs[output].0;
                        let state = &mut self.signals[sig];
                        debug_assert_eq!(
                            state.width,
                            value.width(),
                            "component {:?} drove width {} onto signal {:?} of width {}",
                            slot.name,
                            value.width(),
                            state.name,
                            state.width
                        );
                        if state.value != value {
                            state.value = value;
                            bitset_insert(&mut self.scratch.changed, sig);
                            for &r in &state.readers {
                                bitset_insert(&mut self.scratch.eval, r);
                            }
                        }
                    }
                    EventKind::Wake { component } => {
                        bitset_insert(&mut self.scratch.eval, component);
                    }
                    EventKind::External { signal, value } => {
                        let state = &mut self.signals[signal];
                        if state.value != value {
                            state.value = value;
                            bitset_insert(&mut self.scratch.changed, signal);
                            for &r in &state.readers {
                                bitset_insert(&mut self.scratch.eval, r);
                            }
                        }
                    }
                }
            }
            if !any_event && self.scratch.eval.iter().all(|w| *w == 0) {
                break;
            }
            // Evaluate sensitive components in deterministic id order. The
            // eval bitset is detached while draining so the loop body can
            // borrow the simulator mutably; draining zeroes it for reuse.
            let mut eval_words = std::mem::take(&mut self.scratch.eval);
            bitset_drain(&mut eval_words, |c| self.eval_component(c, t));
            self.scratch.eval = eval_words;
            delta += 1;
            if delta > self.delta_limit {
                return Err(SimError::DeltaOverflow {
                    time: t,
                    limit: self.delta_limit,
                });
            }
            if self.queue.peek().is_none_or(|e| e.time != t) {
                break;
            }
        }
        // Record monitored signals that settled to a new value at t.
        let mut changed_words = std::mem::take(&mut self.scratch.changed);
        bitset_drain(&mut changed_words, |sig| {
            let state = &self.signals[sig];
            if !state.monitored {
                return;
            }
            if state.width == 1 {
                self.trace
                    .record_digital(&state.name, t, state.value[0])
                    .expect("time is monotonic");
            } else {
                for bit in 0..state.width {
                    let bit_name = format!("{}[{bit}]", state.name);
                    self.trace
                        .record_digital(&bit_name, t, state.value[bit])
                        .expect("time is monotonic");
                }
            }
        });
        self.scratch.changed = changed_words;
        Ok(())
    }

    /// Evaluates component `c` at time `t` and schedules its actions,
    /// staging inputs and the action list in the reusable scratch buffers.
    fn eval_component(&mut self, c: usize, t: Time) {
        let mut actions = {
            let inputs = &mut self.scratch.inputs;
            inputs.clear();
            inputs.extend(
                self.components[c]
                    .inputs
                    .iter()
                    .map(|sig| self.signals[sig.0].value.clone()),
            );
            let recycled = std::mem::take(&mut self.scratch.actions);
            let mut ctx = EvalContext::reuse(t, inputs, recycled);
            self.components[c].comp.eval(&mut ctx);
            std::mem::take(&mut ctx.actions)
        };
        for action in actions.drain(..) {
            match action {
                Action::DriveInertial {
                    output,
                    value,
                    delay,
                } => {
                    let slot = &mut self.components[c];
                    slot.out_generation[output] += 1;
                    let generation = slot.out_generation[output];
                    self.push_event(
                        t + delay,
                        EventKind::Drive {
                            component: c,
                            output,
                            value,
                            generation,
                        },
                    );
                }
                Action::DriveTransport {
                    output,
                    value,
                    delay,
                } => {
                    let generation = self.components[c].out_generation[output];
                    self.push_event(
                        t + delay,
                        EventKind::Drive {
                            component: c,
                            output,
                            value,
                            generation,
                        },
                    );
                }
                Action::Wake { delay } => {
                    self.push_event(t + delay, EventKind::Wake { component: c });
                }
            }
        }
        self.scratch.actions = actions;
    }
}

impl ForkableSim for Simulator {
    type Error = SimError;

    fn advance_to(&mut self, t: Time) -> Result<(), SimError> {
        self.run_until(t)
    }

    fn current_time(&self) -> Time {
        self.now
    }

    fn snapshot_trace(&self) -> Trace {
        self.trace.clone()
    }

    fn structural_fingerprint(&self) -> u64 {
        self.fingerprint()
    }

    fn install_budget(&mut self, budget: SimBudget) {
        self.set_budget(budget);
    }

    fn install_observer(&mut self, observer: SimObserver) {
        self.set_observer(observer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;
    use amsfi_waves::Logic;

    /// Inverter with a configurable delay.
    #[derive(Debug, Clone)]
    struct Inv(Time);

    impl Component for Inv {
        fn eval(&mut self, ctx: &mut EvalContext<'_>) {
            let v = !ctx.input_bit(0);
            ctx.drive_bit(0, v, self.0);
        }
    }

    /// Drives a constant after an initial delay.
    #[derive(Debug, Clone)]
    struct Step {
        at: Time,
        value: Logic,
        fired: bool,
    }

    impl Component for Step {
        fn eval(&mut self, ctx: &mut EvalContext<'_>) {
            if !self.fired {
                self.fired = true;
                ctx.drive_bit(0, !self.value, Time::ZERO);
                ctx.drive_transport_bit(0, self.value, self.at);
            }
        }
    }

    fn step(at: Time, value: Logic) -> Step {
        Step {
            at,
            value,
            fired: false,
        }
    }

    #[test]
    fn inverter_chain_propagates_with_delay() {
        let mut net = Netlist::new();
        let a = net.signal("a", 1);
        let b = net.signal("b", 1);
        let c = net.signal("c", 1);
        net.add("src", step(Time::from_ns(10), Logic::One), &[], &[a]);
        net.add("inv1", Inv(Time::from_ns(1)), &[a], &[b]);
        net.add("inv2", Inv(Time::from_ns(1)), &[b], &[c]);
        let mut sim = Simulator::new(net);
        sim.monitor_name("c");
        sim.run_until(Time::from_us(1)).unwrap();
        let wave = sim.trace().digital("c").unwrap();
        // a: 0 at t0, 1 at 10ns -> b: 1 at 1ns, 0 at 11ns -> c: 0 at 2ns, 1 at 12ns.
        assert_eq!(wave.value_at(Time::from_ns(5)), Logic::Zero);
        assert_eq!(wave.value_at(Time::from_ns(12)), Logic::One);
        assert_eq!(sim.value(sim.signal_id("c").unwrap())[0], Logic::One);
    }

    #[test]
    fn zero_delay_loop_reports_delta_overflow() {
        // A zero-delay inverter that maps 'U' to '1' so the loop escapes the
        // stable uninitialised fixed point and oscillates within one instant.
        #[derive(Debug, Clone)]
        struct HotInv;
        impl Component for HotInv {
            fn eval(&mut self, ctx: &mut EvalContext<'_>) {
                let out = match ctx.input_bit(0) {
                    Logic::One => Logic::Zero,
                    _ => Logic::One,
                };
                ctx.drive_bit(0, out, Time::ZERO);
            }
        }
        let mut net = Netlist::new();
        let a = net.signal("a", 1);
        let b = net.signal("b", 1);
        net.add("i1", HotInv, &[a], &[b]);
        net.add("i2", HotInv, &[b], &[a]);
        let mut sim = Simulator::new(net);
        sim.set_delta_limit(100);
        let err = sim.run_until(Time::from_ns(1)).unwrap_err();
        assert!(matches!(err, SimError::DeltaOverflow { .. }));
        assert!(err.to_string().contains("combinational loop"));
    }

    #[test]
    fn inertial_drive_cancels_pending() {
        // A component that schedules 1 after 5 ns, then (in the same eval)
        // re-drives 0 after 2 ns: the 5 ns transaction must be cancelled.
        #[derive(Debug, Clone)]
        struct Glitcher {
            fired: bool,
        }
        impl Component for Glitcher {
            fn eval(&mut self, ctx: &mut EvalContext<'_>) {
                if !self.fired {
                    self.fired = true;
                    ctx.drive_bit(0, Logic::One, Time::from_ns(5));
                    ctx.drive_bit(0, Logic::Zero, Time::from_ns(2));
                }
            }
        }
        let mut net = Netlist::new();
        let out = net.signal("out", 1);
        net.add("g", Glitcher { fired: false }, &[], &[out]);
        let mut sim = Simulator::new(net);
        sim.monitor(out);
        sim.run_until(Time::from_ns(10)).unwrap();
        let wave = sim.trace().digital("out").unwrap();
        assert_eq!(wave.value_at(Time::from_ns(6)), Logic::Zero);
        // The cancelled 1-transaction never appears.
        assert!(wave.transitions().iter().all(|&(_, v)| v != Logic::One));
    }

    #[test]
    fn transport_drives_coexist() {
        #[derive(Debug, Clone)]
        struct Burst {
            fired: bool,
        }
        impl Component for Burst {
            fn eval(&mut self, ctx: &mut EvalContext<'_>) {
                if !self.fired {
                    self.fired = true;
                    ctx.drive_transport_bit(0, Logic::Zero, Time::ZERO);
                    ctx.drive_transport_bit(0, Logic::One, Time::from_ns(2));
                    ctx.drive_transport_bit(0, Logic::Zero, Time::from_ns(4));
                }
            }
        }
        let mut net = Netlist::new();
        let out = net.signal("out", 1);
        net.add("b", Burst { fired: false }, &[], &[out]);
        let mut sim = Simulator::new(net);
        sim.monitor(out);
        sim.run_until(Time::from_ns(10)).unwrap();
        let wave = sim.trace().digital("out").unwrap();
        assert_eq!(wave.value_at(Time::from_ns(1)), Logic::Zero);
        assert_eq!(wave.value_at(Time::from_ns(3)), Logic::One);
        assert_eq!(wave.value_at(Time::from_ns(5)), Logic::Zero);
    }

    #[test]
    fn run_until_is_resumable_and_monotonic() {
        let mut net = Netlist::new();
        let a = net.signal("a", 1);
        net.add("src", step(Time::from_ns(10), Logic::One), &[], &[a]);
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(5)).unwrap();
        assert_eq!(sim.now(), Time::from_ns(5));
        let a_id = sim.signal_id("a").unwrap();
        assert_eq!(sim.value(a_id)[0], Logic::Zero);
        sim.run_until(Time::from_ns(20)).unwrap();
        assert_eq!(sim.value(a_id)[0], Logic::One);
        assert_eq!(sim.now(), Time::from_ns(20));
        // Running backwards is a no-op, not a panic.
        sim.run_until(Time::from_ns(1)).unwrap();
        assert_eq!(sim.now(), Time::from_ns(20));
    }

    #[test]
    fn events_processed_counts() {
        let mut net = Netlist::new();
        let a = net.signal("a", 1);
        net.add("src", step(Time::from_ns(10), Logic::One), &[], &[a]);
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(20)).unwrap();
        assert!(sim.events_processed() >= 2);
    }

    #[test]
    fn external_injection_drives_undriven_signal() {
        let mut net = Netlist::new();
        let ext = net.signal("ext", 1);
        let out = net.signal("out", 1);
        net.add("inv", Inv(Time::from_ns(1)), &[ext], &[out]);
        let mut sim = Simulator::new(net);
        sim.monitor(out);
        sim.inject_value(
            ext,
            amsfi_waves::LogicVector::filled(Logic::One, 1),
            Time::from_ns(10),
        );
        sim.run_until(Time::from_ns(20)).unwrap();
        let w = sim.trace().digital("out").unwrap();
        assert_eq!(w.value_at(Time::from_ns(12)), Logic::Zero);
        assert_eq!(sim.value(ext)[0], Logic::One);
    }

    #[test]
    fn next_event_time_peeks_queue() {
        let mut net = Netlist::new();
        let a = net.signal("a", 1);
        net.add("src", step(Time::from_ns(10), Logic::One), &[], &[a]);
        let mut sim = Simulator::new(net);
        // Power-on wakes are queued at time zero.
        assert_eq!(sim.next_event_time(), Some(Time::ZERO));
        sim.run_until(Time::from_ns(5)).unwrap();
        assert_eq!(sim.next_event_time(), Some(Time::from_ns(10)));
        sim.run_until(Time::from_ns(20)).unwrap();
        assert_eq!(sim.next_event_time(), None);
    }

    fn clocked_counter() -> Simulator {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let en = net.signal("en", 1);
        let q = net.signal("q", 8);
        net.add(
            "ck",
            crate::cells::ClockGen::new(Time::from_ns(20)),
            &[],
            &[clk],
        );
        net.add(
            "r",
            crate::cells::ConstVector::bit(Logic::Zero),
            &[],
            &[rst],
        );
        net.add("e", crate::cells::ConstVector::bit(Logic::One), &[], &[en]);
        net.add(
            "ctr",
            crate::cells::Counter::new(8, Time::ZERO),
            &[clk, rst, en],
            &[q],
        );
        let mut sim = Simulator::new(net);
        sim.monitor_name("q");
        sim
    }

    #[test]
    fn checkpoint_fork_equals_from_scratch_run() {
        // Scratch run, paused at the same instant the checkpoint is taken
        // (the stop sequence is part of the equivalence contract).
        let mut scratch = clocked_counter();
        scratch.run_until(Time::from_ns(205)).unwrap();
        scratch.run_until(Time::from_us(1)).unwrap();

        let mut golden = clocked_counter();
        golden.run_until(Time::from_ns(205)).unwrap();
        let cp = golden.checkpoint();
        assert_eq!(cp.at(), Time::from_ns(205));
        golden.run_until(Time::from_us(1)).unwrap();

        let mut fork = cp.fork();
        assert_eq!(fork.now(), Time::from_ns(205));
        fork.run_until(Time::from_us(1)).unwrap();
        assert_eq!(fork.trace(), scratch.trace());
        assert_eq!(fork.trace(), golden.trace());
        let q = fork.signal_id("q").unwrap();
        assert_eq!(fork.value(q), scratch.value(q));
    }

    #[test]
    fn restore_rejects_a_foreign_netlist() {
        let mut sim = clocked_counter();
        sim.run_until(Time::from_ns(100)).unwrap();
        let cp = sim.checkpoint();

        let mut net = Netlist::new();
        let a = net.signal("a", 1);
        net.add("src", step(Time::from_ns(10), Logic::One), &[], &[a]);
        let mut other = Simulator::new(net);
        assert!(other.restore(&cp).is_err());
        // Restoring into a same-structure simulator rewinds it.
        let mut twin = clocked_counter();
        twin.run_until(Time::from_us(2)).unwrap();
        twin.restore(&cp).unwrap();
        assert_eq!(twin.now(), Time::from_ns(100));
    }

    #[test]
    fn fingerprint_is_structural_not_stateful() {
        let a = clocked_counter();
        let mut b = clocked_counter();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.run_until(Time::from_us(1)).unwrap();
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "run state must not matter"
        );
    }

    #[test]
    fn step_budget_stops_a_free_running_clock() {
        let mut sim = clocked_counter();
        sim.set_budget(SimBudget::unlimited().with_max_steps(10));
        let err = sim.run_until(Time::from_ms(1)).unwrap_err();
        match err {
            SimError::Guard(GuardViolation::StepBudgetExhausted { steps, .. }) => {
                assert_eq!(steps, 11);
            }
            other => panic!("expected step-budget guard, got {other:?}"),
        }
        // The failure is sticky: a retry with the same budget trips again.
        assert!(matches!(
            sim.run_until(Time::from_ms(1)),
            Err(SimError::Guard(_))
        ));
        // Replacing the budget lets the simulation proceed.
        sim.set_budget(SimBudget::unlimited());
        sim.run_until(Time::from_us(1)).unwrap();
        assert_eq!(sim.now(), Time::from_us(1));
    }

    #[test]
    fn cancellation_interrupts_run_until() {
        let mut sim = clocked_counter();
        let token = amsfi_waves::CancelToken::new();
        token.cancel();
        sim.set_budget(SimBudget::unlimited().with_cancel(token));
        let err = sim.run_until(Time::from_us(1)).unwrap_err();
        assert!(matches!(
            err,
            SimError::Guard(GuardViolation::Cancelled { .. })
        ));
    }

    #[test]
    fn install_budget_via_forkable_sim() {
        let mut sim = clocked_counter();
        ForkableSim::install_budget(&mut sim, SimBudget::unlimited().with_max_steps(3));
        assert!(ForkableSim::advance_to(&mut sim, Time::from_us(1)).is_err());
    }

    #[test]
    #[should_panic(expected = "cannot inject")]
    fn injection_in_the_past_panics() {
        let mut net = Netlist::new();
        let a = net.signal("a", 1);
        let _ = a;
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(10)).unwrap();
        sim.inject_value(
            crate::SignalId(0),
            amsfi_waves::LogicVector::filled(Logic::One, 1),
            Time::from_ns(5),
        );
    }
}
