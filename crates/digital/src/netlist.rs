//! Structural circuit descriptions: signals, component instances and their
//! connections.
//!
//! A [`Netlist`] is the Rust equivalent of a structural VHDL architecture.
//! It is also the level at which the paper's instrumentation happens:
//! [`Netlist::insert_saboteur`] splits an interconnect and splices a saboteur
//! component into it ("modifying some interconnections in the initial
//! description", Section 3.2), and [`Netlist::mutant_targets`] enumerates
//! every SEU-targetable memorised bit exposed by the instantiated components.

use crate::component::Component;
use std::collections::HashMap;
use std::fmt;

/// Identifies a signal within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) usize);

/// Identifies a component instance within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub(crate) usize);

/// Declared port interface of a component, used by [`Netlist::add`] for
/// connection validation. An empty spec (the default) skips validation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortSpec {
    /// `(name, width)` for each input port, in connection order.
    pub inputs: Vec<(String, usize)>,
    /// `(name, width)` for each output port, in connection order.
    pub outputs: Vec<(String, usize)>,
}

impl PortSpec {
    /// Builds a spec from `(name, width)` slices.
    pub fn new(inputs: &[(&str, usize)], outputs: &[(&str, usize)]) -> Self {
        PortSpec {
            inputs: inputs.iter().map(|&(n, w)| (n.to_owned(), w)).collect(),
            outputs: outputs.iter().map(|&(n, w)| (n.to_owned(), w)).collect(),
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct SignalDecl {
    pub(crate) name: String,
    pub(crate) width: usize,
    pub(crate) driver: Option<(ComponentId, usize)>,
    pub(crate) readers: Vec<ComponentId>,
}

#[derive(Debug, Clone)]
pub(crate) struct ComponentDecl {
    pub(crate) name: String,
    pub(crate) comp: Box<dyn Component>,
    pub(crate) inputs: Vec<SignalId>,
    pub(crate) outputs: Vec<SignalId>,
}

/// One SEU-targetable memorised bit inside a netlist: the unit of the
/// digital (mutant-based) fault list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutantTarget {
    /// The component hosting the bit.
    pub component: ComponentId,
    /// Hierarchical component name.
    pub component_name: String,
    /// Bit index within the component's state.
    pub bit: usize,
    /// Human-readable bit label (e.g. `"q[3]"`).
    pub label: String,
}

impl fmt::Display for MutantTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.component_name, self.label)
    }
}

/// A structural digital circuit: named signals connected to component
/// instances.
///
/// # Examples
///
/// ```
/// use amsfi_digital::{cells, Netlist};
/// use amsfi_waves::Time;
///
/// let mut net = Netlist::new();
/// let clk = net.signal("clk", 1);
/// let d = net.signal("d", 1);
/// let q = net.signal("q", 1);
/// net.add("ff", cells::Dff::new(1, Time::ZERO), &[clk, d], &[q]);
/// assert_eq!(net.mutant_targets().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    pub(crate) signals: Vec<SignalDecl>,
    pub(crate) components: Vec<ComponentDecl>,
    by_name: HashMap<String, SignalId>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a signal of the given width (1 for a scalar).
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken or `width` is zero.
    pub fn signal(&mut self, name: &str, width: usize) -> SignalId {
        assert!(width > 0, "signal {name:?} must have nonzero width");
        assert!(
            !self.by_name.contains_key(name),
            "duplicate signal name {name:?}"
        );
        let id = SignalId(self.signals.len());
        self.signals.push(SignalDecl {
            name: name.to_owned(),
            width,
            driver: None,
            readers: Vec::new(),
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Instantiates a component, connecting `inputs` and `outputs` in the
    /// order of its [`PortSpec`].
    ///
    /// # Panics
    ///
    /// Panics if an output signal already has a driver, or if the component
    /// declares a non-empty port spec that does not match the connection
    /// counts and signal widths.
    pub fn add<C: Component + 'static>(
        &mut self,
        name: &str,
        comp: C,
        inputs: &[SignalId],
        outputs: &[SignalId],
    ) -> ComponentId {
        self.add_boxed(name, Box::new(comp), inputs, outputs)
    }

    /// Type-erased form of [`Netlist::add`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Netlist::add`].
    pub fn add_boxed(
        &mut self,
        name: &str,
        comp: Box<dyn Component>,
        inputs: &[SignalId],
        outputs: &[SignalId],
    ) -> ComponentId {
        let spec = comp.port_spec();
        if spec != PortSpec::default() {
            assert_eq!(
                spec.inputs.len(),
                inputs.len(),
                "component {name:?} expects {} inputs, got {}",
                spec.inputs.len(),
                inputs.len()
            );
            assert_eq!(
                spec.outputs.len(),
                outputs.len(),
                "component {name:?} expects {} outputs, got {}",
                spec.outputs.len(),
                outputs.len()
            );
            for (i, ((pname, pwidth), sig)) in spec.inputs.iter().zip(inputs).enumerate() {
                assert_eq!(
                    self.signals[sig.0].width, *pwidth,
                    "component {name:?} input {i} ({pname}) expects width {pwidth}, \
                     signal {:?} has width {}",
                    self.signals[sig.0].name, self.signals[sig.0].width
                );
            }
            for (i, ((pname, pwidth), sig)) in spec.outputs.iter().zip(outputs).enumerate() {
                assert_eq!(
                    self.signals[sig.0].width, *pwidth,
                    "component {name:?} output {i} ({pname}) expects width {pwidth}, \
                     signal {:?} has width {}",
                    self.signals[sig.0].name, self.signals[sig.0].width
                );
            }
        }
        let id = ComponentId(self.components.len());
        for sig in inputs {
            self.signals[sig.0].readers.push(id);
        }
        for (port, sig) in outputs.iter().enumerate() {
            let decl = &mut self.signals[sig.0];
            assert!(
                decl.driver.is_none(),
                "signal {:?} already driven by component {:?}",
                decl.name,
                self.components[decl.driver.expect("checked").0 .0].name
            );
            decl.driver = Some((id, port));
        }
        self.components.push(ComponentDecl {
            name: name.to_owned(),
            comp,
            inputs: inputs.to_vec(),
            outputs: outputs.to_vec(),
        });
        id
    }

    /// Splices `saboteur` into `target`: the saboteur reads the original
    /// signal and drives a new signal named `"<target>__sab"`, and every
    /// former reader of `target` is re-connected to the new signal.
    ///
    /// Returns the saboteur's component id and the new downstream signal.
    /// Must be called after all ordinary components are added and before
    /// simulation starts.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn insert_saboteur(
        &mut self,
        target: SignalId,
        saboteur: Box<dyn Component>,
    ) -> (ComponentId, SignalId) {
        let width = self.signals[target.0].width;
        let sab_name = format!("{}__sab", self.signals[target.0].name);
        let downstream = self.signal(&sab_name, width);
        // Re-point every reader of `target` to `downstream`.
        let readers = std::mem::take(&mut self.signals[target.0].readers);
        for reader in &readers {
            for sig in &mut self.components[reader.0].inputs {
                if *sig == target {
                    *sig = downstream;
                }
            }
        }
        self.signals[downstream.0].readers = readers;
        let comp_name = format!("saboteur({})", self.signals[target.0].name);
        let id = self.add_boxed(&comp_name, saboteur, &[target], &[downstream]);
        (id, downstream)
    }

    /// Looks up a signal by name.
    pub fn signal_id(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// The name of a signal.
    pub fn signal_name(&self, id: SignalId) -> &str {
        &self.signals[id.0].name
    }

    /// The width of a signal.
    pub fn signal_width(&self, id: SignalId) -> usize {
        self.signals[id.0].width
    }

    /// The name of a component instance.
    pub fn component_name(&self, id: ComponentId) -> &str {
        &self.components[id.0].name
    }

    /// Ids of all declared signals.
    pub fn signal_ids(&self) -> impl Iterator<Item = SignalId> {
        (0..self.signals.len()).map(SignalId)
    }

    /// Ids of all component instances.
    pub fn component_ids(&self) -> impl Iterator<Item = ComponentId> {
        (0..self.components.len()).map(ComponentId)
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Number of component instances.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Enumerates every interconnect: signals with a driver and at least one
    /// reader — the places a wire-level saboteur can be spliced (the
    /// Section 3.2 limitation: saboteurs "can only inject faults on these
    /// interconnections").
    pub fn interconnects(&self) -> Vec<SignalId> {
        (0..self.signals.len())
            .map(SignalId)
            .filter(|id| {
                let decl = &self.signals[id.0];
                decl.driver.is_some() && !decl.readers.is_empty()
            })
            .collect()
    }

    /// Enumerates every SEU-targetable memorised bit in the circuit — the
    /// digital fault list of a campaign.
    pub fn mutant_targets(&self) -> Vec<MutantTarget> {
        let mut out = Vec::new();
        for (idx, decl) in self.components.iter().enumerate() {
            for bit in 0..decl.comp.state_bits() {
                out.push(MutantTarget {
                    component: ComponentId(idx),
                    component_name: decl.name.clone(),
                    bit,
                    label: decl.comp.state_label(bit),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::EvalContext;
    use amsfi_waves::Time;

    #[derive(Debug, Clone)]
    struct Pass;

    impl Component for Pass {
        fn eval(&mut self, ctx: &mut EvalContext<'_>) {
            let v = ctx.input(0).clone();
            ctx.drive(0, v, Time::ZERO);
        }
    }

    #[derive(Debug, Clone)]
    struct TwoBitState;

    impl Component for TwoBitState {
        fn eval(&mut self, _ctx: &mut EvalContext<'_>) {}
        fn state_bits(&self) -> usize {
            2
        }
        fn state_label(&self, bit: usize) -> String {
            format!("s[{bit}]")
        }
    }

    #[test]
    fn signal_lookup_by_name() {
        let mut net = Netlist::new();
        let a = net.signal("a", 4);
        assert_eq!(net.signal_id("a"), Some(a));
        assert_eq!(net.signal_id("b"), None);
        assert_eq!(net.signal_name(a), "a");
        assert_eq!(net.signal_width(a), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate signal name")]
    fn duplicate_names_rejected() {
        let mut net = Netlist::new();
        net.signal("a", 1);
        net.signal("a", 1);
    }

    #[test]
    #[should_panic(expected = "already driven")]
    fn double_driver_rejected() {
        let mut net = Netlist::new();
        let a = net.signal("a", 1);
        let b = net.signal("b", 1);
        net.add("p1", Pass, &[a], &[b]);
        net.add("p2", Pass, &[a], &[b]);
    }

    #[test]
    fn mutant_targets_enumerate_state_bits() {
        let mut net = Netlist::new();
        net.add("s0", TwoBitState, &[], &[]);
        let x = net.signal("x", 1);
        let y = net.signal("y", 1);
        net.add("comb", Pass, &[x], &[y]);
        net.add("s1", TwoBitState, &[], &[]);
        let targets = net.mutant_targets();
        assert_eq!(targets.len(), 4);
        assert_eq!(targets[0].to_string(), "s0.s[0]");
        assert_eq!(targets[3].component_name, "s1");
        assert_eq!(targets[3].bit, 1);
    }

    #[test]
    fn interconnects_are_driven_and_read() {
        let mut net = Netlist::new();
        let a = net.signal("a", 1); // read but undriven (external input)
        let b = net.signal("b", 1); // interconnect
        let c = net.signal("c", 1); // driven but unread (output port)
        net.add("p1", Pass, &[a], &[b]);
        net.add("p2", Pass, &[b], &[c]);
        assert_eq!(net.interconnects(), vec![b]);
    }

    #[test]
    fn saboteur_insertion_rewires_readers() {
        let mut net = Netlist::new();
        let a = net.signal("a", 1);
        let b = net.signal("b", 1);
        let c = net.signal("c", 1);
        net.add("src", Pass, &[a], &[b]);
        let sink = net.add("sink", Pass, &[b], &[c]);
        let (sab_id, downstream) = net.insert_saboteur(b, Box::new(Pass));
        // The sink now reads the saboteur's output, not b.
        assert_eq!(net.components[sink.0].inputs, vec![downstream]);
        // The saboteur reads b and drives the new net.
        assert_eq!(net.components[sab_id.0].inputs, vec![b]);
        assert_eq!(net.components[sab_id.0].outputs, vec![downstream]);
        assert_eq!(net.signal_name(downstream), "b__sab");
        assert_eq!(net.signal_width(downstream), 1);
    }
}
