//! Bit-parallel (lock-step) digital fault simulation: one golden machine
//! plus up to [`LANES`] mutant lanes advancing through the event/delta
//! scheduler in lock step.
//!
//! This is the PPSFP-inspired batching of ROADMAP item 2. Lanes share the
//! golden prefix (a lane is cloned from the golden machine at its injection
//! instant, exactly where the scalar forked runner injects), then advance
//! chunk by chunk on a common stop grid. Two mechanisms retire a lane
//! before the horizon:
//!
//! * **Reconvergence seal** — when a lane's *complete* machine state
//!   (simulation clock, every signal value, every component's memorised
//!   state, and the normalised pending-event queue) is exactly equal to
//!   the golden machine's at a stop, its future is the golden future. The
//!   lane stops simulating and its trace is completed with the golden
//!   suffix ([`Trace::splice_golden_suffix`]), which reproduces byte for
//!   byte what simulating to the horizon would have recorded.
//! * **Per-lane abort** — a lane whose budget trips (step budget,
//!   cancellation by an online classifier, numerical guard) or whose
//!   simulation errors is retired as [`LaneOutcome::Failed`] without
//!   disturbing the other lanes; the campaign engine decides what to do
//!   with it (sealed verdict, quarantine, or scalar fallback).
//!
//! The live divergence mask is tracked with [`LogicPlanes`]: per stop, the
//! monitored signal values of all lanes are packed bit-sliced (lane `l` of
//! the planes word is lane `l` of the batch) and compared against the
//! golden values with one plane-XOR per signal bit. Only lanes whose mask
//! bit is clear — observably identical to golden — pay for the full seal
//! comparison, and a digest pre-filter ([`Simulator::state_digest`]) keeps
//! even that cheap; the exact comparison ([`Simulator::lockstep_state_eq`])
//! confirms every seal, so a digest collision can not produce a wrong
//! verdict.

use crate::sim::{SimError, Simulator};
use amsfi_waves::{KernelMetrics, LogicPlanes, Time, Trace, LANES};
use std::sync::Arc;

/// How one mutant lane ended.
#[derive(Debug)]
pub enum LaneOutcome {
    /// The lane produced a full-horizon trace. `sealed_at` is the instant
    /// its state reconverged with the golden machine's, if it did; the
    /// trace is then the lane prefix spliced with the golden suffix and is
    /// byte-identical to a full scalar run of the same fault case.
    Completed {
        /// The lane's full-length trace.
        trace: Trace,
        /// Reconvergence-seal instant, `None` if the lane ran to the end.
        sealed_at: Option<Time>,
    },
    /// The lane's simulation failed: guard trip, cooperative cancellation
    /// (early abort), delta overflow, or injection error. Other lanes are
    /// unaffected.
    Failed {
        /// Display form of the lane's error.
        error: String,
    },
}

/// What [`BatchSimulator::run`] returns.
#[derive(Debug)]
pub struct BatchReport {
    /// The golden machine's trace over the full horizon.
    pub golden: Trace,
    /// Per-lane outcomes, indexed like the `add_lane` calls.
    pub outcomes: Vec<LaneOutcome>,
}

enum LaneState {
    /// Waiting for the golden machine to reach the injection instant.
    Pending,
    /// Simulating lock-step with the golden machine.
    Running(Box<Simulator>),
    /// Reconverged with golden at `at`; the trace still needs the golden
    /// suffix spliced in once the golden run finishes.
    Sealed { trace: Trace, at: Time },
    /// Retired with an error.
    Failed(String),
}

struct Lane {
    inject_at: Time,
    state: LaneState,
}

/// A golden machine plus up to [`LANES`] mutant lanes in lock step.
///
/// # Examples
///
/// ```
/// use amsfi_digital::{cells, BatchSimulator, LaneOutcome, Netlist, Simulator};
/// use amsfi_waves::{Time, Trace};
///
/// fn build() -> Simulator {
///     let mut net = Netlist::new();
///     let clk = net.signal("clk", 1);
///     let rst = net.signal("rst", 1);
///     let en = net.signal("en", 1);
///     let q = net.signal("q", 8);
///     net.add("ck", cells::ClockGen::new(Time::from_ns(20)), &[], &[clk]);
///     net.add("r", cells::ConstVector::bit(amsfi_waves::Logic::Zero), &[], &[rst]);
///     net.add("e", cells::ConstVector::bit(amsfi_waves::Logic::One), &[], &[en]);
///     net.add("ctr", cells::Counter::new(8, Time::ZERO), &[clk, rst, en], &[q]);
///     let mut sim = Simulator::new(net);
///     sim.monitor_name("q");
///     sim
/// }
///
/// // Scalar reference for one fault case: flip counter bit 7 at 100 ns.
/// let targets = build().mutant_targets();
/// let ctr = targets.iter().find(|t| t.component_name == "ctr").unwrap();
/// let mut scalar = build();
/// scalar.run_until(Time::from_ns(100))?;
/// scalar.flip_state(ctr.component, ctr.bit);
/// scalar.run_until(Time::from_us(2))?;
/// let scalar_trace = scalar.into_trace();
///
/// // Same case as a batch lane.
/// let mut batch = BatchSimulator::new(build(), Time::from_us(2));
/// batch.add_lane(Time::from_ns(100));
/// let report = batch.run(
///     |_lane, sim| {
///         sim.flip_state(ctr.component, ctr.bit);
///         Ok(())
///     },
///     |_lane, _sim| {},
/// )?;
/// match &report.outcomes[0] {
///     LaneOutcome::Completed { trace, .. } => assert_eq!(trace, &scalar_trace),
///     LaneOutcome::Failed { error } => panic!("{error}"),
/// }
/// # Ok::<(), amsfi_digital::SimError>(())
/// ```
pub struct BatchSimulator {
    golden: Simulator,
    t_end: Time,
    seal_stride: Option<Time>,
    lanes: Vec<Lane>,
    metrics: Option<Arc<KernelMetrics>>,
}

impl std::fmt::Debug for BatchSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSimulator")
            .field("t_end", &self.t_end)
            .field("lanes", &self.lanes.len())
            .finish_non_exhaustive()
    }
}

impl BatchSimulator {
    /// Wraps a fault-free simulator (monitoring already attached, budget
    /// already installed) as the golden machine of a batch run to `t_end`.
    ///
    /// The default seal-check stride is `(t_end - now) / 64`; override
    /// with [`BatchSimulator::with_seal_stride`].
    pub fn new(golden: Simulator, t_end: Time) -> Self {
        BatchSimulator {
            golden,
            t_end,
            seal_stride: None,
            lanes: Vec::new(),
            metrics: None,
        }
    }

    /// Sets the spacing of intermediate lock-step stops, where lane
    /// advancement pauses for divergence probing and seal checks. Digital
    /// simulation is call-granularity invariant, so the stride affects
    /// only how early seals are *detected*, never simulation results.
    #[must_use]
    pub fn with_seal_stride(mut self, stride: Time) -> Self {
        assert!(stride > Time::ZERO, "seal stride must be positive");
        self.seal_stride = Some(stride);
        self
    }

    /// Feeds the lanes-active histogram and lane-seal counter.
    pub fn set_metrics(&mut self, metrics: Arc<KernelMetrics>) {
        self.metrics = Some(metrics);
    }

    /// Adds a mutant lane injected at `inject_at` (clamped to the horizon)
    /// and returns its lane id.
    ///
    /// # Panics
    ///
    /// Panics when the batch already holds [`LANES`] lanes.
    pub fn add_lane(&mut self, inject_at: Time) -> usize {
        assert!(
            self.lanes.len() < LANES,
            "a batch holds at most {LANES} lanes"
        );
        self.lanes.push(Lane {
            inject_at: inject_at.min(self.t_end),
            state: LaneState::Pending,
        });
        self.lanes.len() - 1
    }

    /// The lock-step stop grid: every injection instant, seal-check
    /// points, and the horizon. Ascending and deduplicated.
    fn stops(&self) -> Vec<Time> {
        let mut stops: Vec<Time> = self.lanes.iter().map(|l| l.inject_at).collect();
        let start = self.golden.now();
        let stride = self.seal_stride.unwrap_or_else(|| {
            let span = self.t_end - start;
            (span / 64).max(Time::from_fs(1))
        });
        let mut t = start + stride;
        while t < self.t_end {
            stops.push(t);
            t += stride;
        }
        stops.push(self.t_end);
        stops.sort_unstable();
        stops.dedup();
        stops.retain(|&t| t >= start);
        stops
    }

    /// Runs the batch to the horizon.
    ///
    /// `inject(lane, sim)` arms lane `lane`'s fault on a simulator
    /// positioned exactly at its injection instant — the same contract as
    /// the scalar forked runner's inject closure, which is what makes lane
    /// traces byte-identical to scalar runs. `setup(lane, sim)` runs first
    /// on the freshly cloned lane and is where per-lane budgets and
    /// observers are installed.
    ///
    /// # Errors
    ///
    /// Only a *golden* simulation failure is an error: nothing can be
    /// compared against a broken golden machine. Per-lane failures are
    /// reported in the lane's [`LaneOutcome`] and never abort the batch.
    pub fn run(
        mut self,
        mut inject: impl FnMut(usize, &mut Simulator) -> Result<(), String>,
        mut setup: impl FnMut(usize, &mut Simulator),
    ) -> Result<BatchReport, SimError> {
        let stops = self.stops();
        let monitored = self.golden.monitored_signals();
        for &t in &stops {
            self.golden.run_until(t)?;

            // Activate lanes whose injection instant this stop is. The
            // clone carries the golden trace prefix, exactly like a
            // scalar run that recorded from time zero.
            for lane_id in 0..self.lanes.len() {
                let lane = &mut self.lanes[lane_id];
                if !matches!(lane.state, LaneState::Pending) || lane.inject_at != t {
                    continue;
                }
                let mut sim = self.golden.clone();
                setup(lane_id, &mut sim);
                lane.state = match inject(lane_id, &mut sim) {
                    Ok(()) => LaneState::Running(Box::new(sim)),
                    Err(e) => LaneState::Failed(e),
                };
            }

            // Advance every running lane to the stop; a failure retires
            // only that lane.
            for lane in &mut self.lanes {
                if let LaneState::Running(sim) = &mut lane.state {
                    if let Err(e) = sim.run_until(t) {
                        lane.state = LaneState::Failed(e.to_string());
                    }
                }
            }

            self.seal_reconverged(&monitored, t);

            let active = self
                .lanes
                .iter()
                .filter(|l| matches!(l.state, LaneState::Running(_) | LaneState::Pending))
                .count();
            if let Some(metrics) = &self.metrics {
                metrics.lanes_active.observe(active as u64);
            }
            if active == 0 {
                break;
            }
        }
        // The golden machine must reach the horizon even if every lane
        // retired early: sealed traces splice in its suffix.
        self.golden.run_until(self.t_end)?;

        let golden_trace = self.golden.into_trace();
        let outcomes = self
            .lanes
            .into_iter()
            .map(|lane| match lane.state {
                LaneState::Pending => unreachable!("stop grid covers every injection instant"),
                LaneState::Running(sim) => LaneOutcome::Completed {
                    trace: sim.into_trace(),
                    sealed_at: None,
                },
                LaneState::Sealed { mut trace, at } => {
                    trace.splice_golden_suffix(&golden_trace, at);
                    LaneOutcome::Completed {
                        trace,
                        sealed_at: Some(at),
                    }
                }
                LaneState::Failed(error) => LaneOutcome::Failed { error },
            })
            .collect();
        Ok(BatchReport {
            golden: golden_trace,
            outcomes,
        })
    }

    /// Seals every running lane whose machine state has reconverged with
    /// the golden machine's at stop `t`.
    fn seal_reconverged(&mut self, monitored: &[crate::netlist::SignalId], t: Time) {
        // Cheap plane-sliced divergence probe over the monitored signals:
        // lane `l` occupies planes lane `l`. A set bit proves divergence,
        // so only clear-bit lanes are seal candidates.
        let mut diverged = 0u64;
        for &sig in monitored {
            let golden_value = self.golden.value(sig);
            for bit in 0..golden_value.width() {
                let golden_bit = golden_value.get(bit).expect("bit in range");
                let golden_planes = LogicPlanes::splat(golden_bit);
                let mut lane_planes = golden_planes;
                for (lane_id, lane) in self.lanes.iter().enumerate() {
                    if let LaneState::Running(sim) = &lane.state {
                        lane_planes
                            .set_lane(lane_id, sim.value(sig).get(bit).expect("bit in range"));
                    }
                }
                diverged |= lane_planes.diverged_mask(golden_planes);
            }
        }

        let mut golden_digest = None;
        for lane_id in 0..self.lanes.len() {
            if diverged & (1 << lane_id) != 0 {
                continue;
            }
            let LaneState::Running(sim) = &self.lanes[lane_id].state else {
                continue;
            };
            let digest = *golden_digest.get_or_insert_with(|| self.golden.state_digest());
            if sim.state_digest() != digest || !sim.lockstep_state_eq(&self.golden) {
                continue;
            }
            let LaneState::Running(sim) =
                std::mem::replace(&mut self.lanes[lane_id].state, LaneState::Pending)
            else {
                unreachable!("matched Running above");
            };
            self.lanes[lane_id].state = LaneState::Sealed {
                trace: sim.into_trace(),
                at: t,
            };
            if let Some(metrics) = &self.metrics {
                metrics.lane_seals.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{ClockGen, ConstVector, Counter};
    use crate::{DigitalSaboteur, Netlist};
    use amsfi_faults::{DigitalFault, DigitalFaultKind};
    use amsfi_waves::{Logic, SimBudget};

    /// Clocked 8-bit counter with a saboteur on `en`: SET pulses on the
    /// enable either suppress counts (sampled) or wash out (unsampled),
    /// giving both permanently-diverged and reconverging lanes.
    fn build() -> Simulator {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let en = net.signal("en", 1);
        let q = net.signal("q", 8);
        net.add("ck", ClockGen::new(Time::from_ns(20)), &[], &[clk]);
        net.add("r", ConstVector::bit(Logic::Zero), &[], &[rst]);
        net.add("e", ConstVector::bit(Logic::One), &[], &[en]);
        net.add("ctr", Counter::new(8, Time::ZERO), &[clk, rst, en], &[q]);
        let mut sim = Simulator::new(net);
        sim.monitor_name("q");
        sim
    }

    fn counter_target(sim: &Simulator) -> crate::MutantTarget {
        sim.mutant_targets()
            .into_iter()
            .find(|t| t.component_name == "ctr")
            .expect("counter present")
    }

    fn scalar_flip(at: Time, bit: usize, t_end: Time) -> Trace {
        let mut sim = build();
        let target = counter_target(&sim);
        sim.run_until(at).unwrap();
        sim.flip_state(target.component, bit);
        sim.run_until(t_end).unwrap();
        sim.into_trace()
    }

    #[test]
    fn lanes_match_scalar_traces_byte_for_byte() {
        const T_END: Time = Time::from_us(4);
        let times = [Time::from_ns(105), Time::from_ns(330), Time::from_us(1)];
        let bits = [0usize, 3, 7];

        let mut batch = BatchSimulator::new(build(), T_END);
        let target = counter_target(&batch.golden);
        let mut cases = Vec::new();
        for &at in &times {
            for &bit in &bits {
                batch.add_lane(at);
                cases.push((at, bit));
            }
        }
        let report = batch
            .run(
                |lane, sim| {
                    sim.flip_state(target.component, cases[lane].1);
                    Ok(())
                },
                |_, _| {},
            )
            .unwrap();

        for (lane, &(at, bit)) in cases.iter().enumerate() {
            let scalar = scalar_flip(at, bit, T_END);
            match &report.outcomes[lane] {
                LaneOutcome::Completed { trace, .. } => {
                    assert_eq!(trace, &scalar, "lane {lane} (flip bit {bit} @ {at})");
                }
                LaneOutcome::Failed { error } => panic!("lane {lane}: {error}"),
            }
        }
    }

    #[test]
    fn washed_out_pulse_reconverges_and_seals() {
        // A SET pulse on `en` that lands entirely between sampling edges:
        // the waveform corruption washes out, the saboteur retires to the
        // pristine transparent state, and the lane's full machine state
        // equals the golden machine's — it must seal and still produce a
        // byte-identical trace via the golden-suffix splice.
        const T_END: Time = Time::from_us(4);
        let fault = DigitalFault::new(
            DigitalFaultKind::SetPulse {
                width: Time::from_ns(4),
            },
            Time::from_ns(42),
        );

        fn build_sab(fault: Option<DigitalFault>) -> Simulator {
            let mut net = Netlist::new();
            let clk = net.signal("clk", 1);
            let rst = net.signal("rst", 1);
            let en = net.signal("en", 1);
            let q = net.signal("q", 8);
            net.add("ck", ClockGen::new(Time::from_ns(20)), &[], &[clk]);
            net.add("r", ConstVector::bit(Logic::Zero), &[], &[rst]);
            net.add("e", ConstVector::bit(Logic::One), &[], &[en]);
            net.add("ctr", Counter::new(8, Time::ZERO), &[clk, rst, en], &[q]);
            let mut sab = DigitalSaboteur::new(1);
            if let Some(f) = fault {
                sab = sab.with_fault(f);
            }
            net.insert_saboteur(en, Box::new(sab));
            let mut sim = Simulator::new(net);
            sim.monitor_name("q");
            sim
        }

        // Scalar reference: pre-armed saboteur, one straight run.
        let mut scalar = build_sab(Some(fault.clone()));
        scalar.run_until(T_END).unwrap();
        let scalar_trace = scalar.into_trace();

        // Batch: the golden machine carries a transparent saboteur; the
        // lane arms it in place ahead of the injection instant.
        let mut batch =
            BatchSimulator::new(build_sab(None), T_END).with_seal_stride(Time::from_ns(50));
        let lane = batch.add_lane(Time::ZERO);
        let report = batch
            .run(
                |_, sim| {
                    let sab = sim.component_id("saboteur(en)").expect("saboteur present");
                    sim.component_mut(sab)
                        .as_any_mut()
                        .downcast_mut::<DigitalSaboteur>()
                        .expect("saboteur type")
                        .arm(fault.clone());
                    sim.wake_component(sab, fault.at);
                    Ok(())
                },
                |_, _| {},
            )
            .unwrap();

        match &report.outcomes[lane] {
            LaneOutcome::Completed { trace, sealed_at } => {
                assert_eq!(trace, &scalar_trace);
                let sealed = sealed_at.expect("washed-out pulse must seal");
                assert!(sealed < Time::from_us(1), "sealed late: {sealed}");
            }
            LaneOutcome::Failed { error } => panic!("{error}"),
        }
    }

    #[test]
    fn guard_trip_retires_only_that_lane() {
        const T_END: Time = Time::from_us(2);
        let mut batch = BatchSimulator::new(build(), T_END);
        let target = counter_target(&batch.golden);
        let strict = batch.add_lane(Time::from_ns(100));
        let free = batch.add_lane(Time::from_ns(100));
        let report = batch
            .run(
                |_, sim| {
                    sim.flip_state(target.component, 7);
                    Ok(())
                },
                |lane, sim| {
                    if lane == strict {
                        sim.set_budget(SimBudget::unlimited().with_max_steps(3));
                    }
                },
            )
            .unwrap();
        assert!(
            matches!(&report.outcomes[strict], LaneOutcome::Failed { error } if error.contains("step-budget-exhausted")),
            "strict lane must trip its budget"
        );
        let scalar = scalar_flip(Time::from_ns(100), 7, T_END);
        match &report.outcomes[free] {
            LaneOutcome::Completed { trace, .. } => assert_eq!(trace, &scalar),
            LaneOutcome::Failed { error } => panic!("free lane failed: {error}"),
        }
    }
}
