//! The digital saboteur: a pass-through component spliced into an
//! interconnect that can corrupt the value it forwards.
//!
//! This is the Section 3.2 saboteur, used for faults that live on wires
//! rather than in memorised state: stuck-ats, SET pulses, and wire-level
//! bit inversions. Splice one with [`Netlist::insert_saboteur`].
//!
//! [`Netlist::insert_saboteur`]: crate::Netlist::insert_saboteur

use crate::component::{Component, EvalContext};
use crate::netlist::PortSpec;
use amsfi_faults::{DigitalFault, DigitalFaultKind};
use amsfi_waves::{Logic, LogicVector, Time};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the injection time.
    Before,
    /// The fault is active (timed kinds only).
    Active,
    /// The fault has run its course; transparent pass-through.
    After,
}

/// A saboteur for digital interconnects.
///
/// Transparent (zero-delay pass-through) until its fault's injection time,
/// then:
///
/// * [`DigitalFaultKind::StuckAt`] — forces the level permanently;
/// * [`DigitalFaultKind::SetPulse`] — forwards the *inverted* input for the
///   pulse width, then turns transparent again;
/// * [`DigitalFaultKind::BitFlip`] — inverts the value once; the corruption
///   persists until the next source transition (the classical signal
///   bit-flip semantics);
/// * [`DigitalFaultKind::ForceState`] — drives the encoded value once.
///
/// A saboteur with no fault is fully transparent, so instrumented and
/// pristine circuits behave identically — the property that makes
/// "instrument once, inject many" campaigns sound.
#[derive(Debug, Clone)]
pub struct DigitalSaboteur {
    width: usize,
    fault: Option<DigitalFault>,
    phase: Phase,
    armed: bool,
}

impl DigitalSaboteur {
    /// Creates a transparent saboteur for a `width`-bit interconnect.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "saboteur width must be nonzero");
        DigitalSaboteur {
            width,
            fault: None,
            phase: Phase::Before,
            armed: false,
        }
    }

    /// Arms the saboteur with a fault to inject.
    #[must_use]
    pub fn with_fault(mut self, fault: DigitalFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// The armed fault, if any.
    pub fn fault(&self) -> Option<&DigitalFault> {
        self.fault.as_ref()
    }

    fn inverted(&self, input: &LogicVector) -> LogicVector {
        input.iter().map(Logic::flipped).collect()
    }
}

impl Component for DigitalSaboteur {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let input = ctx.input(0).clone();
        let Some(fault) = self.fault.clone() else {
            ctx.drive(0, input, Time::ZERO);
            return;
        };
        if !self.armed {
            self.armed = true;
            if ctx.now() <= fault.at {
                ctx.wake(fault.at - ctx.now());
            }
        }
        match self.phase {
            Phase::Before => {
                if ctx.now() < fault.at {
                    ctx.drive(0, input, Time::ZERO);
                    return;
                }
                // Injection instant reached.
                match fault.kind {
                    DigitalFaultKind::StuckAt(level) => {
                        self.phase = Phase::Active;
                        ctx.drive(0, LogicVector::filled(level, self.width), Time::ZERO);
                    }
                    DigitalFaultKind::SetPulse { width } => {
                        self.phase = Phase::Active;
                        ctx.drive(0, self.inverted(&input), Time::ZERO);
                        ctx.wake(width);
                    }
                    DigitalFaultKind::BitFlip => {
                        self.phase = Phase::After;
                        ctx.drive(0, self.inverted(&input), Time::ZERO);
                    }
                    DigitalFaultKind::ForceState { value } => {
                        self.phase = Phase::After;
                        ctx.drive(0, LogicVector::from_u64(value, self.width), Time::ZERO);
                    }
                }
            }
            Phase::Active => match fault.kind {
                DigitalFaultKind::StuckAt(level) => {
                    ctx.drive(0, LogicVector::filled(level, self.width), Time::ZERO);
                }
                DigitalFaultKind::SetPulse { .. } => {
                    if ctx.now() >= fault.end() {
                        self.phase = Phase::After;
                        ctx.drive(0, input, Time::ZERO);
                    } else {
                        ctx.drive(0, self.inverted(&input), Time::ZERO);
                    }
                }
                _ => unreachable!("point faults never stay active"),
            },
            Phase::After => {
                ctx.drive(0, input, Time::ZERO);
            }
        }
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("in", self.width)], &[("out", self.width)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{ClockGen, Stimulus};
    use crate::{Netlist, Simulator};

    fn clocked_bench(fault: Option<DigitalFault>) -> Simulator {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        net.add("ck", ClockGen::new(Time::from_ns(20)), &[], &[clk]);
        let mut sab = DigitalSaboteur::new(1);
        if let Some(f) = fault {
            sab = sab.with_fault(f);
        }
        net.insert_saboteur(clk, Box::new(sab));
        let mut sim = Simulator::new(net);
        sim.monitor_name("clk__sab");
        sim
    }

    #[test]
    fn transparent_without_fault() {
        let mut sim = clocked_bench(None);
        sim.run_until(Time::from_us(1)).unwrap();
        let w = sim.trace().digital("clk__sab").unwrap();
        // Every edge is forwarded unchanged: rises at 10, 30, ..., 990 ns.
        assert_eq!(w.rising_edges().len(), 50);
        assert_eq!(w.rising_edges()[0], Time::from_ns(10));
    }

    #[test]
    fn stuck_at_freezes_from_injection_time() {
        let fault = DigitalFault::new(DigitalFaultKind::StuckAt(Logic::Zero), Time::from_ns(100));
        let mut sim = clocked_bench(Some(fault));
        sim.run_until(Time::from_us(1)).unwrap();
        let w = sim.trace().digital("clk__sab").unwrap();
        // Edges before 100 ns pass; nothing after.
        assert!(w.rising_edges().iter().all(|&t| t < Time::from_ns(100)));
        assert_eq!(w.value_at(Time::from_us(1)), Logic::Zero);
    }

    #[test]
    fn set_pulse_inverts_for_its_width_only() {
        // Inject a 5 ns SET at 34 ns: clk is high (30-40 ns), so the output
        // shows a spurious low from 34 to 39 ns.
        let fault = DigitalFault::new(
            DigitalFaultKind::SetPulse {
                width: Time::from_ns(5),
            },
            Time::from_ns(34),
        );
        let mut sim = clocked_bench(Some(fault));
        sim.run_until(Time::from_ns(200)).unwrap();
        let w = sim.trace().digital("clk__sab").unwrap();
        assert_eq!(w.value_at(Time::from_ns(33)), Logic::One);
        assert_eq!(w.value_at(Time::from_ns(36)), Logic::Zero);
        // The pulse ends at 39 ns; the clock is still high until 40 ns.
        assert_eq!(
            w.value_at(Time::from_ns(39) + Time::from_ps(500)),
            Logic::One
        );
        // Subsequent cycles are clean: high again at 55 ns.
        assert_eq!(w.value_at(Time::from_ns(55)), Logic::One);
    }

    #[test]
    fn bit_flip_persists_until_next_transition() {
        let mut net = Netlist::new();
        let s = net.signal("s", 1);
        net.add(
            "stim",
            Stimulus::bits([(Time::ZERO, false), (Time::from_ns(100), true)]),
            &[],
            &[s],
        );
        let sab = DigitalSaboteur::new(1).with_fault(DigitalFault::bit_flip(Time::from_ns(40)));
        net.insert_saboteur(s, Box::new(sab));
        let mut sim = Simulator::new(net);
        sim.monitor_name("s__sab");
        sim.run_until(Time::from_ns(200)).unwrap();
        let w = sim.trace().digital("s__sab").unwrap();
        assert_eq!(w.value_at(Time::from_ns(30)), Logic::Zero);
        // Flipped at 40 ns: shows 1 although the source is 0.
        assert_eq!(w.value_at(Time::from_ns(50)), Logic::One);
        // Source transition at 100 ns overwrites the corruption.
        assert_eq!(w.value_at(Time::from_ns(150)), Logic::One);
    }

    #[test]
    fn force_state_drives_encoded_value_once() {
        let mut net = Netlist::new();
        let bus = net.signal("bus", 4);
        net.add(
            "stim",
            Stimulus::new([(Time::ZERO, amsfi_waves::LogicVector::from_u64(0x3, 4))]),
            &[],
            &[bus],
        );
        let sab = DigitalSaboteur::new(4).with_fault(DigitalFault::new(
            DigitalFaultKind::ForceState { value: 0xC },
            Time::from_ns(50),
        ));
        net.insert_saboteur(bus, Box::new(sab));
        let mut sim = Simulator::new(net);
        let out = sim.signal_id("bus__sab").unwrap();
        sim.run_until(Time::from_ns(40)).unwrap();
        assert_eq!(sim.value(out).to_u64(), Some(0x3));
        sim.run_until(Time::from_ns(60)).unwrap();
        assert_eq!(sim.value(out).to_u64(), Some(0xC));
    }
}
