//! The digital saboteur: a pass-through component spliced into an
//! interconnect that can corrupt the value it forwards.
//!
//! This is the Section 3.2 saboteur, used for faults that live on wires
//! rather than in memorised state: stuck-ats, SET pulses, and wire-level
//! bit inversions. Splice one with [`Netlist::insert_saboteur`].
//!
//! [`Netlist::insert_saboteur`]: crate::Netlist::insert_saboteur

use crate::component::{Component, EvalContext};
use crate::netlist::PortSpec;
use amsfi_faults::{DigitalFault, DigitalFaultKind};
use amsfi_waves::{Logic, LogicVector, Time};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the injection time.
    Before,
    /// The fault is active (timed kinds only).
    Active,
}

/// A saboteur for digital interconnects.
///
/// Transparent (zero-delay pass-through) until its fault's injection time,
/// then:
///
/// * [`DigitalFaultKind::StuckAt`] — forces the level permanently;
/// * [`DigitalFaultKind::SetPulse`] — forwards the *inverted* input for the
///   pulse width, then turns transparent again. The corruption is visible
///   on exactly the half-open window `[at, at + width)`, both in settled
///   waveforms and to edge-triggered samplers clocked at a boundary
///   instant (boundary drives land in the same delta batch as zero-delay
///   clock edges). A zero-width pulse is settled-invisible but is still
///   sampled by an edge at the same instant;
/// * [`DigitalFaultKind::BitFlip`] — inverts the value once; the corruption
///   persists until the next source transition (the classical signal
///   bit-flip semantics);
/// * [`DigitalFaultKind::ForceState`] — drives the encoded value once.
///
/// A saboteur with no fault is fully transparent, so instrumented and
/// pristine circuits behave identically — the property that makes
/// "instrument once, inject many" campaigns sound.
#[derive(Debug, Clone)]
pub struct DigitalSaboteur {
    width: usize,
    fault: Option<DigitalFault>,
    phase: Phase,
    armed: bool,
}

impl DigitalSaboteur {
    /// Creates a transparent saboteur for a `width`-bit interconnect.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "saboteur width must be nonzero");
        DigitalSaboteur {
            width,
            fault: None,
            phase: Phase::Before,
            armed: false,
        }
    }

    /// Arms the saboteur with a fault to inject.
    #[must_use]
    pub fn with_fault(mut self, fault: DigitalFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// The armed fault, if any.
    pub fn fault(&self) -> Option<&DigitalFault> {
        self.fault.as_ref()
    }

    /// Arms a fault on a saboteur that is already spliced into a running
    /// simulator (the batch path's in-place injection). The caller must
    /// also schedule a re-evaluation at the fault's injection instant with
    /// [`Simulator::wake_component`](crate::Simulator::wake_component) —
    /// the saboteur's own arming wake only fires from a power-on
    /// evaluation. Equivalent to building with [`DigitalSaboteur::with_fault`]
    /// provided the current simulation instant precedes `fault.at`.
    pub fn arm(&mut self, fault: DigitalFault) {
        self.fault = Some(fault);
        self.phase = Phase::Before;
        // The caller schedules the wake; suppress the eval-time arming
        // path so injection-instant evaluations match a build-time-armed
        // saboteur's exactly (no extra zero-delay wake).
        self.armed = true;
    }

    fn inverted(&self, input: &LogicVector) -> LogicVector {
        input.iter().map(Logic::flipped).collect()
    }

    /// Returns the saboteur to the pristine transparent state once its
    /// fault has run its course. A retired saboteur is bit-for-bit
    /// indistinguishable (including `Debug` output) from one that was
    /// never armed — the property the batch simulator's reconvergence
    /// seal relies on when comparing a mutant lane's full machine state
    /// against the golden machine's.
    fn retire(&mut self) {
        self.fault = None;
        self.phase = Phase::Before;
        self.armed = false;
    }
}

impl Component for DigitalSaboteur {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let input = ctx.input(0).clone();
        let Some(fault) = self.fault.clone() else {
            ctx.drive(0, input, Time::ZERO);
            return;
        };
        if !self.armed {
            self.armed = true;
            if ctx.now() <= fault.at {
                ctx.wake(fault.at - ctx.now());
            }
        }
        match self.phase {
            Phase::Before => {
                if ctx.now() < fault.at {
                    ctx.drive(0, input, Time::ZERO);
                    return;
                }
                // Injection instant reached.
                match fault.kind {
                    DigitalFaultKind::StuckAt(level) => {
                        self.phase = Phase::Active;
                        ctx.drive(0, LogicVector::filled(level, self.width), Time::ZERO);
                    }
                    DigitalFaultKind::SetPulse { width } => {
                        self.phase = Phase::Active;
                        ctx.drive(0, self.inverted(&input), Time::ZERO);
                        ctx.wake(width);
                    }
                    DigitalFaultKind::BitFlip => {
                        ctx.drive(0, self.inverted(&input), Time::ZERO);
                        self.retire();
                    }
                    DigitalFaultKind::ForceState { value } => {
                        ctx.drive(0, LogicVector::from_u64(value, self.width), Time::ZERO);
                        self.retire();
                    }
                }
            }
            Phase::Active => match fault.kind {
                DigitalFaultKind::StuckAt(level) => {
                    ctx.drive(0, LogicVector::filled(level, self.width), Time::ZERO);
                }
                DigitalFaultKind::SetPulse { .. } => {
                    if ctx.now() >= fault.end() {
                        ctx.drive(0, input, Time::ZERO);
                        self.retire();
                    } else {
                        ctx.drive(0, self.inverted(&input), Time::ZERO);
                    }
                }
                _ => unreachable!("point faults never stay active"),
            },
        }
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("in", self.width)], &[("out", self.width)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{ClockGen, Stimulus};
    use crate::{Netlist, Simulator};

    fn clocked_bench(fault: Option<DigitalFault>) -> Simulator {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        net.add("ck", ClockGen::new(Time::from_ns(20)), &[], &[clk]);
        let mut sab = DigitalSaboteur::new(1);
        if let Some(f) = fault {
            sab = sab.with_fault(f);
        }
        net.insert_saboteur(clk, Box::new(sab));
        let mut sim = Simulator::new(net);
        sim.monitor_name("clk__sab");
        sim
    }

    #[test]
    fn transparent_without_fault() {
        let mut sim = clocked_bench(None);
        sim.run_until(Time::from_us(1)).unwrap();
        let w = sim.trace().digital("clk__sab").unwrap();
        // Every edge is forwarded unchanged: rises at 10, 30, ..., 990 ns.
        assert_eq!(w.rising_edges().len(), 50);
        assert_eq!(w.rising_edges()[0], Time::from_ns(10));
    }

    #[test]
    fn stuck_at_freezes_from_injection_time() {
        let fault = DigitalFault::new(DigitalFaultKind::StuckAt(Logic::Zero), Time::from_ns(100));
        let mut sim = clocked_bench(Some(fault));
        sim.run_until(Time::from_us(1)).unwrap();
        let w = sim.trace().digital("clk__sab").unwrap();
        // Edges before 100 ns pass; nothing after.
        assert!(w.rising_edges().iter().all(|&t| t < Time::from_ns(100)));
        assert_eq!(w.value_at(Time::from_us(1)), Logic::Zero);
    }

    #[test]
    fn set_pulse_inverts_for_its_width_only() {
        // Inject a 5 ns SET at 34 ns: clk is high (30-40 ns), so the output
        // shows a spurious low from 34 to 39 ns.
        let fault = DigitalFault::new(
            DigitalFaultKind::SetPulse {
                width: Time::from_ns(5),
            },
            Time::from_ns(34),
        );
        let mut sim = clocked_bench(Some(fault));
        sim.run_until(Time::from_ns(200)).unwrap();
        let w = sim.trace().digital("clk__sab").unwrap();
        assert_eq!(w.value_at(Time::from_ns(33)), Logic::One);
        assert_eq!(w.value_at(Time::from_ns(36)), Logic::Zero);
        // The pulse ends at 39 ns; the clock is still high until 40 ns.
        assert_eq!(
            w.value_at(Time::from_ns(39) + Time::from_ps(500)),
            Logic::One
        );
        // Subsequent cycles are clean: high again at 55 ns.
        assert_eq!(w.value_at(Time::from_ns(55)), Logic::One);
    }

    /// Bench for the pulse end-boundary semantics: a counter whose `en`
    /// line carries the saboteur. Clock rises at 10, 30, 50, ... ns, so a
    /// pulse on `en` is "sampled" iff the counter misses increments.
    fn gated_counter(fault: Option<DigitalFault>) -> Simulator {
        use crate::cells::{ConstVector, Counter};
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let en = net.signal("en", 1);
        let q = net.signal("q", 8);
        net.add("ck", ClockGen::new(Time::from_ns(20)), &[], &[clk]);
        net.add("r", ConstVector::bit(Logic::Zero), &[], &[rst]);
        net.add("e", ConstVector::bit(Logic::One), &[], &[en]);
        net.add("ctr", Counter::new(8, Time::ZERO), &[clk, rst, en], &[q]);
        let mut sab = DigitalSaboteur::new(1);
        if let Some(f) = fault {
            sab = sab.with_fault(f);
        }
        // Splice after all readers exist so the counter reads `en__sab`.
        net.insert_saboteur(en, Box::new(sab));
        let mut sim = Simulator::new(net);
        sim.monitor_name("en__sab");
        sim
    }

    fn count_at_end(sim: &Simulator) -> u64 {
        let ctr = sim
            .mutant_targets()
            .into_iter()
            .find(|t| t.component_name == "ctr")
            .expect("counter present")
            .component;
        sim.state_value(ctr).unwrap()
    }

    fn pulse(at: Time, width: Time) -> DigitalFault {
        DigitalFault::new(DigitalFaultKind::SetPulse { width }, at)
    }

    /// Pinned semantics: a sampler clocked at `t` sees the pulse iff
    /// `at <= t < at + width` — the same half-open window the settled
    /// waveform shows. Mechanically, `ClockGen` and the saboteur both wake
    /// at the boundary instant and drive with zero delay, so the clock edge
    /// and the saboteur's corrective drive apply in the *same* delta batch;
    /// the edge-triggered eval that follows already sees the clean value.
    #[test]
    fn pulse_ending_exactly_on_sampling_edge_is_not_sampled() {
        // Golden: edges at 10, 30, 50, 70, 90 ns -> count 5 by 100 ns.
        let mut golden = gated_counter(None);
        golden.run_until(Time::from_ns(100)).unwrap();
        assert_eq!(count_at_end(&golden), 5);

        // Pulse [42, 50) on `en` ends exactly at the 50 ns rising edge:
        // the hand-back drive lands in the same delta as the clock edge,
        // so the counter samples the restored high and loses no count.
        let mut sim = gated_counter(Some(pulse(Time::from_ns(42), Time::from_ns(8))));
        sim.run_until(Time::from_ns(100)).unwrap();
        assert_eq!(count_at_end(&sim), 5);
        // The settled waveform recovered at 50 ns (half-open window).
        let w = sim.trace().digital("en__sab").unwrap();
        assert_eq!(w.value_at(Time::from_ns(45)), Logic::Zero);
        assert_eq!(w.value_at(Time::from_ns(50)), Logic::One);
    }

    /// Dual boundary: a pulse *starting* exactly on the sampling edge is
    /// sampled — the inverted drive applies in the same delta batch as the
    /// clock edge, so the edge eval latches the corrupted value. Together
    /// with the end-boundary test this pins the sampler-visible window to
    /// exactly `[at, at + width)`.
    #[test]
    fn pulse_starting_exactly_on_sampling_edge_is_sampled() {
        let mut sim = gated_counter(Some(pulse(Time::from_ns(50), Time::from_ns(8))));
        sim.run_until(Time::from_ns(100)).unwrap();
        // The edge at 50 ns samples the corrupted low: one count lost.
        assert_eq!(count_at_end(&sim), 4);
        let w = sim.trace().digital("en__sab").unwrap();
        assert_eq!(w.value_at(Time::from_ns(54)), Logic::Zero);
        assert_eq!(w.value_at(Time::from_ns(58)), Logic::One);
    }

    /// A zero-width pulse spans only delta cycles: the settled waveform
    /// never shows it (push of the same value is a no-op), yet an edge at
    /// the same instant *does* sample the corrupted value — the inverted
    /// drive applies with the clock edge, the hand-back one delta later.
    /// Degenerate width behaves as the `[at, at)` window's limit seen by
    /// same-instant samplers: delta-visible, settled-invisible.
    #[test]
    fn zero_width_pulse_is_settled_invisible_but_delta_sampled() {
        let mut sim = gated_counter(Some(pulse(Time::from_ns(50), Time::ZERO)));
        sim.run_until(Time::from_ns(100)).unwrap();
        assert_eq!(count_at_end(&sim), 4);
        let w = sim.trace().digital("en__sab").unwrap();
        for ns in [49, 50, 51, 99] {
            assert_eq!(w.value_at(Time::from_ns(ns)), Logic::One, "t = {ns} ns");
        }
    }

    /// Pulse end coinciding with a source transition at the same instant:
    /// the transparent hand-back forwards the *new* source value, never the
    /// stale pre-pulse one.
    #[test]
    fn pulse_end_on_source_transition_hands_back_new_value() {
        use crate::cells::Stimulus;
        let mut net = Netlist::new();
        let s = net.signal("s", 1);
        net.add(
            "stim",
            Stimulus::bits([(Time::ZERO, true), (Time::from_ns(50), false)]),
            &[],
            &[s],
        );
        // Pulse [42, 50): inverts the high source to low; at 50 ns the
        // source itself falls.
        let sab = DigitalSaboteur::new(1).with_fault(pulse(Time::from_ns(42), Time::from_ns(8)));
        net.insert_saboteur(s, Box::new(sab));
        let mut sim = Simulator::new(net);
        sim.monitor_name("s__sab");
        sim.run_until(Time::from_ns(100)).unwrap();
        let w = sim.trace().digital("s__sab").unwrap();
        assert_eq!(w.value_at(Time::from_ns(40)), Logic::One);
        assert_eq!(w.value_at(Time::from_ns(45)), Logic::Zero);
        // After the pulse the saboteur forwards the fallen source, not the
        // stale pre-pulse high.
        assert_eq!(w.value_at(Time::from_ns(50)), Logic::Zero);
        assert_eq!(w.value_at(Time::from_ns(99)), Logic::Zero);
    }

    #[test]
    fn bit_flip_persists_until_next_transition() {
        let mut net = Netlist::new();
        let s = net.signal("s", 1);
        net.add(
            "stim",
            Stimulus::bits([(Time::ZERO, false), (Time::from_ns(100), true)]),
            &[],
            &[s],
        );
        let sab = DigitalSaboteur::new(1).with_fault(DigitalFault::bit_flip(Time::from_ns(40)));
        net.insert_saboteur(s, Box::new(sab));
        let mut sim = Simulator::new(net);
        sim.monitor_name("s__sab");
        sim.run_until(Time::from_ns(200)).unwrap();
        let w = sim.trace().digital("s__sab").unwrap();
        assert_eq!(w.value_at(Time::from_ns(30)), Logic::Zero);
        // Flipped at 40 ns: shows 1 although the source is 0.
        assert_eq!(w.value_at(Time::from_ns(50)), Logic::One);
        // Source transition at 100 ns overwrites the corruption.
        assert_eq!(w.value_at(Time::from_ns(150)), Logic::One);
    }

    #[test]
    fn force_state_drives_encoded_value_once() {
        let mut net = Netlist::new();
        let bus = net.signal("bus", 4);
        net.add(
            "stim",
            Stimulus::new([(Time::ZERO, amsfi_waves::LogicVector::from_u64(0x3, 4))]),
            &[],
            &[bus],
        );
        let sab = DigitalSaboteur::new(4).with_fault(DigitalFault::new(
            DigitalFaultKind::ForceState { value: 0xC },
            Time::from_ns(50),
        ));
        net.insert_saboteur(bus, Box::new(sab));
        let mut sim = Simulator::new(net);
        let out = sim.signal_id("bus__sab").unwrap();
        sim.run_until(Time::from_ns(40)).unwrap();
        assert_eq!(sim.value(out).to_u64(), Some(0x3));
        sim.run_until(Time::from_ns(60)).unwrap();
        assert_eq!(sim.value(out).to_u64(), Some(0xC));
    }
}
