//! An event-driven digital simulator with built-in fault-injection
//! instrumentation, the digital half of the `amsfi` flow.
//!
//! The kernel reproduces the semantics the paper's VHDL-based flow relies
//! on: an event wheel with delta cycles, IEEE 1164-style nine-valued signals,
//! inertial and transport delays, and value-change tracing.
//!
//! Instrumentation follows Section 3.2 of the paper:
//!
//! * **Mutants** — every sequential cell exposes its memorised bits
//!   ([`Component::state_bits`] / [`Component::flip_state_bit`]); a campaign
//!   strikes an SEU at an exact instant with [`Simulator::flip_state`];
//! * **Saboteurs** — [`Netlist::insert_saboteur`] splices a
//!   [`DigitalSaboteur`] into an interconnect for stuck-ats, SET pulses and
//!   wire bit-flips.
//!
//! # Example
//!
//! An SEU in a counter bit, visible immediately and corrected at the next
//! reload:
//!
//! ```
//! use amsfi_digital::{cells, Netlist, Simulator};
//! use amsfi_waves::{Logic, Time};
//!
//! let mut net = Netlist::new();
//! let clk = net.signal("clk", 1);
//! let rst = net.signal("rst", 1);
//! let en = net.signal("en", 1);
//! let q = net.signal("q", 8);
//! net.add("ck", cells::ClockGen::new(Time::from_ns(20)), &[], &[clk]);
//! net.add("r", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
//! net.add("e", cells::ConstVector::bit(Logic::One), &[], &[en]);
//! let ctr = net.add("ctr", cells::Counter::new(8, Time::ZERO), &[clk, rst, en], &[q]);
//!
//! let mut sim = Simulator::new(net);
//! sim.run_until(Time::from_ns(50))?; // edges at 10, 30, 50 ns -> count 3
//! assert_eq!(sim.value(q).to_u64(), Some(3));
//!
//! sim.flip_state(ctr, 7); // SEU in the MSB
//! sim.run_until(Time::from_ns(55))?;
//! assert_eq!(sim.value(q).to_u64(), Some(3 + 128));
//! # Ok::<(), amsfi_digital::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
pub mod cells;
mod component;
mod netlist;
mod saboteur;
mod sim;
pub mod word;

pub use batch::{BatchReport, BatchSimulator, LaneOutcome};
pub use component::{Component, ComponentClone, EvalContext};
pub use netlist::{ComponentId, MutantTarget, Netlist, PortSpec, SignalId};
pub use saboteur::DigitalSaboteur;
pub use sim::{SimError, Simulator};
pub use word::{InjectTarget, WordBatchSimulator, WordComponent, WordEvalContext, GOLDEN_LANE};
