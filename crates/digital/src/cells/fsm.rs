//! A table-driven Moore finite-state machine.
//!
//! FSM state registers are prime SEU targets: the paper's reference \[11\]
//! models upsets as "erroneous transitions in a finite state machine". This
//! cell exposes its encoded state through the mutant hooks so campaigns can
//! both flip individual state bits and force arbitrary (possibly unreachable)
//! states.

use crate::component::{Component, EvalContext};
use crate::netlist::PortSpec;
use amsfi_waves::{Logic, LogicVector, Time};
use std::fmt;

/// Error returned when an FSM description is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidFsmError {
    reason: String,
}

impl fmt::Display for InvalidFsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid FSM description: {}", self.reason)
    }
}

impl std::error::Error for InvalidFsmError {}

/// A Moore FSM with a dense transition table.
///
/// Ports: `clk`, `rst`, `in[input_width]` → `out[output_width]`,
/// `state[state_width]`.
///
/// On each rising clock edge the state advances to
/// `transition[state * 2^input_width + input]`; `rst` (synchronous,
/// active-high) returns to state 0. The output is the Moore output of the
/// *current* state. A metalogical input holds the current state (modelling a
/// gated, synchronous design).
///
/// # Examples
///
/// A two-state toggle machine:
///
/// ```
/// use amsfi_digital::cells::Fsm;
/// use amsfi_digital::Component as _;
///
/// let fsm = Fsm::new(
///     2,        // states
///     1,        // input width
///     1,        // output width
///     // state 0: in=0 -> 0, in=1 -> 1 ; state 1: in=0 -> 1, in=1 -> 0
///     vec![0, 1, 1, 0],
///     vec![0, 1], // Moore outputs
///     amsfi_waves::Time::ZERO,
/// )?;
/// assert_eq!(fsm.state_bits(), 1);
/// # Ok::<(), amsfi_digital::cells::InvalidFsmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fsm {
    n_states: u64,
    input_width: usize,
    output_width: usize,
    state_width: usize,
    transition: Vec<u64>,
    output: Vec<u64>,
    state: u64,
    prev_clk: Logic,
    delay: Time,
}

impl Fsm {
    /// Builds an FSM from dense tables.
    ///
    /// `transition` must have `n_states * 2^input_width` entries (row-major
    /// by state); `output` must have `n_states` entries. State 0 is the
    /// reset state.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFsmError`] if a table has the wrong size, a
    /// transition leads outside `0..n_states`, or an output does not fit in
    /// `output_width` bits.
    pub fn new(
        n_states: u64,
        input_width: usize,
        output_width: usize,
        transition: Vec<u64>,
        output: Vec<u64>,
        delay: Time,
    ) -> Result<Self, InvalidFsmError> {
        let err = |reason: String| Err(InvalidFsmError { reason });
        if n_states == 0 {
            return err("need at least one state".into());
        }
        if input_width >= 32 {
            return err("input width must be below 32".into());
        }
        if output_width == 0 || output_width > 64 {
            return err("output width must be in 1..=64".into());
        }
        let expected = n_states as usize * (1usize << input_width);
        if transition.len() != expected {
            return err(format!(
                "transition table has {} entries, expected {expected}",
                transition.len()
            ));
        }
        if output.len() != n_states as usize {
            return err(format!(
                "output table has {} entries, expected {n_states}",
                output.len()
            ));
        }
        if let Some(bad) = transition.iter().find(|&&s| s >= n_states) {
            return err(format!("transition to out-of-range state {bad}"));
        }
        let out_mask = if output_width == 64 {
            u64::MAX
        } else {
            (1u64 << output_width) - 1
        };
        if let Some(bad) = output.iter().find(|&&o| o & !out_mask != 0) {
            return err(format!(
                "output {bad:#x} does not fit in {output_width} bits"
            ));
        }
        let state_width = (64 - (n_states - 1).leading_zeros()).max(1) as usize;
        Ok(Fsm {
            n_states,
            input_width,
            output_width,
            state_width,
            transition,
            output,
            state: 0,
            prev_clk: Logic::Uninitialized,
            delay,
        })
    }

    /// The number of bits used to encode the state.
    pub fn state_width(&self) -> usize {
        self.state_width
    }

    fn drive_outputs(&self, ctx: &mut EvalContext<'_>) {
        // A corrupted state may address outside the table: unreachable states
        // produce an all-X output, exactly what a synthesised one-hot or
        // sparse encoding would do.
        let out = if self.state < self.n_states {
            LogicVector::from_u64(self.output[self.state as usize], self.output_width)
        } else {
            LogicVector::filled(Logic::Unknown, self.output_width)
        };
        ctx.drive(0, out, self.delay);
        ctx.drive(
            1,
            LogicVector::from_u64(self.state, self.state_width),
            self.delay,
        );
    }
}

impl Component for Fsm {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let clk = ctx.input_bit(0);
        if !self.prev_clk.is_high() && clk.is_high() {
            if ctx.input_bit(1).is_high() {
                self.state = 0;
            } else if let Some(input) = ctx.input(2).to_u64() {
                if self.state < self.n_states {
                    let idx = self.state as usize * (1usize << self.input_width) + input as usize;
                    self.state = self.transition[idx];
                }
                // else: hold the corrupted state until reset.
            }
        }
        self.prev_clk = clk;
        self.drive_outputs(ctx);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(
            &[("clk", 1), ("rst", 1), ("in", self.input_width)],
            &[("out", self.output_width), ("state", self.state_width)],
        )
    }

    fn state_bits(&self) -> usize {
        self.state_width
    }

    fn flip_state_bit(&mut self, bit: usize) {
        self.state ^= 1 << bit;
    }

    fn state_label(&self, bit: usize) -> String {
        format!("state[{bit}]")
    }

    fn force_state(&mut self, value: u64) {
        self.state = value;
    }

    fn state_value(&self) -> Option<u64> {
        Some(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::sources::{ClockGen, ConstVector, Stimulus};
    use crate::{Netlist, Simulator};

    /// A 3-state sequence detector: advances on in=1, resets to 0 on in=0.
    /// Output is 1 only in state 2 ("two ones seen").
    fn detector() -> Fsm {
        Fsm::new(
            3,
            1,
            1,
            // state 0: 0->0, 1->1 ; state 1: 0->0, 1->2 ; state 2: 0->0, 1->2
            vec![0, 1, 0, 2, 0, 2],
            vec![0, 0, 1],
            Time::ZERO,
        )
        .unwrap()
    }

    fn build(fsm: Fsm, stim: Stimulus) -> (Simulator, crate::SignalId, crate::ComponentId) {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let inp = net.signal("in", 1);
        let out = net.signal("out", 1);
        let state = net.signal("state", fsm.state_width());
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", ConstVector::bit(Logic::Zero), &[], &[rst]);
        net.add("stim", stim, &[], &[inp]);
        let id = net.add("fsm", fsm, &[clk, rst, inp], &[out, state]);
        let mut sim = Simulator::new(net);
        sim.monitor(out);
        (sim, out, id)
    }

    #[test]
    fn detector_finds_double_ones() {
        // Edges at 5, 15, 25, 35 ns. Input: 1 from 0, so edges see 1,1,...
        let (mut sim, out, _) = build(detector(), Stimulus::bits([(Time::ZERO, true)]));
        sim.run_until(Time::from_ns(12)).unwrap();
        assert_eq!(sim.value(out)[0], Logic::Zero); // state 1 after first edge
        sim.run_until(Time::from_ns(22)).unwrap();
        assert_eq!(sim.value(out)[0], Logic::One); // state 2 after second edge
    }

    #[test]
    fn detector_resets_on_zero_input() {
        let (mut sim, out, _) = build(
            detector(),
            Stimulus::bits([(Time::ZERO, true), (Time::from_ns(17), false)]),
        );
        sim.run_until(Time::from_ns(22)).unwrap();
        // Second edge at 15 ns still saw 1 -> state 2; edge at 25 sees 0 -> state 0.
        assert_eq!(sim.value(out)[0], Logic::One);
        sim.run_until(Time::from_ns(27)).unwrap();
        assert_eq!(sim.value(out)[0], Logic::Zero);
    }

    #[test]
    fn forced_unreachable_state_outputs_x_until_reset() {
        let (mut sim, out, fsm_id) = build(detector(), Stimulus::bits([(Time::ZERO, true)]));
        sim.run_until(Time::from_ns(12)).unwrap();
        sim.force_state(fsm_id, 3); // state 3 does not exist (n_states = 3)
        sim.run_until(Time::from_ns(13)).unwrap();
        assert_eq!(sim.value(out)[0], Logic::Unknown);
        // Without reset the corrupted state is held.
        sim.run_until(Time::from_ns(40)).unwrap();
        assert_eq!(sim.value(out)[0], Logic::Unknown);
        assert_eq!(sim.state_value(fsm_id), Some(3));
    }

    #[test]
    fn seu_bit_flip_causes_erroneous_transition() {
        let (mut sim, out, fsm_id) = build(detector(), Stimulus::bits([(Time::ZERO, true)]));
        sim.run_until(Time::from_ns(22)).unwrap();
        assert_eq!(sim.state_value(fsm_id), Some(2));
        sim.flip_state(fsm_id, 1); // 2 -> 0: detector forgets it saw two ones
        sim.run_until(Time::from_ns(23)).unwrap();
        assert_eq!(sim.value(out)[0], Logic::Zero);
        // The machine re-walks 0 -> 1 -> 2 on subsequent ones.
        sim.run_until(Time::from_ns(50)).unwrap();
        assert_eq!(sim.value(out)[0], Logic::One);
    }

    #[test]
    fn validation_rejects_malformed_tables() {
        assert!(Fsm::new(0, 1, 1, vec![], vec![], Time::ZERO).is_err());
        assert!(Fsm::new(2, 1, 1, vec![0, 1, 1], vec![0, 1], Time::ZERO).is_err());
        assert!(Fsm::new(2, 1, 1, vec![0, 1, 1, 5], vec![0, 1], Time::ZERO).is_err());
        assert!(Fsm::new(2, 1, 1, vec![0, 1, 1, 0], vec![0, 2], Time::ZERO).is_err());
        assert!(Fsm::new(2, 1, 1, vec![0, 1, 1, 0], vec![0, 1], Time::ZERO).is_ok());
    }

    #[test]
    fn state_width_is_ceil_log2() {
        let f = Fsm::new(5, 1, 1, vec![0; 10], vec![0; 5], Time::ZERO).unwrap();
        assert_eq!(f.state_width(), 3);
        let f = Fsm::new(2, 1, 1, vec![0; 4], vec![0; 2], Time::ZERO).unwrap();
        assert_eq!(f.state_width(), 1);
        let f = Fsm::new(1, 1, 1, vec![0; 2], vec![0], Time::ZERO).unwrap();
        assert_eq!(f.state_width(), 1);
    }
}
