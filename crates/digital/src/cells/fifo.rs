//! A synchronous FIFO queue.
//!
//! Queues concentrate two distinct SEU surfaces in one cell: the stored
//! words (data corruption) and the read/write pointers (re-ordering, loss or
//! duplication of *whole words*) — the pointer bits are usually the ones
//! worth protecting.

use crate::component::{Component, EvalContext};
use crate::netlist::PortSpec;
use amsfi_waves::{Logic, LogicVector, Time};

/// A synchronous single-clock FIFO with `2^addr_width` entries of
/// `data_width` bits.
///
/// Ports: `clk`, `rst`, `wr_en`, `din[data_width]`, `rd_en` →
/// `dout[data_width]`, `empty`, `full`.
///
/// On each rising clock edge: a write (when `wr_en` and not full) stores
/// `din`; a read (when `rd_en` and not empty) pops the oldest word onto
/// `dout`. Simultaneous read and write are allowed. `rst` (synchronous)
/// clears the pointers but not the array.
#[derive(Debug, Clone)]
pub struct Fifo {
    addr_width: usize,
    data_width: usize,
    delay: Time,
    words: Vec<LogicVector>,
    rd: u64,
    wr: u64,
    count: u64,
    dout: LogicVector,
    prev_clk: Logic,
}

impl Fifo {
    /// Creates a FIFO with `2^addr_width` entries of `data_width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `addr_width` is not in `1..=16` or `data_width` is zero.
    pub fn new(addr_width: usize, data_width: usize, delay: Time) -> Self {
        assert!(
            (1..=16).contains(&addr_width),
            "addr width must be in 1..=16"
        );
        assert!(data_width > 0, "data width must be nonzero");
        Fifo {
            addr_width,
            data_width,
            delay,
            words: vec![LogicVector::zeros(data_width); 1 << addr_width],
            rd: 0,
            wr: 0,
            count: 0,
            dout: LogicVector::new(data_width),
            prev_clk: Logic::Uninitialized,
        }
    }

    /// The capacity in words.
    pub fn depth(&self) -> usize {
        self.words.len()
    }

    fn mask(&self) -> u64 {
        (1 << self.addr_width) - 1
    }
}

impl Component for Fifo {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let clk = ctx.input_bit(0);
        if !self.prev_clk.is_high() && clk.is_high() {
            if ctx.input_bit(1).is_high() {
                self.rd = 0;
                self.wr = 0;
                self.count = 0;
            } else {
                let full = self.count as usize == self.depth();
                let empty = self.count == 0;
                let do_write = ctx.input_bit(2).is_high() && !full;
                let do_read = ctx.input_bit(4).is_high() && !empty;
                if do_write {
                    self.words[self.wr as usize] = ctx.input(3).clone();
                    self.wr = (self.wr + 1) & self.mask();
                    self.count += 1;
                }
                if do_read {
                    self.dout = self.words[self.rd as usize].clone();
                    self.rd = (self.rd + 1) & self.mask();
                    self.count -= 1;
                }
            }
        }
        self.prev_clk = clk;
        ctx.drive(0, self.dout.clone(), self.delay);
        ctx.drive_bit(1, Logic::from_bool(self.count == 0), self.delay);
        ctx.drive_bit(
            2,
            Logic::from_bool(self.count as usize == self.depth()),
            self.delay,
        );
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(
            &[
                ("clk", 1),
                ("rst", 1),
                ("wr_en", 1),
                ("din", self.data_width),
                ("rd_en", 1),
            ],
            &[("dout", self.data_width), ("empty", 1), ("full", 1)],
        )
    }

    fn state_bits(&self) -> usize {
        // Stored words, then the read pointer, then the write pointer.
        self.depth() * self.data_width + 2 * self.addr_width
    }

    fn flip_state_bit(&mut self, bit: usize) {
        let mem_bits = self.depth() * self.data_width;
        if bit < mem_bits {
            self.words[bit / self.data_width].flip_bit(bit % self.data_width);
        } else if bit < mem_bits + self.addr_width {
            self.rd ^= 1 << (bit - mem_bits);
            // A pointer flip can make count inconsistent; a real FIFO's
            // occupancy logic derives from the pointers, so re-derive.
            self.count = (self.wr.wrapping_sub(self.rd)) & self.mask();
        } else {
            self.wr ^= 1 << (bit - mem_bits - self.addr_width);
            self.count = (self.wr.wrapping_sub(self.rd)) & self.mask();
        }
    }

    fn state_label(&self, bit: usize) -> String {
        let mem_bits = self.depth() * self.data_width;
        if bit < mem_bits {
            format!("mem[{}][{}]", bit / self.data_width, bit % self.data_width)
        } else if bit < mem_bits + self.addr_width {
            format!("rd_ptr[{}]", bit - mem_bits)
        } else {
            format!("wr_ptr[{}]", bit - mem_bits - self.addr_width)
        }
    }

    fn state_value(&self) -> Option<u64> {
        Some(self.rd | self.wr << self.addr_width | self.count << (2 * self.addr_width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{ClockGen, ConstVector, Stimulus};
    use crate::{Netlist, Simulator};

    /// Writes 4 words (edges at 5..35 ns), then reads 4 words (45..75 ns).
    fn fifo_bench() -> (Simulator, crate::ComponentId) {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let wr = net.signal("wr", 1);
        let din = net.signal("din", 8);
        let rd = net.signal("rd", 1);
        let dout = net.signal("dout", 8);
        let empty = net.signal("empty", 1);
        let full = net.signal("full", 1);
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", ConstVector::bit(Logic::Zero), &[], &[rst]);
        net.add(
            "wr_stim",
            Stimulus::bits([(Time::ZERO, true), (Time::from_ns(40), false)]),
            &[],
            &[wr],
        );
        // din counts 0x10, 0x11, ... at each write edge.
        net.add(
            "din_stim",
            Stimulus::new((0..6).map(|i| {
                (
                    Time::from_ns(10 * i),
                    LogicVector::from_u64(0x10 + i as u64, 8),
                )
            })),
            &[],
            &[din],
        );
        net.add(
            "rd_stim",
            Stimulus::bits([(Time::ZERO, false), (Time::from_ns(40), true)]),
            &[],
            &[rd],
        );
        let fifo = net.add(
            "fifo",
            Fifo::new(2, 8, Time::ZERO),
            &[clk, rst, wr, din, rd],
            &[dout, empty, full],
        );
        let mut sim = Simulator::new(net);
        sim.monitor(dout);
        (sim, fifo)
    }

    #[test]
    fn fifo_is_first_in_first_out() {
        let (mut sim, _) = fifo_bench();
        let dout = sim.signal_id("dout").unwrap();
        // Reads happen at edges 45, 55, 65, 75 ns, popping 0x10..0x13.
        for (t_ns, expect) in [(46i64, 0x10u64), (56, 0x11), (66, 0x12), (76, 0x13)] {
            sim.run_until(Time::from_ns(t_ns)).unwrap();
            assert_eq!(sim.value(dout).to_u64(), Some(expect), "at {t_ns} ns");
        }
    }

    #[test]
    fn flags_track_occupancy() {
        let (mut sim, _) = fifo_bench();
        let empty = sim.signal_id("empty").unwrap();
        let full = sim.signal_id("full").unwrap();
        sim.run_until(Time::from_ns(2)).unwrap();
        assert_eq!(sim.value(empty)[0], Logic::One);
        // After 4 writes (depth 4) the FIFO is full.
        sim.run_until(Time::from_ns(36)).unwrap();
        assert_eq!(sim.value(full)[0], Logic::One);
        // After 4 reads it is empty again.
        sim.run_until(Time::from_ns(80)).unwrap();
        assert_eq!(sim.value(empty)[0], Logic::One);
    }

    #[test]
    fn pointer_seu_reorders_the_stream() {
        let (mut sim, fifo) = fifo_bench();
        let dout = sim.signal_id("dout").unwrap();
        sim.run_until(Time::from_ns(40)).unwrap(); // 4 words queued
                                                   // Flip read-pointer bit 1: rd 0 -> 2, so reads start at word 2.
        sim.flip_state(fifo, 4 * 8 + 1);
        sim.run_until(Time::from_ns(46)).unwrap();
        assert_eq!(sim.value(dout).to_u64(), Some(0x12), "stream reordered");
    }

    #[test]
    fn stored_word_seu_corrupts_exactly_that_word() {
        let (mut sim, fifo) = fifo_bench();
        let dout = sim.signal_id("dout").unwrap();
        sim.run_until(Time::from_ns(40)).unwrap();
        // Flip bit 3 of stored word 1.
        sim.flip_state(fifo, 8 + 3);
        sim.run_until(Time::from_ns(46)).unwrap();
        assert_eq!(sim.value(dout).to_u64(), Some(0x10), "word 0 clean");
        sim.run_until(Time::from_ns(56)).unwrap();
        assert_eq!(sim.value(dout).to_u64(), Some(0x11 ^ 0b1000), "word 1 hit");
        sim.run_until(Time::from_ns(66)).unwrap();
        assert_eq!(sim.value(dout).to_u64(), Some(0x12), "word 2 clean");
    }

    #[test]
    fn labels_distinguish_memory_and_pointers() {
        let f = Fifo::new(2, 8, Time::ZERO);
        assert_eq!(f.state_bits(), 4 * 8 + 4);
        assert_eq!(f.state_label(0), "mem[0][0]");
        assert_eq!(f.state_label(32), "rd_ptr[0]");
        assert_eq!(f.state_label(35), "wr_ptr[1]");
        assert_eq!(f.depth(), 4);
    }
}
