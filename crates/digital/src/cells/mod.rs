//! The behavioural cell library: gates, sources, sequential elements,
//! arithmetic, FSMs and memories.
//!
//! Every sequential cell exposes its memorised bits through the mutant hooks
//! of [`Component`](crate::Component), making it an SEU target for the
//! fault-injection flow.

mod arith;
mod fifo;
mod fsm;
mod gates;
mod hardened;
mod memory;
mod seq;
mod sources;

pub use arith::{Adder, Comparator, Parity};
pub use fifo::Fifo;
pub use fsm::{Fsm, InvalidFsmError};
pub use gates::{And, Buf, Mux2, Nand, Nor, Not, Or, Xnor, Xor};
pub use hardened::{HammingDecoder, HammingEncoder, MajorityVoter, TmrRegister};
pub use memory::Ram;
pub use seq::{ClockDivider, Counter, Dff, Latch, Lfsr, Register, ShiftReg};
pub use sources::{ClockGen, ConstVector, Stimulus};
