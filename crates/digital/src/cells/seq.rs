//! Sequential cells: flip-flops, counters, shift registers, LFSRs.
//!
//! These are the primary SEU targets of the digital flow: each exposes its
//! memorised bits through the mutant hooks of [`Component`].

use crate::component::{Component, EvalContext};
use crate::netlist::PortSpec;
use amsfi_waves::{Logic, LogicVector, Time};

const CLK: usize = 0;

fn rising(prev: Logic, now: Logic) -> bool {
    !prev.is_high() && now.is_high()
}

/// A `width`-bit D flip-flop / register, rising-edge triggered, with an
/// active-high synchronous reset on a dedicated port.
///
/// Ports: `clk`, `rst`, `d[width]` → `q[width]`.
///
/// # Examples
///
/// ```
/// use amsfi_digital::{cells, Netlist, Simulator};
/// use amsfi_waves::{LogicVector, Time};
///
/// let mut net = Netlist::new();
/// let clk = net.signal("clk", 1);
/// let rst = net.signal("rst", 1);
/// let d = net.signal("d", 4);
/// let q = net.signal("q", 4);
/// net.add("ck", cells::ClockGen::new(Time::from_ns(10)), &[], &[clk]);
/// net.add("r0", cells::ConstVector::bit(amsfi_waves::Logic::Zero), &[], &[rst]);
/// net.add("dv", cells::ConstVector::new(LogicVector::from_u64(9, 4)), &[], &[d]);
/// net.add("ff", cells::Register::new(4, Time::ZERO), &[clk, rst, d], &[q]);
/// let mut sim = Simulator::new(net);
/// sim.run_until(Time::from_ns(20))?;
/// assert_eq!(sim.value(q).to_u64(), Some(9));
/// # Ok::<(), amsfi_digital::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Register {
    width: usize,
    delay: Time,
    state: LogicVector,
    prev_clk: Logic,
}

impl Register {
    /// Creates a register of `width` bits with clock-to-Q `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize, delay: Time) -> Self {
        assert!(width > 0, "register width must be nonzero");
        Register {
            width,
            delay,
            state: LogicVector::new(width),
            prev_clk: Logic::Uninitialized,
        }
    }
}

impl Component for Register {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let clk = ctx.input_bit(CLK);
        if rising(self.prev_clk, clk) {
            if ctx.input_bit(1).is_high() {
                self.state = LogicVector::zeros(self.width);
            } else {
                self.state = ctx.input(2).clone();
            }
        }
        self.prev_clk = clk;
        ctx.drive(0, self.state.clone(), self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(
            &[("clk", 1), ("rst", 1), ("d", self.width)],
            &[("q", self.width)],
        )
    }

    fn state_bits(&self) -> usize {
        self.width
    }

    fn flip_state_bit(&mut self, bit: usize) {
        self.state.flip_bit(bit);
    }

    fn state_label(&self, bit: usize) -> String {
        format!("q[{bit}]")
    }

    fn force_state(&mut self, value: u64) {
        self.state = LogicVector::from_u64(value, self.width);
    }

    fn state_value(&self) -> Option<u64> {
        self.state.to_u64()
    }
}

/// A single-bit D flip-flop without reset. Ports: `clk`, `d` → `q`.
#[derive(Debug, Clone)]
pub struct Dff {
    width: usize,
    delay: Time,
    state: LogicVector,
    prev_clk: Logic,
}

impl Dff {
    /// Creates a `width`-bit flip-flop with clock-to-Q `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize, delay: Time) -> Self {
        assert!(width > 0, "dff width must be nonzero");
        Dff {
            width,
            delay,
            state: LogicVector::new(width),
            prev_clk: Logic::Uninitialized,
        }
    }
}

impl Component for Dff {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let clk = ctx.input_bit(CLK);
        if rising(self.prev_clk, clk) {
            self.state = ctx.input(1).clone();
        }
        self.prev_clk = clk;
        ctx.drive(0, self.state.clone(), self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("clk", 1), ("d", self.width)], &[("q", self.width)])
    }

    fn state_bits(&self) -> usize {
        self.width
    }

    fn flip_state_bit(&mut self, bit: usize) {
        self.state.flip_bit(bit);
    }

    fn state_label(&self, bit: usize) -> String {
        format!("q[{bit}]")
    }

    fn force_state(&mut self, value: u64) {
        self.state = LogicVector::from_u64(value, self.width);
    }

    fn state_value(&self) -> Option<u64> {
        self.state.to_u64()
    }
}

/// A level-sensitive D latch: transparent while `en` is high, holding
/// otherwise.
///
/// Ports: `en`, `d[width]` → `q[width]`. Latches are a distinct SEU class:
/// an upset while *holding* persists until the next transparent phase,
/// while an upset during transparency is immediately overwritten.
#[derive(Debug, Clone)]
pub struct Latch {
    width: usize,
    delay: Time,
    state: LogicVector,
}

impl Latch {
    /// Creates a `width`-bit latch with the given propagation delay.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize, delay: Time) -> Self {
        assert!(width > 0, "latch width must be nonzero");
        Latch {
            width,
            delay,
            state: LogicVector::new(width),
        }
    }
}

impl Component for Latch {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        if ctx.input_bit(0).is_high() {
            self.state = ctx.input(1).clone();
        }
        ctx.drive(0, self.state.clone(), self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("en", 1), ("d", self.width)], &[("q", self.width)])
    }

    fn state_bits(&self) -> usize {
        self.width
    }

    fn flip_state_bit(&mut self, bit: usize) {
        self.state.flip_bit(bit);
    }

    fn state_label(&self, bit: usize) -> String {
        format!("q[{bit}]")
    }

    fn force_state(&mut self, value: u64) {
        self.state = LogicVector::from_u64(value, self.width);
    }

    fn state_value(&self) -> Option<u64> {
        self.state.to_u64()
    }
}

/// A binary up-counter with synchronous reset and enable.
///
/// Ports: `clk`, `rst`, `en` → `q[width]`. Counts on each rising clock edge
/// while `en` is high; wraps at 2^width.
#[derive(Debug, Clone)]
pub struct Counter {
    width: usize,
    delay: Time,
    count: u64,
    prev_clk: Logic,
}

impl Counter {
    /// Creates a counter of `width` bits (at most 64) with output `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    pub fn new(width: usize, delay: Time) -> Self {
        assert!((1..=64).contains(&width), "counter width must be in 1..=64");
        Counter {
            width,
            delay,
            count: 0,
            prev_clk: Logic::Uninitialized,
        }
    }

    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1 << self.width) - 1
        }
    }
}

impl Component for Counter {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let clk = ctx.input_bit(CLK);
        if rising(self.prev_clk, clk) {
            if ctx.input_bit(1).is_high() {
                self.count = 0;
            } else if ctx.input_bit(2).is_high() {
                self.count = (self.count + 1) & self.mask();
            }
        }
        self.prev_clk = clk;
        ctx.drive(0, LogicVector::from_u64(self.count, self.width), self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("clk", 1), ("rst", 1), ("en", 1)], &[("q", self.width)])
    }

    fn state_bits(&self) -> usize {
        self.width
    }

    fn flip_state_bit(&mut self, bit: usize) {
        self.count ^= 1 << bit;
    }

    fn state_label(&self, bit: usize) -> String {
        format!("count[{bit}]")
    }

    fn force_state(&mut self, value: u64) {
        self.count = value & self.mask();
    }

    fn state_value(&self) -> Option<u64> {
        Some(self.count)
    }
}

/// A serial-in shift register.
///
/// Ports: `clk`, `din` → `q[width]`, `sout`. On each rising edge the register
/// shifts left by one; `din` enters at bit 0 and `sout` is the evicted MSB.
#[derive(Debug, Clone)]
pub struct ShiftReg {
    width: usize,
    delay: Time,
    state: LogicVector,
    prev_clk: Logic,
}

impl ShiftReg {
    /// Creates a shift register of `width` bits with output `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize, delay: Time) -> Self {
        assert!(width > 0, "shift register width must be nonzero");
        ShiftReg {
            width,
            delay,
            state: LogicVector::zeros(width),
            prev_clk: Logic::Uninitialized,
        }
    }
}

impl Component for ShiftReg {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let clk = ctx.input_bit(CLK);
        let mut evicted = self.state[self.width - 1];
        if rising(self.prev_clk, clk) {
            let mut next = LogicVector::new(self.width);
            next.set(0, ctx.input_bit(1));
            for i in 1..self.width {
                next.set(i, self.state[i - 1]);
            }
            evicted = self.state[self.width - 1];
            self.state = next;
        }
        self.prev_clk = clk;
        ctx.drive(0, self.state.clone(), self.delay);
        ctx.drive_bit(1, evicted, self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("clk", 1), ("din", 1)], &[("q", self.width), ("sout", 1)])
    }

    fn state_bits(&self) -> usize {
        self.width
    }

    fn flip_state_bit(&mut self, bit: usize) {
        self.state.flip_bit(bit);
    }

    fn state_label(&self, bit: usize) -> String {
        format!("sr[{bit}]")
    }

    fn force_state(&mut self, value: u64) {
        self.state = LogicVector::from_u64(value, self.width);
    }

    fn state_value(&self) -> Option<u64> {
        self.state.to_u64()
    }
}

/// A Fibonacci linear-feedback shift register (pseudo-random source).
///
/// Ports: `clk` → `q[width]`. `taps` is a bit mask of feedback taps; the
/// feedback bit is the XOR of the tapped state bits.
#[derive(Debug, Clone)]
pub struct Lfsr {
    width: usize,
    taps: u64,
    delay: Time,
    state: u64,
    prev_clk: Logic,
}

impl Lfsr {
    /// Creates an LFSR with the given width, tap mask and non-zero seed.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=64`, `taps` is zero, or `seed` is
    /// zero (an all-zero LFSR never leaves zero).
    pub fn new(width: usize, taps: u64, seed: u64, delay: Time) -> Self {
        assert!((1..=64).contains(&width), "lfsr width must be in 1..=64");
        assert!(taps != 0, "lfsr needs at least one tap");
        assert!(seed != 0, "lfsr seed must be nonzero");
        Lfsr {
            width,
            taps,
            delay,
            state: seed,
            prev_clk: Logic::Uninitialized,
        }
    }

    /// A 16-bit maximal-length LFSR (polynomial x¹⁶+x¹⁴+x¹³+x¹¹+1,
    /// tap mask `0xB400`) seeded with `0xACE1`.
    pub fn maximal_16(delay: Time) -> Self {
        Self::new(16, 0xB400, 0xACE1, delay)
    }
}

impl Component for Lfsr {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let clk = ctx.input_bit(CLK);
        if rising(self.prev_clk, clk) {
            let fb = (self.state & self.taps).count_ones() & 1;
            self.state = (self.state << 1 | fb as u64)
                & if self.width == 64 {
                    u64::MAX
                } else {
                    (1 << self.width) - 1
                };
        }
        self.prev_clk = clk;
        ctx.drive(0, LogicVector::from_u64(self.state, self.width), self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("clk", 1)], &[("q", self.width)])
    }

    fn state_bits(&self) -> usize {
        self.width
    }

    fn flip_state_bit(&mut self, bit: usize) {
        self.state ^= 1 << bit;
    }

    fn state_label(&self, bit: usize) -> String {
        format!("lfsr[{bit}]")
    }

    fn force_state(&mut self, value: u64) {
        self.state = value;
    }

    fn state_value(&self) -> Option<u64> {
        Some(self.state)
    }
}

/// A divide-by-N clock divider.
///
/// Ports: `clk` → `out`. The output toggles every `n/2` rising input edges
/// (for even `n`), producing a square wave at `f_in / n`. This is the
/// "Divider" block of the paper's Fig. 5 PLL, which divides the 50 MHz VCO
/// clock back down to the 500 kHz reference (N = 100).
#[derive(Debug, Clone)]
pub struct ClockDivider {
    half: u64,
    delay: Time,
    count: u64,
    out: Logic,
    prev_clk: Logic,
}

impl ClockDivider {
    /// Creates a divide-by-`n` divider with output `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or odd (a square output needs an even ratio).
    pub fn new(n: u64, delay: Time) -> Self {
        assert!(
            n > 0 && n.is_multiple_of(2),
            "division ratio must be even and nonzero"
        );
        ClockDivider {
            half: n / 2,
            delay,
            count: 0,
            out: Logic::Zero,
            prev_clk: Logic::Uninitialized,
        }
    }
}

impl Component for ClockDivider {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let clk = ctx.input_bit(CLK);
        if rising(self.prev_clk, clk) {
            self.count += 1;
            if self.count >= self.half {
                self.count = 0;
                self.out = if self.out.is_high() {
                    Logic::Zero
                } else {
                    Logic::One
                };
            }
        }
        self.prev_clk = clk;
        ctx.drive_bit(0, self.out, self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("clk", 1)], &[("out", 1)])
    }

    fn state_bits(&self) -> usize {
        // The edge counter plus the output bit are all memorised state.
        (64 - (self.half.max(1) - 1).leading_zeros()).max(1) as usize + 1
    }

    fn flip_state_bit(&mut self, bit: usize) {
        if bit == self.state_bits() - 1 {
            self.out = self.out.flipped();
        } else {
            self.count ^= 1 << bit;
        }
    }

    fn state_label(&self, bit: usize) -> String {
        if bit == self.state_bits() - 1 {
            "out".to_owned()
        } else {
            format!("count[{bit}]")
        }
    }

    fn state_value(&self) -> Option<u64> {
        Some(self.count << 1 | u64::from(self.out.is_high()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::sources::{ClockGen, ConstVector, Stimulus};
    use crate::{Netlist, Simulator};

    fn low() -> ConstVector {
        ConstVector::bit(Logic::Zero)
    }

    fn high() -> ConstVector {
        ConstVector::bit(Logic::One)
    }

    #[test]
    fn register_captures_on_rising_edge_only() {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let d = net.signal("d", 1);
        let q = net.signal("q", 1);
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", low(), &[], &[rst]);
        // d goes high at 7 ns (before the 5 ns edge has passed; next edge 15 ns).
        net.add(
            "stim",
            Stimulus::bits([(Time::ZERO, false), (Time::from_ns(7), true)]),
            &[],
            &[d],
        );
        net.add("ff", Register::new(1, Time::ZERO), &[clk, rst, d], &[q]);
        let mut sim = Simulator::new(net);
        sim.monitor(q);
        sim.run_until(Time::from_ns(30)).unwrap();
        let w = sim.trace().digital("q").unwrap();
        assert_eq!(w.value_at(Time::from_ns(10)), Logic::Zero); // captured 0 at 5 ns
        assert_eq!(w.value_at(Time::from_ns(16)), Logic::One); // captured 1 at 15 ns
    }

    #[test]
    fn register_reset_wins_over_data() {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let d = net.signal("d", 1);
        let q = net.signal("q", 1);
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", high(), &[], &[rst]);
        net.add("dv", high(), &[], &[d]);
        net.add("ff", Register::new(1, Time::ZERO), &[clk, rst, d], &[q]);
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(50)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0));
    }

    #[test]
    fn register_seu_flip_propagates_immediately() {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let d = net.signal("d", 4);
        let q = net.signal("q", 4);
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", low(), &[], &[rst]);
        net.add(
            "dv",
            ConstVector::new(LogicVector::from_u64(0b0101, 4)),
            &[],
            &[d],
        );
        let ff = net.add("ff", Register::new(4, Time::ZERO), &[clk, rst, d], &[q]);
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(12)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0b0101));
        // SEU on bit 1 between clock edges.
        sim.flip_state(ff, 1);
        sim.run_until(Time::from_ns(13)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0b0111));
        // Next edge re-captures d: the upset is overwritten.
        sim.run_until(Time::from_ns(16)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0b0101));
    }

    #[test]
    fn counter_counts_and_wraps() {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let en = net.signal("en", 1);
        let q = net.signal("q", 2);
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", low(), &[], &[rst]);
        net.add("e", high(), &[], &[en]);
        net.add("ctr", Counter::new(2, Time::ZERO), &[clk, rst, en], &[q]);
        let mut sim = Simulator::new(net);
        // Edges at 5, 15, 25, 35, 45 ns → count = 5 mod 4 = 1.
        sim.run_until(Time::from_ns(50)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(1));
    }

    #[test]
    fn counter_disabled_holds() {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let en = net.signal("en", 1);
        let q = net.signal("q", 4);
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", low(), &[], &[rst]);
        net.add("e", low(), &[], &[en]);
        net.add("ctr", Counter::new(4, Time::ZERO), &[clk, rst, en], &[q]);
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(100)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0));
    }

    #[test]
    fn counter_force_state_models_fsm_corruption() {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let en = net.signal("en", 1);
        let q = net.signal("q", 8);
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", low(), &[], &[rst]);
        net.add("e", high(), &[], &[en]);
        let ctr = net.add("ctr", Counter::new(8, Time::ZERO), &[clk, rst, en], &[q]);
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(22)).unwrap();
        assert_eq!(sim.state_value(ctr), Some(2));
        sim.force_state(ctr, 200);
        sim.run_until(Time::from_ns(23)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(200));
        // The next edge (25 ns) resumes counting from the corrupted value.
        sim.run_until(Time::from_ns(26)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(201));
    }

    #[test]
    fn shift_register_shifts_serial_data() {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let din = net.signal("din", 1);
        let q = net.signal("q", 4);
        let sout = net.signal("sout", 1);
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        // Feed 1,0,1,1 on successive edges (edges at 5, 15, 25, 35 ns).
        net.add(
            "stim",
            Stimulus::bits([
                (Time::ZERO, true),
                (Time::from_ns(10), false),
                (Time::from_ns(20), true),
            ]),
            &[],
            &[din],
        );
        net.add("sr", ShiftReg::new(4, Time::ZERO), &[clk, din], &[q, sout]);
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(40)).unwrap();
        // After edges capturing 1,0,1,1 the register holds (lsb first in) 1,1,0,1.
        assert_eq!(sim.value(q).to_u64(), Some(0b1011));
    }

    #[test]
    fn lfsr_cycles_through_nonzero_states() {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let q = net.signal("q", 4);
        // x^4 + x^3 + 1: taps at bits 3 and 2.
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("lfsr", Lfsr::new(4, 0b1100, 1, Time::ZERO), &[clk], &[q]);
        let mut sim = Simulator::new(net);
        let mut seen = std::collections::HashSet::new();
        for cycle in 1..=15 {
            sim.run_until(Time::from_ns(10 * cycle)).unwrap();
            let v = sim.value(q).to_u64().unwrap();
            assert_ne!(v, 0, "lfsr must never reach zero");
            seen.insert(v);
        }
        // Maximal-length 4-bit LFSR: 15 distinct states.
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn mutant_targets_cover_all_cells() {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let en = net.signal("en", 1);
        let q1 = net.signal("q1", 4);
        let q2 = net.signal("q2", 8);
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", low(), &[], &[rst]);
        net.add("e", high(), &[], &[en]);
        net.add("ctr", Counter::new(4, Time::ZERO), &[clk, rst, en], &[q1]);
        net.add(
            "lfsr",
            Lfsr::new(8, 0b10111000, 1, Time::ZERO),
            &[clk],
            &[q2],
        );
        let targets = net.mutant_targets();
        assert_eq!(targets.len(), 12);
        assert!(targets.iter().any(|t| t.label == "count[3]"));
        assert!(targets.iter().any(|t| t.label == "lfsr[7]"));
    }

    #[test]
    fn clock_divider_divides_by_n() {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let out = net.signal("out", 1);
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("div", ClockDivider::new(10, Time::ZERO), &[clk], &[out]);
        let mut sim = Simulator::new(net);
        sim.monitor(out);
        sim.run_until(Time::from_us(1)).unwrap();
        let w = sim.trace().digital("out").unwrap();
        let periods: Vec<_> = amsfi_waves::measure::periods(w)
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        assert!(!periods.is_empty());
        assert!(
            periods.iter().all(|&p| p == Time::from_ns(100)),
            "{periods:?}"
        );
    }

    #[test]
    fn clock_divider_rejects_odd_ratio() {
        let r = std::panic::catch_unwind(|| ClockDivider::new(3, Time::ZERO));
        assert!(r.is_err());
    }

    #[test]
    fn latch_transparent_then_holds() {
        let mut net = Netlist::new();
        let en = net.signal("en", 1);
        let d = net.signal("d", 1);
        let q = net.signal("q", 1);
        net.add(
            "en_stim",
            Stimulus::bits([(Time::ZERO, true), (Time::from_ns(20), false)]),
            &[],
            &[en],
        );
        net.add(
            "d_stim",
            Stimulus::bits([
                (Time::ZERO, false),
                (Time::from_ns(10), true),
                (Time::from_ns(30), false),
            ]),
            &[],
            &[d],
        );
        net.add("lat", Latch::new(1, Time::ZERO), &[en, d], &[q]);
        let mut sim = Simulator::new(net);
        sim.monitor(q);
        sim.run_until(Time::from_ns(50)).unwrap();
        let w = sim.trace().digital("q").unwrap();
        // Transparent: follows d.
        assert_eq!(w.value_at(Time::from_ns(5)), Logic::Zero);
        assert_eq!(w.value_at(Time::from_ns(15)), Logic::One);
        // Holding from 20 ns: ignores d falling at 30 ns.
        assert_eq!(w.value_at(Time::from_ns(40)), Logic::One);
    }

    #[test]
    fn latch_seu_persists_only_while_holding() {
        let mut net = Netlist::new();
        let en = net.signal("en", 1);
        let d = net.signal("d", 1);
        let q = net.signal("q", 1);
        net.add(
            "en_stim",
            Stimulus::bits([
                (Time::ZERO, true), // capture the initial 0
                (Time::from_ns(5), false),
                (Time::from_ns(50), true),
                (Time::from_ns(60), false),
            ]),
            &[],
            &[en],
        );
        net.add("d0", ConstVector::bit(Logic::Zero), &[], &[d]);
        let lat = net.add("lat", Latch::new(1, Time::ZERO), &[en, d], &[q]);
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(10)).unwrap();
        // Holding phase: the upset persists...
        sim.flip_state(lat, 0);
        sim.run_until(Time::from_ns(40)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(1));
        // ...until the transparent phase re-captures d = 0.
        sim.run_until(Time::from_ns(55)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0));
    }
}
