//! A synchronous single-port RAM.
//!
//! Memories are the densest SEU targets in a real circuit; every stored bit
//! is exposed through the mutant hooks.

use crate::component::{Component, EvalContext};
use crate::netlist::PortSpec;
use amsfi_waves::{Logic, LogicVector, Time};

/// A synchronous-read, synchronous-write single-port RAM.
///
/// Ports: `clk`, `we`, `addr[addr_width]`, `din[data_width]` →
/// `dout[data_width]`.
///
/// On each rising clock edge: if `we` is high the addressed word is written
/// from `din`; `dout` always presents the addressed word *after* the edge
/// (write-first behaviour). A metalogical address leaves the array untouched
/// and reads all-`X`.
#[derive(Debug, Clone)]
pub struct Ram {
    addr_width: usize,
    data_width: usize,
    delay: Time,
    words: Vec<LogicVector>,
    dout: LogicVector,
    prev_clk: Logic,
}

impl Ram {
    /// Creates a zero-initialised RAM with `2^addr_width` words of
    /// `data_width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `addr_width` is not in `1..=20` (a million words is the
    /// sensible ceiling for behavioural simulation) or `data_width` is zero.
    pub fn new(addr_width: usize, data_width: usize, delay: Time) -> Self {
        assert!(
            (1..=20).contains(&addr_width),
            "addr width must be in 1..=20"
        );
        assert!(data_width > 0, "data width must be nonzero");
        Ram {
            addr_width,
            data_width,
            delay,
            words: vec![LogicVector::zeros(data_width); 1 << addr_width],
            dout: LogicVector::new(data_width),
            prev_clk: Logic::Uninitialized,
        }
    }

    /// Pre-loads word `addr` (for test benches).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or the value has the wrong width.
    pub fn preload(&mut self, addr: usize, value: LogicVector) {
        assert_eq!(value.width(), self.data_width, "preload width mismatch");
        self.words[addr] = value;
    }

    /// The number of stored words.
    pub fn depth(&self) -> usize {
        self.words.len()
    }
}

impl Component for Ram {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let clk = ctx.input_bit(0);
        if !self.prev_clk.is_high() && clk.is_high() {
            match ctx.input(2).to_u64() {
                Some(addr) => {
                    let addr = addr as usize;
                    if ctx.input_bit(1).is_high() {
                        self.words[addr] = ctx.input(3).clone();
                    }
                    self.dout = self.words[addr].clone();
                }
                None => {
                    self.dout = LogicVector::filled(Logic::Unknown, self.data_width);
                }
            }
        }
        self.prev_clk = clk;
        ctx.drive(0, self.dout.clone(), self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(
            &[
                ("clk", 1),
                ("we", 1),
                ("addr", self.addr_width),
                ("din", self.data_width),
            ],
            &[("dout", self.data_width)],
        )
    }

    fn state_bits(&self) -> usize {
        self.words.len() * self.data_width
    }

    fn flip_state_bit(&mut self, bit: usize) {
        let word = bit / self.data_width;
        let offset = bit % self.data_width;
        self.words[word].flip_bit(offset);
        // The visible output only changes if the flipped word is currently
        // addressed; re-present it on the next read.
    }

    fn state_label(&self, bit: usize) -> String {
        format!("mem[{}][{}]", bit / self.data_width, bit % self.data_width)
    }

    fn state_value(&self) -> Option<u64> {
        None // the array does not fit a u64; latent detection uses the trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::sources::{ClockGen, ConstVector, Stimulus};
    use crate::{Netlist, Simulator};

    fn ram_bench(stim_we: Stimulus, stim_addr: Stimulus, stim_din: Stimulus) -> Simulator {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let we = net.signal("we", 1);
        let addr = net.signal("addr", 2);
        let din = net.signal("din", 4);
        let dout = net.signal("dout", 4);
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("swe", stim_we, &[], &[we]);
        net.add("saddr", stim_addr, &[], &[addr]);
        net.add("sdin", stim_din, &[], &[din]);
        net.add(
            "ram",
            Ram::new(2, 4, Time::ZERO),
            &[clk, we, addr, din],
            &[dout],
        );
        Simulator::new(net)
    }

    fn vec4(v: u64) -> LogicVector {
        LogicVector::from_u64(v, 4)
    }

    fn vec2(v: u64) -> LogicVector {
        LogicVector::from_u64(v, 2)
    }

    #[test]
    fn write_then_read_back() {
        // Edge at 5 ns writes 0xA to addr 1; edge at 15 ns reads addr 1.
        let mut sim = ram_bench(
            Stimulus::bits([(Time::ZERO, true), (Time::from_ns(10), false)]),
            Stimulus::new([(Time::ZERO, vec2(1))]),
            Stimulus::new([(Time::ZERO, vec4(0xA))]),
        );
        let dout = sim.signal_id("dout").unwrap();
        sim.run_until(Time::from_ns(8)).unwrap();
        assert_eq!(sim.value(dout).to_u64(), Some(0xA)); // write-first
        sim.run_until(Time::from_ns(18)).unwrap();
        assert_eq!(sim.value(dout).to_u64(), Some(0xA));
    }

    #[test]
    fn unwritten_words_read_zero() {
        let mut sim = ram_bench(
            Stimulus::bits([(Time::ZERO, false)]),
            Stimulus::new([(Time::ZERO, vec2(3))]),
            Stimulus::new([(Time::ZERO, vec4(0xF))]),
        );
        let dout = sim.signal_id("dout").unwrap();
        sim.run_until(Time::from_ns(8)).unwrap();
        assert_eq!(sim.value(dout).to_u64(), Some(0));
    }

    #[test]
    fn seu_in_stored_word_corrupts_later_read() {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let we = net.signal("we", 1);
        let addr = net.signal("addr", 2);
        let din = net.signal("din", 4);
        let dout = net.signal("dout", 4);
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("swe", ConstVector::bit(Logic::Zero), &[], &[we]);
        net.add("saddr", ConstVector::new(vec2(2)), &[], &[addr]);
        net.add("sdin", ConstVector::new(vec4(0)), &[], &[din]);
        let mut ram = Ram::new(2, 4, Time::ZERO);
        ram.preload(2, vec4(0b0101));
        let ram_id = net.add("ram", ram, &[clk, we, addr, din], &[dout]);
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(8)).unwrap();
        assert_eq!(sim.value(dout).to_u64(), Some(0b0101));
        // Flip bit 1 of word 2 (state bit index 2*4 + 1 = 9).
        sim.flip_state(ram_id, 9);
        // Visible only after the next read edge.
        sim.run_until(Time::from_ns(18)).unwrap();
        assert_eq!(sim.value(dout).to_u64(), Some(0b0111));
    }

    #[test]
    fn state_bits_and_labels_cover_array() {
        let ram = Ram::new(2, 4, Time::ZERO);
        assert_eq!(ram.state_bits(), 16);
        assert_eq!(ram.state_label(9), "mem[2][1]");
        assert_eq!(ram.depth(), 4);
    }
}
