//! SEU-hardening primitives: majority voting (TMR) and Hamming single-error
//! correction.
//!
//! The paper's introduction names two uses for early fault injection:
//! identify the nodes to protect, and "validate the efficiency of the
//! implemented mechanisms". These cells are the mechanisms: inject into
//! them and check that the upset is masked.

use crate::component::{Component, EvalContext};
use crate::netlist::PortSpec;
use amsfi_waves::{Logic, LogicVector, Time};

/// Bitwise 2-of-3 majority voter over three buses.
///
/// Ports: `a[width]`, `b[width]`, `c[width]` → `y[width]`. Per bit, if at
/// least two inputs agree on a binary value, that value wins even if the
/// third is metalogical; three-way disagreement yields `X`.
#[derive(Debug, Clone)]
pub struct MajorityVoter {
    width: usize,
    delay: Time,
}

impl MajorityVoter {
    /// Creates a voter over `width`-bit buses.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize, delay: Time) -> Self {
        assert!(width > 0, "voter width must be nonzero");
        MajorityVoter { width, delay }
    }

    fn vote(a: Logic, b: Logic, c: Logic) -> Logic {
        let ones = [a, b, c]
            .iter()
            .filter(|v| v.to_bool() == Some(true))
            .count();
        let zeros = [a, b, c]
            .iter()
            .filter(|v| v.to_bool() == Some(false))
            .count();
        if ones >= 2 {
            Logic::One
        } else if zeros >= 2 {
            Logic::Zero
        } else {
            Logic::Unknown
        }
    }
}

impl Component for MajorityVoter {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let out: LogicVector = (0..self.width)
            .map(|i| Self::vote(ctx.input(0)[i], ctx.input(1)[i], ctx.input(2)[i]))
            .collect();
        ctx.drive(0, out, self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(
            &[("a", self.width), ("b", self.width), ("c", self.width)],
            &[("y", self.width)],
        )
    }
}

/// A triple-modular-redundant register: three internal replicas of the
/// state, voted on every output.
///
/// Ports: `clk`, `rst`, `d[width]` → `q[width]` — a drop-in replacement for
/// [`Register`](crate::cells::Register) whose single-bit upsets are masked.
///
/// The mutant surface is all `3 × width` replica bits, labelled
/// `r<replica>.q[bit]`: the fault-injection flow can verify that flipping
/// any *one* of them never reaches `q`.
#[derive(Debug, Clone)]
pub struct TmrRegister {
    width: usize,
    delay: Time,
    replicas: [LogicVector; 3],
    prev_clk: Logic,
}

impl TmrRegister {
    /// Creates a TMR register of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize, delay: Time) -> Self {
        assert!(width > 0, "register width must be nonzero");
        TmrRegister {
            width,
            delay,
            replicas: [
                LogicVector::new(width),
                LogicVector::new(width),
                LogicVector::new(width),
            ],
            prev_clk: Logic::Uninitialized,
        }
    }

    fn voted(&self) -> LogicVector {
        (0..self.width)
            .map(|i| {
                MajorityVoter::vote(
                    self.replicas[0][i],
                    self.replicas[1][i],
                    self.replicas[2][i],
                )
            })
            .collect()
    }
}

impl Component for TmrRegister {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let clk = ctx.input_bit(0);
        if !self.prev_clk.is_high() && clk.is_high() {
            let next = if ctx.input_bit(1).is_high() {
                LogicVector::zeros(self.width)
            } else {
                ctx.input(2).clone()
            };
            // All three replicas re-capture: a previously upset replica is
            // scrubbed at every clock edge.
            self.replicas = [next.clone(), next.clone(), next];
        }
        self.prev_clk = clk;
        ctx.drive(0, self.voted(), self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(
            &[("clk", 1), ("rst", 1), ("d", self.width)],
            &[("q", self.width)],
        )
    }

    fn state_bits(&self) -> usize {
        3 * self.width
    }

    fn flip_state_bit(&mut self, bit: usize) {
        let replica = bit / self.width;
        self.replicas[replica].flip_bit(bit % self.width);
    }

    fn state_label(&self, bit: usize) -> String {
        format!("r{}.q[{}]", bit / self.width, bit % self.width)
    }

    fn state_value(&self) -> Option<u64> {
        self.voted().to_u64()
    }
}

/// Positions (1-indexed, as in the classical construction) of the parity
/// bits inside a Hamming(7,4) codeword.
const HAMMING_DATA_POS: [usize; 4] = [3, 5, 6, 7];
const HAMMING_PARITY_POS: [usize; 3] = [1, 2, 4];

/// Combinational Hamming(7,4) encoder.
///
/// Ports: `d[4]` → `code[7]`. Codeword bit `i` (0-indexed) is position
/// `i + 1` of the classical construction; metalogical inputs yield an all-X
/// codeword.
#[derive(Debug, Clone)]
pub struct HammingEncoder {
    delay: Time,
}

impl HammingEncoder {
    /// Creates an encoder with the given propagation delay.
    pub fn new(delay: Time) -> Self {
        HammingEncoder { delay }
    }

    /// Encodes a 4-bit value into its 7-bit codeword.
    pub fn encode(data: u64) -> u64 {
        let mut code = 0u64;
        for (i, &pos) in HAMMING_DATA_POS.iter().enumerate() {
            if data >> i & 1 == 1 {
                code |= 1 << (pos - 1);
            }
        }
        for &p in &HAMMING_PARITY_POS {
            let mut parity = 0u64;
            for pos in 1..=7usize {
                if pos & p != 0 && pos != p {
                    parity ^= code >> (pos - 1) & 1;
                }
            }
            code |= parity << (p - 1);
        }
        code
    }
}

impl Component for HammingEncoder {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let out = match ctx.input(0).to_u64() {
            Some(d) => LogicVector::from_u64(Self::encode(d), 7),
            None => LogicVector::filled(Logic::Unknown, 7),
        };
        ctx.drive(0, out, self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("d", 4)], &[("code", 7)])
    }
}

/// Combinational Hamming(7,4) decoder with single-error correction.
///
/// Ports: `code[7]` → `d[4]`, `corrected` (high when a single-bit error was
/// fixed).
#[derive(Debug, Clone)]
pub struct HammingDecoder {
    delay: Time,
}

impl HammingDecoder {
    /// Creates a decoder with the given propagation delay.
    pub fn new(delay: Time) -> Self {
        HammingDecoder { delay }
    }

    /// Decodes a 7-bit codeword: `(data, corrected_position)` where the
    /// position is `None` for a clean codeword.
    pub fn decode(code: u64) -> (u64, Option<usize>) {
        let mut syndrome = 0usize;
        for &p in &HAMMING_PARITY_POS {
            let mut parity = 0u64;
            for pos in 1..=7usize {
                if pos & p != 0 {
                    parity ^= code >> (pos - 1) & 1;
                }
            }
            if parity == 1 {
                syndrome |= p;
            }
        }
        let fixed = if syndrome == 0 {
            code
        } else {
            code ^ (1 << (syndrome - 1))
        };
        let mut data = 0u64;
        for (i, &pos) in HAMMING_DATA_POS.iter().enumerate() {
            if fixed >> (pos - 1) & 1 == 1 {
                data |= 1 << i;
            }
        }
        (data, (syndrome != 0).then_some(syndrome))
    }
}

impl Component for HammingDecoder {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        match ctx.input(0).to_u64() {
            Some(code) => {
                let (data, fixed) = Self::decode(code);
                ctx.drive(0, LogicVector::from_u64(data, 4), self.delay);
                ctx.drive_bit(1, Logic::from_bool(fixed.is_some()), self.delay);
            }
            None => {
                ctx.drive(0, LogicVector::filled(Logic::Unknown, 4), self.delay);
                ctx.drive_bit(1, Logic::Unknown, self.delay);
            }
        }
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("code", 7)], &[("d", 4), ("corrected", 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{ClockGen, ConstVector};
    use crate::{Netlist, Simulator};

    #[test]
    fn hamming_round_trip_all_values() {
        for d in 0u64..16 {
            let code = HammingEncoder::encode(d);
            let (back, fixed) = HammingDecoder::decode(code);
            assert_eq!(back, d);
            assert_eq!(fixed, None, "clean codeword for {d}");
        }
    }

    #[test]
    fn hamming_corrects_every_single_bit_error() {
        for d in 0u64..16 {
            let code = HammingEncoder::encode(d);
            for bit in 0..7 {
                let (back, fixed) = HammingDecoder::decode(code ^ (1 << bit));
                assert_eq!(back, d, "data {d}, flipped bit {bit}");
                assert_eq!(fixed, Some(bit + 1), "reported position");
            }
        }
    }

    #[test]
    fn hamming_codewords_have_min_distance_three() {
        for a in 0u64..16 {
            for b in 0u64..16 {
                if a == b {
                    continue;
                }
                let dist = (HammingEncoder::encode(a) ^ HammingEncoder::encode(b)).count_ones();
                assert!(dist >= 3, "d({a},{b}) = {dist}");
            }
        }
    }

    #[test]
    fn voter_masks_single_disagreement() {
        assert_eq!(
            MajorityVoter::vote(Logic::One, Logic::One, Logic::Zero),
            Logic::One
        );
        assert_eq!(
            MajorityVoter::vote(Logic::Zero, Logic::One, Logic::Zero),
            Logic::Zero
        );
        assert_eq!(
            MajorityVoter::vote(Logic::One, Logic::Unknown, Logic::One),
            Logic::One
        );
        assert_eq!(
            MajorityVoter::vote(Logic::Unknown, Logic::One, Logic::Zero),
            Logic::Unknown
        );
    }

    fn tmr_bench() -> (Simulator, crate::ComponentId, crate::SignalId) {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let d = net.signal("d", 4);
        let q = net.signal("q", 4);
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", ConstVector::bit(Logic::Zero), &[], &[rst]);
        net.add(
            "dv",
            ConstVector::new(LogicVector::from_u64(0b1010, 4)),
            &[],
            &[d],
        );
        let reg = net.add("tmr", TmrRegister::new(4, Time::ZERO), &[clk, rst, d], &[q]);
        (Simulator::new(net), reg, q)
    }

    #[test]
    fn tmr_register_behaves_like_a_register() {
        let (mut sim, _, q) = tmr_bench();
        sim.run_until(Time::from_ns(10)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0b1010));
    }

    #[test]
    fn tmr_masks_any_single_replica_upset() {
        for bit in 0..12 {
            let (mut sim, reg, q) = tmr_bench();
            sim.run_until(Time::from_ns(12)).unwrap();
            sim.flip_state(reg, bit);
            sim.run_until(Time::from_ns(13)).unwrap();
            assert_eq!(
                sim.value(q).to_u64(),
                Some(0b1010),
                "upset on replica bit {bit} leaked through the voter"
            );
        }
    }

    #[test]
    fn tmr_double_upset_in_same_bit_position_defeats_voting() {
        let (mut sim, reg, q) = tmr_bench();
        sim.run_until(Time::from_ns(12)).unwrap();
        // Same bit (1) of two different replicas (0 and 1).
        sim.flip_state(reg, 1);
        sim.flip_state(reg, 4 + 1);
        sim.run_until(Time::from_ns(13)).unwrap();
        assert_eq!(
            sim.value(q).to_u64(),
            Some(0b1000),
            "2-of-3 flips win the vote"
        );
        // The next clock edge scrubs both replicas.
        sim.run_until(Time::from_ns(16)).unwrap();
        assert_eq!(sim.value(q).to_u64(), Some(0b1010));
    }

    #[test]
    fn tmr_labels_name_the_replica() {
        let reg = TmrRegister::new(4, Time::ZERO);
        assert_eq!(reg.state_bits(), 12);
        assert_eq!(reg.state_label(0), "r0.q[0]");
        assert_eq!(reg.state_label(9), "r2.q[1]");
    }
}
