//! Combinational arithmetic cells.

use crate::component::{Component, EvalContext};
use crate::netlist::PortSpec;
use amsfi_waves::{Logic, LogicVector, Time};

/// A ripple-carry adder over buses: `sum = a + b + cin`.
///
/// Ports: `a[width]`, `b[width]`, `cin` → `sum[width]`, `cout`. Any
/// metalogical input bit makes the affected sum bits (and carry) `X`.
#[derive(Debug, Clone)]
pub struct Adder {
    width: usize,
    delay: Time,
}

impl Adder {
    /// Creates an adder of `width` bits with propagation `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize, delay: Time) -> Self {
        assert!(width > 0, "adder width must be nonzero");
        Adder { width, delay }
    }
}

impl Component for Adder {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let a = ctx.input(0);
        let b = ctx.input(1);
        let mut carry = ctx.input_bit(2);
        let mut sum = LogicVector::new(self.width);
        for i in 0..self.width {
            let (ai, bi) = (a[i], b[i]);
            sum.set(i, ai ^ bi ^ carry);
            carry = (ai & bi) | (carry & (ai ^ bi));
        }
        ctx.drive(0, sum, self.delay);
        ctx.drive_bit(1, carry, self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(
            &[("a", self.width), ("b", self.width), ("cin", 1)],
            &[("sum", self.width), ("cout", 1)],
        )
    }
}

/// An unsigned magnitude comparator.
///
/// Ports: `a[width]`, `b[width]` → `eq`, `lt` (`a < b`). Metalogical inputs
/// produce `X` on both outputs.
#[derive(Debug, Clone)]
pub struct Comparator {
    width: usize,
    delay: Time,
}

impl Comparator {
    /// Creates a comparator of `width` bits with propagation `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize, delay: Time) -> Self {
        assert!(width > 0, "comparator width must be nonzero");
        Comparator { width, delay }
    }
}

impl Component for Comparator {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let (eq, lt) = match (ctx.input(0).to_u64(), ctx.input(1).to_u64()) {
            (Some(a), Some(b)) => (Logic::from_bool(a == b), Logic::from_bool(a < b)),
            _ => (Logic::Unknown, Logic::Unknown),
        };
        ctx.drive_bit(0, eq, self.delay);
        ctx.drive_bit(1, lt, self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(
            &[("a", self.width), ("b", self.width)],
            &[("eq", 1), ("lt", 1)],
        )
    }
}

/// Even-parity generator over a bus: output is `1` when the number of high
/// input bits is odd (i.e. XOR reduction).
///
/// Ports: `in[width]` → `parity`.
#[derive(Debug, Clone)]
pub struct Parity {
    width: usize,
    delay: Time,
}

impl Parity {
    /// Creates a parity generator of `width` bits with propagation `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize, delay: Time) -> Self {
        assert!(width > 0, "parity width must be nonzero");
        Parity { width, delay }
    }
}

impl Component for Parity {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let p = ctx.input(0).iter().fold(Logic::Zero, |acc, bit| acc ^ bit);
        ctx.drive_bit(0, p, self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("in", self.width)], &[("parity", 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::sources::ConstVector;
    use crate::{Netlist, Simulator};

    fn run_adder(width: usize, a: u64, b: u64, cin: bool) -> (Option<u64>, Logic) {
        let mut net = Netlist::new();
        let sa = net.signal("a", width);
        let sb = net.signal("b", width);
        let sc = net.signal("cin", 1);
        let ss = net.signal("sum", width);
        let sco = net.signal("cout", 1);
        net.add(
            "ca",
            ConstVector::new(LogicVector::from_u64(a, width)),
            &[],
            &[sa],
        );
        net.add(
            "cb",
            ConstVector::new(LogicVector::from_u64(b, width)),
            &[],
            &[sb],
        );
        net.add("cc", ConstVector::bit(Logic::from_bool(cin)), &[], &[sc]);
        net.add(
            "add",
            Adder::new(width, Time::ZERO),
            &[sa, sb, sc],
            &[ss, sco],
        );
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(1)).unwrap();
        (sim.value(ss).to_u64(), sim.value(sco)[0])
    }

    #[test]
    fn adder_exhaustive_4bit() {
        for a in 0u64..16 {
            for b in 0u64..16 {
                for cin in [false, true] {
                    let (sum, cout) = run_adder(4, a, b, cin);
                    let full = a + b + cin as u64;
                    assert_eq!(sum, Some(full & 0xF), "{a}+{b}+{cin}");
                    assert_eq!(cout, Logic::from_bool(full > 0xF), "{a}+{b}+{cin} carry");
                }
            }
        }
    }

    #[test]
    fn adder_with_metalogical_bit_produces_x() {
        let mut net = Netlist::new();
        let sa = net.signal("a", 2);
        let sb = net.signal("b", 2);
        let sc = net.signal("cin", 1);
        let ss = net.signal("sum", 2);
        let sco = net.signal("cout", 1);
        let mut av = LogicVector::from_u64(1, 2);
        av.set(1, Logic::Unknown);
        net.add("ca", ConstVector::new(av), &[], &[sa]);
        net.add(
            "cb",
            ConstVector::new(LogicVector::from_u64(2, 2)),
            &[],
            &[sb],
        );
        net.add("cc", ConstVector::bit(Logic::Zero), &[], &[sc]);
        net.add("add", Adder::new(2, Time::ZERO), &[sa, sb, sc], &[ss, sco]);
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(1)).unwrap();
        assert_eq!(sim.value(ss).to_u64(), None);
        assert_eq!(sim.value(ss)[1], Logic::Unknown);
    }

    #[test]
    fn comparator_relations() {
        for (a, b, eq, lt) in [
            (3u64, 3u64, Logic::One, Logic::Zero),
            (2, 3, Logic::Zero, Logic::One),
            (3, 2, Logic::Zero, Logic::Zero),
        ] {
            let mut net = Netlist::new();
            let sa = net.signal("a", 4);
            let sb = net.signal("b", 4);
            let se = net.signal("eq", 1);
            let sl = net.signal("lt", 1);
            net.add(
                "ca",
                ConstVector::new(LogicVector::from_u64(a, 4)),
                &[],
                &[sa],
            );
            net.add(
                "cb",
                ConstVector::new(LogicVector::from_u64(b, 4)),
                &[],
                &[sb],
            );
            net.add("cmp", Comparator::new(4, Time::ZERO), &[sa, sb], &[se, sl]);
            let mut sim = Simulator::new(net);
            sim.run_until(Time::from_ns(1)).unwrap();
            assert_eq!(sim.value(se)[0], eq, "{a} vs {b} eq");
            assert_eq!(sim.value(sl)[0], lt, "{a} vs {b} lt");
        }
    }

    #[test]
    fn parity_counts_ones() {
        for (v, expect) in [
            (0b0000u64, Logic::Zero),
            (0b1011, Logic::One),
            (0b1111, Logic::Zero),
        ] {
            let mut net = Netlist::new();
            let si = net.signal("in", 4);
            let sp = net.signal("p", 1);
            net.add(
                "cv",
                ConstVector::new(LogicVector::from_u64(v, 4)),
                &[],
                &[si],
            );
            net.add("par", Parity::new(4, Time::ZERO), &[si], &[sp]);
            let mut sim = Simulator::new(net);
            sim.run_until(Time::from_ns(1)).unwrap();
            assert_eq!(sim.value(sp)[0], expect, "parity of {v:#b}");
        }
    }
}
