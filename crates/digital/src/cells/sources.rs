//! Stimulus sources: clocks, constants and pre-scheduled waveforms.

use crate::component::{Component, EvalContext};
use crate::netlist::PortSpec;
use crate::word::{WordComponent, WordEvalContext};
use amsfi_waves::{Logic, LogicPlanes, LogicVector, Time};

/// A free-running clock generator.
///
/// The output starts low at time zero, rises at `start + period/2` and
/// toggles every half period thereafter.
///
/// # Examples
///
/// ```
/// use amsfi_digital::{cells::ClockGen, Netlist, Simulator};
/// use amsfi_waves::Time;
///
/// let mut net = Netlist::new();
/// let clk = net.signal("clk", 1);
/// net.add("ck", ClockGen::new(Time::from_ns(20)), &[], &[clk]);
/// let mut sim = Simulator::new(net);
/// sim.monitor_name("clk");
/// sim.run_until(Time::from_ns(100))?;
/// assert_eq!(sim.trace().digital("clk").unwrap().rising_edges().len(), 5);
/// # Ok::<(), amsfi_digital::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClockGen {
    period: Time,
    start: Time,
    value: Logic,
    fired: bool,
}

impl ClockGen {
    /// Creates a clock with the given period, starting immediately.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    pub fn new(period: Time) -> Self {
        assert!(period > Time::ZERO, "clock period must be positive");
        ClockGen {
            period,
            start: Time::ZERO,
            value: Logic::Zero,
            fired: false,
        }
    }

    /// Delays the first half-period by `start`.
    #[must_use]
    pub fn with_start(mut self, start: Time) -> Self {
        self.start = start;
        self
    }

    /// The clock period.
    pub fn period(&self) -> Time {
        self.period
    }
}

impl Component for ClockGen {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let half = self.period / 2;
        if !self.fired {
            self.fired = true;
            ctx.drive_bit(0, Logic::Zero, Time::ZERO);
            ctx.wake(self.start + half);
        } else {
            self.value = if self.value == Logic::One {
                Logic::Zero
            } else {
                Logic::One
            };
            ctx.drive_bit(0, self.value, Time::ZERO);
            ctx.wake(half);
        }
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[], &[("clk", 1)])
    }

    fn word_component(&self) -> Option<Box<dyn WordComponent>> {
        Some(Box::new(WordClockGen {
            period: self.period,
            start: self.start,
            value: LogicPlanes::splat(self.value),
            fired: if self.fired { u64::MAX } else { 0 },
        }))
    }
}

/// Word-parallel clock: per-lane `fired` mask and a plane-valued level.
/// Lanes stay in lock step in practice (the clock has no inputs and no
/// mutant surface), but the masks keep per-lane semantics exact anyway.
#[derive(Debug)]
struct WordClockGen {
    period: Time,
    start: Time,
    value: LogicPlanes,
    fired: u64,
}

impl WordComponent for WordClockGen {
    fn eval(&mut self, ctx: &mut WordEvalContext<'_>) {
        let half = self.period / 2;
        let mask = ctx.eval_mask();
        let unfired = mask & !self.fired;
        if unfired != 0 {
            self.fired |= unfired;
            ctx.drive_bit_masked(0, LogicPlanes::splat(Logic::Zero), Time::ZERO, unfired);
            ctx.wake_masked(self.start + half, unfired);
        }
        let toggling = mask & !unfired;
        if toggling != 0 {
            // Toggle exactly the lanes currently at `One` (the scalar
            // toggle is an equality test, not `is_high`).
            let ones = !self.value.diverged_mask(LogicPlanes::splat(Logic::One));
            self.value = self
                .value
                .select(toggling, LogicPlanes::from_bool_mask(!ones));
            ctx.drive_bit_masked(0, self.value, Time::ZERO, toggling);
            ctx.wake_masked(half, toggling);
        }
    }

    fn lanes_equal(&self, a: usize, b: usize) -> bool {
        (self.fired >> a) & 1 == (self.fired >> b) & 1 && self.value.lane(a) == self.value.lane(b)
    }
}

/// Drives a constant vector from time zero.
#[derive(Debug, Clone)]
pub struct ConstVector {
    value: LogicVector,
}

impl ConstVector {
    /// Creates a constant source for `value`.
    pub fn new(value: LogicVector) -> Self {
        ConstVector { value }
    }

    /// Scalar convenience constructor.
    pub fn bit(value: Logic) -> Self {
        ConstVector {
            value: LogicVector::filled(value, 1),
        }
    }
}

impl Component for ConstVector {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        ctx.drive(0, self.value.clone(), Time::ZERO);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[], &[("out", self.value.width())])
    }

    fn word_component(&self) -> Option<Box<dyn WordComponent>> {
        Some(Box::new(WordConstVector {
            value: self.value.iter().map(LogicPlanes::splat).collect(),
        }))
    }
}

/// Word-parallel constant source: the value pre-splatted into planes.
#[derive(Debug)]
struct WordConstVector {
    value: Vec<LogicPlanes>,
}

impl WordComponent for WordConstVector {
    fn eval(&mut self, ctx: &mut WordEvalContext<'_>) {
        ctx.drive(0, self.value.clone(), Time::ZERO);
    }

    fn lanes_equal(&self, _a: usize, _b: usize) -> bool {
        true
    }
}

/// Replays a pre-defined waveform: a list of `(time, value)` pairs scheduled
/// with transport semantics at power-on (the VHDL testbench idiom).
#[derive(Debug, Clone)]
pub struct Stimulus {
    width: usize,
    schedule: Vec<(Time, LogicVector)>,
    fired: bool,
}

impl Stimulus {
    /// Creates a stimulus from `(time, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty, not sorted by strictly increasing
    /// time, or mixes widths.
    pub fn new<I: IntoIterator<Item = (Time, LogicVector)>>(schedule: I) -> Self {
        let schedule: Vec<(Time, LogicVector)> = schedule.into_iter().collect();
        assert!(!schedule.is_empty(), "stimulus schedule is empty");
        let width = schedule[0].1.width();
        for pair in schedule.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "stimulus times must be strictly increasing"
            );
        }
        assert!(
            schedule.iter().all(|(_, v)| v.width() == width),
            "stimulus values must share one width"
        );
        Stimulus {
            width,
            schedule,
            fired: false,
        }
    }

    /// Builds a scalar stimulus from `(time, bool)` pairs.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Stimulus::new`].
    pub fn bits<I: IntoIterator<Item = (Time, bool)>>(schedule: I) -> Self {
        Self::new(
            schedule
                .into_iter()
                .map(|(t, b)| (t, LogicVector::filled(Logic::from_bool(b), 1))),
        )
    }
}

impl Component for Stimulus {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        if self.fired {
            return;
        }
        self.fired = true;
        for (t, v) in &self.schedule {
            ctx.drive_transport(0, v.clone(), *t);
        }
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[], &[("out", self.width)])
    }

    fn word_component(&self) -> Option<Box<dyn WordComponent>> {
        Some(Box::new(WordStimulus {
            schedule: self.schedule.clone(),
            fired: if self.fired { u64::MAX } else { 0 },
        }))
    }
}

/// Word-parallel stimulus: replays the schedule once per lane, on that
/// lane's first evaluation.
#[derive(Debug)]
struct WordStimulus {
    schedule: Vec<(Time, LogicVector)>,
    fired: u64,
}

impl WordComponent for WordStimulus {
    fn eval(&mut self, ctx: &mut WordEvalContext<'_>) {
        let newly = ctx.eval_mask() & !self.fired;
        if newly == 0 {
            return;
        }
        self.fired |= newly;
        for (t, v) in &self.schedule {
            let planes: Vec<LogicPlanes> = v.iter().map(LogicPlanes::splat).collect();
            ctx.drive_transport_masked(0, planes, *t, newly);
        }
    }

    fn lanes_equal(&self, a: usize, b: usize) -> bool {
        (self.fired >> a) & 1 == (self.fired >> b) & 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Netlist, Simulator};

    #[test]
    fn clock_duty_cycle_is_half() {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        net.add("ck", ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        let mut sim = Simulator::new(net);
        sim.monitor(clk);
        sim.run_until(Time::from_ns(100)).unwrap();
        let wave = sim.trace().digital("clk").unwrap();
        let rising = wave.rising_edges();
        let falling = wave.falling_edges();
        // Rises at 5, 15, ... and falls at 0, 10, 20, ...
        assert_eq!(rising[0], Time::from_ns(5));
        assert!(falling.contains(&Time::from_ns(10)));
        // High time between consecutive rise/fall is half the period.
        assert_eq!(falling[1] - rising[0], Time::from_ns(5));
    }

    #[test]
    fn clock_with_start_delay() {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        net.add(
            "ck",
            ClockGen::new(Time::from_ns(10)).with_start(Time::from_ns(100)),
            &[],
            &[clk],
        );
        let mut sim = Simulator::new(net);
        sim.monitor(clk);
        sim.run_until(Time::from_ns(120)).unwrap();
        let rising = sim.trace().digital("clk").unwrap().rising_edges();
        assert_eq!(rising[0], Time::from_ns(105));
    }

    #[test]
    fn stimulus_replays_schedule() {
        let mut net = Netlist::new();
        let s = net.signal("s", 1);
        net.add(
            "stim",
            Stimulus::bits([
                (Time::ZERO, false),
                (Time::from_ns(10), true),
                (Time::from_ns(30), false),
            ]),
            &[],
            &[s],
        );
        let mut sim = Simulator::new(net);
        sim.monitor(s);
        sim.run_until(Time::from_ns(50)).unwrap();
        let w = sim.trace().digital("s").unwrap();
        assert_eq!(w.value_at(Time::from_ns(5)), Logic::Zero);
        assert_eq!(w.value_at(Time::from_ns(20)), Logic::One);
        assert_eq!(w.value_at(Time::from_ns(40)), Logic::Zero);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn stimulus_rejects_unsorted() {
        let _ = Stimulus::bits([(Time::from_ns(10), true), (Time::ZERO, false)]);
    }

    #[test]
    fn const_vector_drives_value() {
        let mut net = Netlist::new();
        let v = net.signal("v", 8);
        net.add(
            "c",
            ConstVector::new(LogicVector::from_u64(0xA5, 8)),
            &[],
            &[v],
        );
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(1)).unwrap();
        assert_eq!(sim.value(v).to_u64(), Some(0xA5));
    }
}
