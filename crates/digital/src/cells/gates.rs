//! Combinational gates with configurable propagation delay.

use crate::component::{Component, EvalContext};
use crate::netlist::PortSpec;
use crate::word::{WordComponent, WordEvalContext};
use amsfi_waves::{Logic, LogicPlanes, Time};

/// Word-parallel form of the n-ary gates: the same fold, one plane
/// operation per input instead of one [`Logic`] operation per input *per
/// lane*. Stateless, so any two lanes always compare equal.
#[derive(Debug)]
struct WordNaryGate {
    inputs: usize,
    delay: Time,
    fold: fn(LogicPlanes, LogicPlanes) -> LogicPlanes,
    invert: bool,
}

impl WordComponent for WordNaryGate {
    fn eval(&mut self, ctx: &mut WordEvalContext<'_>) {
        let mut acc = ctx.input_bit(0);
        for i in 1..self.inputs {
            acc = (self.fold)(acc, ctx.input_bit(i));
        }
        if self.invert {
            acc = acc.not();
        }
        ctx.drive_bit(0, acc, self.delay);
    }

    fn lanes_equal(&self, _a: usize, _b: usize) -> bool {
        true
    }
}

macro_rules! nary_gate {
    ($(#[$doc:meta])* $name:ident, $fold:expr, $plane_fold:expr, $invert:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            inputs: usize,
            delay: Time,
        }

        impl $name {
            /// Creates a gate with `inputs` scalar inputs and the given
            /// propagation delay.
            ///
            /// # Panics
            ///
            /// Panics if `inputs` is zero.
            pub fn new(inputs: usize, delay: Time) -> Self {
                assert!(inputs > 0, "gate needs at least one input");
                Self { inputs, delay }
            }
        }

        impl Component for $name {
            fn eval(&mut self, ctx: &mut EvalContext<'_>) {
                let mut acc = ctx.input_bit(0);
                for i in 1..self.inputs {
                    acc = $fold(acc, ctx.input_bit(i));
                }
                if $invert {
                    acc = !acc;
                }
                ctx.drive_bit(0, acc, self.delay);
            }

            fn port_spec(&self) -> PortSpec {
                PortSpec {
                    inputs: (0..self.inputs).map(|i| (format!("in{i}"), 1)).collect(),
                    outputs: vec![("out".to_owned(), 1)],
                }
            }

            fn word_component(&self) -> Option<Box<dyn WordComponent>> {
                Some(Box::new(WordNaryGate {
                    inputs: self.inputs,
                    delay: self.delay,
                    fold: $plane_fold,
                    invert: $invert,
                }))
            }
        }
    };
}

nary_gate!(
    /// N-input AND gate.
    And,
    |a: Logic, b: Logic| a & b,
    |a: LogicPlanes, b: LogicPlanes| a.and(b),
    false
);
nary_gate!(
    /// N-input OR gate.
    Or,
    |a: Logic, b: Logic| a | b,
    |a: LogicPlanes, b: LogicPlanes| a.or(b),
    false
);
nary_gate!(
    /// N-input NAND gate.
    Nand,
    |a: Logic, b: Logic| a & b,
    |a: LogicPlanes, b: LogicPlanes| a.and(b),
    true
);
nary_gate!(
    /// N-input NOR gate.
    Nor,
    |a: Logic, b: Logic| a | b,
    |a: LogicPlanes, b: LogicPlanes| a.or(b),
    true
);
nary_gate!(
    /// N-input XOR gate (odd parity).
    Xor,
    |a: Logic, b: Logic| a ^ b,
    |a: LogicPlanes, b: LogicPlanes| a.xor(b),
    false
);
nary_gate!(
    /// N-input XNOR gate (even parity).
    Xnor,
    |a: Logic, b: Logic| a ^ b,
    |a: LogicPlanes, b: LogicPlanes| a.xor(b),
    true
);

/// Inverter.
#[derive(Debug, Clone)]
pub struct Not {
    delay: Time,
}

impl Not {
    /// Creates an inverter with the given propagation delay.
    pub fn new(delay: Time) -> Self {
        Not { delay }
    }
}

impl Component for Not {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let v = !ctx.input_bit(0);
        ctx.drive_bit(0, v, self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("in", 1)], &[("out", 1)])
    }

    fn word_component(&self) -> Option<Box<dyn WordComponent>> {
        Some(Box::new(WordNot { delay: self.delay }))
    }
}

/// Word-parallel inverter: one plane negation covers all lanes.
#[derive(Debug)]
struct WordNot {
    delay: Time,
}

impl WordComponent for WordNot {
    fn eval(&mut self, ctx: &mut WordEvalContext<'_>) {
        let v = ctx.input_bit(0).not();
        ctx.drive_bit(0, v, self.delay);
    }

    fn lanes_equal(&self, _a: usize, _b: usize) -> bool {
        true
    }
}

/// Non-inverting buffer (also useful to model a wire delay).
#[derive(Debug, Clone)]
pub struct Buf {
    width: usize,
    delay: Time,
}

impl Buf {
    /// Creates a buffer of the given bus width and propagation delay.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize, delay: Time) -> Self {
        assert!(width > 0, "buffer width must be nonzero");
        Buf { width, delay }
    }
}

impl Component for Buf {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let v = ctx.input(0).clone();
        ctx.drive(0, v, self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("in", self.width)], &[("out", self.width)])
    }

    fn word_component(&self) -> Option<Box<dyn WordComponent>> {
        Some(Box::new(WordBuf { delay: self.delay }))
    }
}

/// Word-parallel buffer: forwards the input planes unchanged.
#[derive(Debug)]
struct WordBuf {
    delay: Time,
}

impl WordComponent for WordBuf {
    fn eval(&mut self, ctx: &mut WordEvalContext<'_>) {
        let v = ctx.input(0).to_vec();
        ctx.drive(0, v, self.delay);
    }

    fn lanes_equal(&self, _a: usize, _b: usize) -> bool {
        true
    }
}

/// Two-way multiplexer over buses: `y = if sel then b else a`.
///
/// A metalogical select propagates `X` on every output bit.
#[derive(Debug, Clone)]
pub struct Mux2 {
    width: usize,
    delay: Time,
}

impl Mux2 {
    /// Creates a mux of the given bus width and propagation delay.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize, delay: Time) -> Self {
        assert!(width > 0, "mux width must be nonzero");
        Mux2 { width, delay }
    }
}

impl Component for Mux2 {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let out = match ctx.input_bit(0).to_bool() {
            Some(false) => ctx.input(1).clone(),
            Some(true) => ctx.input(2).clone(),
            None => amsfi_waves::LogicVector::filled(Logic::Unknown, self.width),
        };
        ctx.drive(0, out, self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(
            &[("sel", 1), ("a", self.width), ("b", self.width)],
            &[("y", self.width)],
        )
    }

    fn word_component(&self) -> Option<Box<dyn WordComponent>> {
        Some(Box::new(WordMux2 {
            width: self.width,
            delay: self.delay,
        }))
    }
}

/// Word-parallel mux: lane classes of the select (low / high / metalogical)
/// become three masks merged per output bit — the plane analogue of the
/// scalar `to_bool` three-way match.
#[derive(Debug)]
struct WordMux2 {
    width: usize,
    delay: Time,
}

impl WordComponent for WordMux2 {
    fn eval(&mut self, ctx: &mut WordEvalContext<'_>) {
        let sel = ctx.input_bit(0);
        let low = sel.is_low_mask();
        let high = sel.is_high_mask();
        let mut out = Vec::with_capacity(self.width);
        for bit in 0..self.width {
            let v = LogicPlanes::splat(Logic::Unknown)
                .select(low, ctx.input(1)[bit])
                .select(high, ctx.input(2)[bit]);
            out.push(v);
        }
        ctx.drive(0, out, self.delay);
    }

    fn lanes_equal(&self, _a: usize, _b: usize) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Netlist, Simulator};
    use amsfi_waves::LogicVector;

    /// Drives a fixed scalar at time zero (test helper).
    #[derive(Debug, Clone)]
    pub(crate) struct Const(pub Logic);

    impl Component for Const {
        fn eval(&mut self, ctx: &mut EvalContext<'_>) {
            ctx.drive_bit(0, self.0, Time::ZERO);
        }
    }

    fn two_input_truth(gate: impl Component + 'static, table: [(Logic, Logic, Logic); 4]) {
        for (a, b, expect) in table {
            let mut net = Netlist::new();
            let sa = net.signal("a", 1);
            let sb = net.signal("b", 1);
            let sy = net.signal("y", 1);
            net.add("ca", Const(a), &[], &[sa]);
            net.add("cb", Const(b), &[], &[sb]);
            net.add_boxed("g", gate.clone_box(), &[sa, sb], &[sy]);
            let mut sim = Simulator::new(net);
            sim.run_until(Time::from_ns(1)).unwrap();
            assert_eq!(
                sim.value(sy)[0],
                expect,
                "gate({a}, {b}) should be {expect}"
            );
        }
    }

    use Logic::{One as I, Zero as O};

    #[test]
    fn and_truth_table() {
        two_input_truth(
            And::new(2, Time::ZERO),
            [(O, O, O), (O, I, O), (I, O, O), (I, I, I)],
        );
    }

    #[test]
    fn nand_truth_table() {
        two_input_truth(
            Nand::new(2, Time::ZERO),
            [(O, O, I), (O, I, I), (I, O, I), (I, I, O)],
        );
    }

    #[test]
    fn or_nor_xor_xnor_tables() {
        two_input_truth(
            Or::new(2, Time::ZERO),
            [(O, O, O), (O, I, I), (I, O, I), (I, I, I)],
        );
        two_input_truth(
            Nor::new(2, Time::ZERO),
            [(O, O, I), (O, I, O), (I, O, O), (I, I, O)],
        );
        two_input_truth(
            Xor::new(2, Time::ZERO),
            [(O, O, O), (O, I, I), (I, O, I), (I, I, O)],
        );
        two_input_truth(
            Xnor::new(2, Time::ZERO),
            [(O, O, I), (O, I, O), (I, O, O), (I, I, I)],
        );
    }

    #[test]
    fn three_input_and() {
        let mut net = Netlist::new();
        let a = net.signal("a", 1);
        let b = net.signal("b", 1);
        let c = net.signal("c", 1);
        let y = net.signal("y", 1);
        net.add("ca", Const(I), &[], &[a]);
        net.add("cb", Const(I), &[], &[b]);
        net.add("cc", Const(O), &[], &[c]);
        net.add("g", And::new(3, Time::ZERO), &[a, b, c], &[y]);
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(1)).unwrap();
        assert_eq!(sim.value(y)[0], O);
    }

    #[test]
    fn mux_selects_and_x_propagates() {
        for (sel, expect) in [(O, 0b01u64), (I, 0b10u64)] {
            let mut net = Netlist::new();
            let ssel = net.signal("sel", 1);
            let sa = net.signal("a", 2);
            let sb = net.signal("b", 2);
            let sy = net.signal("y", 2);
            net.add("cs", Const(sel), &[], &[ssel]);
            net.add(
                "ca",
                super::super::sources::ConstVector::new(LogicVector::from_u64(0b01, 2)),
                &[],
                &[sa],
            );
            net.add(
                "cb",
                super::super::sources::ConstVector::new(LogicVector::from_u64(0b10, 2)),
                &[],
                &[sb],
            );
            net.add("m", Mux2::new(2, Time::ZERO), &[ssel, sa, sb], &[sy]);
            let mut sim = Simulator::new(net);
            sim.run_until(Time::from_ns(1)).unwrap();
            assert_eq!(sim.value(sy).to_u64(), Some(expect));
        }
    }

    #[test]
    #[should_panic(expected = "expects width")]
    fn port_spec_catches_width_mismatch() {
        let mut net = Netlist::new();
        let a = net.signal("a", 2); // wrong: Not expects width 1
        let y = net.signal("y", 1);
        net.add("n", Not::new(Time::ZERO), &[a], &[y]);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn port_spec_catches_arity_mismatch() {
        let mut net = Netlist::new();
        let a = net.signal("a", 1);
        let y = net.signal("y", 1);
        net.add("g", And::new(2, Time::ZERO), &[a], &[y]);
    }
}
