//! Property-based tests for the digital simulator: determinism, saboteur
//! transparency, adder correctness on random operands.

use amsfi_digital::{cells, DigitalSaboteur, Netlist, Simulator};
use amsfi_waves::{Logic, LogicVector, Time};
use proptest::prelude::*;

fn counter_bench(period_ns: i64) -> (Netlist, amsfi_digital::ComponentId) {
    let mut net = Netlist::new();
    let clk = net.signal("clk", 1);
    let rst = net.signal("rst", 1);
    let en = net.signal("en", 1);
    let q = net.signal("q", 8);
    net.add(
        "ck",
        cells::ClockGen::new(Time::from_ns(period_ns)),
        &[],
        &[clk],
    );
    net.add("r", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
    net.add("e", cells::ConstVector::bit(Logic::One), &[], &[en]);
    let ctr = net.add(
        "ctr",
        cells::Counter::new(8, Time::ZERO),
        &[clk, rst, en],
        &[q],
    );
    (net, ctr)
}

proptest! {
    #[test]
    fn adder_matches_integer_addition(a in any::<u32>(), b in any::<u32>(), cin in any::<bool>()) {
        let w = 32usize;
        let mut net = Netlist::new();
        let sa = net.signal("a", w);
        let sb = net.signal("b", w);
        let sc = net.signal("cin", 1);
        let ss = net.signal("sum", w);
        let sco = net.signal("cout", 1);
        net.add("ca", cells::ConstVector::new(LogicVector::from_u64(a as u64, w)), &[], &[sa]);
        net.add("cb", cells::ConstVector::new(LogicVector::from_u64(b as u64, w)), &[], &[sb]);
        net.add("cc", cells::ConstVector::bit(Logic::from_bool(cin)), &[], &[sc]);
        net.add("add", cells::Adder::new(w, Time::ZERO), &[sa, sb, sc], &[ss, sco]);
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(1)).unwrap();
        let full = a as u64 + b as u64 + cin as u64;
        prop_assert_eq!(sim.value(ss).to_u64(), Some(full & 0xFFFF_FFFF));
        prop_assert_eq!(sim.value(sco)[0], Logic::from_bool(full >> 32 == 1));
    }

    #[test]
    fn counter_value_matches_edge_count(period_ns in 2i64..100, run_cycles in 1i64..60) {
        let mut sim = Simulator::new(counter_bench(period_ns).0);
        let t_end = Time::from_ns(period_ns * run_cycles);
        sim.run_until(t_end).unwrap();
        // Edges at period/2 + k*period that are <= t_end.
        let half = Time::from_ns(period_ns) / 2;
        let edges = if t_end < half {
            0
        } else {
            (t_end - half) / Time::from_ns(period_ns) + 1
        };
        let q = sim.signal_id("q").unwrap();
        prop_assert_eq!(sim.value(q).to_u64(), Some((edges as u64) & 0xFF));
    }

    #[test]
    fn cloned_simulator_reproduces_identical_run(period_ns in 2i64..50, split_ns in 1i64..500) {
        // Determinism: clone mid-run, finish both, traces must be identical.
        let mut sim = Simulator::new(counter_bench(period_ns).0);
        sim.monitor_name("q");
        sim.run_until(Time::from_ns(split_ns)).unwrap();
        let mut clone = sim.clone();
        sim.run_until(Time::from_us(1)).unwrap();
        clone.run_until(Time::from_us(1)).unwrap();
        prop_assert_eq!(sim.trace(), clone.trace());
    }

    #[test]
    fn transparent_saboteur_preserves_behaviour(period_ns in 2i64..50) {
        let plain = {
            let mut sim = Simulator::new(counter_bench(period_ns).0);
            sim.monitor_name("q");
            sim.run_until(Time::from_us(1)).unwrap();
            sim.into_trace()
        };
        let instrumented = {
            let mut net = counter_bench(period_ns).0;
            let clk = net.signal_id("clk").unwrap();
            net.insert_saboteur(clk, Box::new(DigitalSaboteur::new(1)));
            let mut sim = Simulator::new(net);
            sim.monitor_name("q");
            sim.run_until(Time::from_us(1)).unwrap();
            sim.into_trace()
        };
        // The counter output is bit-identical with and without the saboteur.
        for bit in 0..8 {
            let name = format!("q[{bit}]");
            prop_assert_eq!(plain.digital(&name), instrumented.digital(&name));
        }
    }

    #[test]
    fn seu_flip_then_flip_back_restores_counter(flip_bit in 0usize..8) {
        let (net, ctr) = counter_bench(10);
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(101)).unwrap();
        let before = sim.state_value(ctr).unwrap();
        sim.flip_state(ctr, flip_bit);
        sim.run_until(Time::from_ns(102)).unwrap();
        prop_assert_eq!(sim.state_value(ctr), Some(before ^ (1 << flip_bit)));
        sim.flip_state(ctr, flip_bit);
        sim.run_until(Time::from_ns(103)).unwrap();
        prop_assert_eq!(sim.state_value(ctr), Some(before));
    }
}
