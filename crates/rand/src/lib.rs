//! A self-contained, deterministic pseudo-random number generator exposing
//! the small subset of the `rand` crate API this workspace uses
//! ([`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`RngExt::random_range`]).
//!
//! The build environment has no access to crates.io, so the workspace
//! aliases `rand` to this crate (see `[workspace.dependencies]`). The
//! generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! fast, and reproducible across platforms, which is all the campaign
//! planners need. It makes no cryptographic claims.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers, mirroring the `rand 0.10` `Rng`/`RngExt` surface.
pub trait RngExt: RngCore {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore> RngExt for R {}

/// A range that knows how to draw a uniform sample of `T` from an [`RngCore`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Multiply-shift reduction of a `u64` into `[0, n)` (Lemire). The bias for
/// the campaign-sized `n` used here is below 2^-32 and is acceptable for a
/// deterministic simulation workload.
fn below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(i64, u64, i32, u32, usize, u8, u16);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (the construction recommended by its authors).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1_000 {
            let i = rng.random_range(10i64..20);
            assert!((10..20).contains(&i));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
            let f = rng.random_range(-1.5f64..=2.5);
            assert!((-1.5..=2.5).contains(&f));
        }
    }

    #[test]
    fn integer_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn negative_integer_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let v = rng.random_range(-50i64..-10);
            assert!((-50..-10).contains(&v));
        }
    }
}
