//! Property-based tests for the waveform and logic primitives.

use amsfi_waves::{
    baseline, compare_analog, compare_digital_with_skew, measure, AnalogStream, AnalogWave,
    DigitalStream, DigitalWave, Logic, LogicVector, Time, Tolerance,
};
use proptest::prelude::*;

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop::sample::select(Logic::ALL.to_vec())
}

fn arb_time() -> impl Strategy<Value = Time> {
    (0i64..=1_000_000_000_000).prop_map(Time::from_fs)
}

proptest! {
    #[test]
    fn resolution_commutative(a in arb_logic(), b in arb_logic()) {
        prop_assert_eq!(a.resolve(b), b.resolve(a));
    }

    #[test]
    fn resolution_idempotent(a in arb_logic()) {
        // IEEE 1164 resolves '-' with '-' to 'X'; all other values are
        // idempotent under resolution.
        if a == Logic::DontCare {
            prop_assert_eq!(a.resolve(a), Logic::Unknown);
        } else {
            prop_assert_eq!(a.resolve(a), a);
        }
    }

    #[test]
    fn highz_is_resolution_identity_for_drivers(a in arb_logic()) {
        // '-' is the only value Z does not pass through unchanged (it becomes X).
        if a != Logic::DontCare {
            prop_assert_eq!(Logic::HighZ.resolve(a), a);
        }
    }

    #[test]
    fn double_flip_restores_binary_values(a in arb_logic()) {
        if a.to_bool().is_some() {
            prop_assert_eq!(a.flipped().flipped().to_x01(), a.to_x01());
        } else {
            prop_assert_eq!(a.flipped(), a);
        }
    }

    #[test]
    fn de_morgan_on_x01(a in arb_logic(), b in arb_logic()) {
        prop_assert_eq!(!(a & b), (!a) | (!b));
        prop_assert_eq!(!(a | b), (!a) & (!b));
    }

    #[test]
    fn vector_u64_round_trip(value in any::<u64>(), width in 1usize..=64) {
        let masked = if width == 64 { value } else { value & ((1u64 << width) - 1) };
        let v = LogicVector::from_u64(masked, width);
        prop_assert_eq!(v.to_u64(), Some(masked));
        prop_assert_eq!(v.width(), width);
    }

    #[test]
    fn vector_display_parse_round_trip(value in any::<u64>(), width in 1usize..=32) {
        let masked = value & ((1u64 << width) - 1);
        let v = LogicVector::from_u64(masked, width);
        let parsed: LogicVector = v.to_string().parse().unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn vector_flip_changes_hamming_by_one(value in any::<u64>(), width in 1usize..=32, bit in 0usize..32) {
        prop_assume!(bit < width);
        let masked = value & ((1u64 << width) - 1);
        let v = LogicVector::from_u64(masked, width);
        let mut w = v.clone();
        w.flip_bit(bit);
        prop_assert_eq!(v.hamming_distance(&w), 1);
    }

    #[test]
    fn digital_value_at_is_last_transition(
        times in prop::collection::vec(arb_time(), 1..20),
        values in prop::collection::vec(arb_logic(), 20),
    ) {
        let mut sorted = times.clone();
        sorted.sort();
        sorted.dedup();
        let mut w = DigitalWave::new();
        let mut expected: Vec<(Time, Logic)> = Vec::new();
        for (i, &t) in sorted.iter().enumerate() {
            let v = values[i % values.len()];
            w.push(t, v).unwrap();
            expected.push((t, v));
        }
        // At every recorded time, the waveform returns that value.
        for &(t, v) in &expected {
            prop_assert_eq!(w.value_at(t).to_x01(), v.to_x01());
        }
        // Before the first transition the value is 'U'.
        if expected[0].0 > Time::ZERO {
            prop_assert_eq!(w.value_at(expected[0].0 - Time::RESOLUTION), Logic::Uninitialized);
        }
    }

    #[test]
    fn analog_interpolation_is_bounded_by_neighbours(
        v0 in -10.0f64..10.0, v1 in -10.0f64..10.0, frac in 0.0f64..=1.0
    ) {
        let t1 = Time::from_ns(100);
        let w = AnalogWave::from_samples([(Time::ZERO, v0), (t1, v1)]);
        let t = Time::from_fs((t1.as_fs() as f64 * frac) as i64);
        let v = w.value_at(t);
        let (lo, hi) = (v0.min(v1), v0.max(v1));
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "v = {v}, bounds [{lo}, {hi}]");
    }

    #[test]
    fn crossings_alternate_direction(samples in prop::collection::vec(-5.0f64..5.0, 2..40)) {
        let w: AnalogWave = samples
            .iter()
            .enumerate()
            .map(|(i, &v)| (Time::from_ns(i as i64 * 10), v))
            .collect();
        let crossings = measure::crossings(&w, 0.0);
        for pair in crossings.windows(2) {
            prop_assert_ne!(pair[0].direction, pair[1].direction);
        }
    }

    #[test]
    fn deviation_of_wave_with_itself_is_zero(samples in prop::collection::vec(-5.0f64..5.0, 2..20)) {
        let w: AnalogWave = samples
            .iter()
            .enumerate()
            .map(|(i, &v)| (Time::from_ns(i as i64 * 10), v))
            .collect();
        let end = w.end_time().unwrap();
        let d = measure::deviation(&w, &w, Time::ZERO, end, 1e-12);
        prop_assert_eq!(d.peak, 0.0);
        prop_assert_eq!(d.onset, None);
    }

    #[test]
    fn streaming_digital_compare_equals_baseline(
        g_times in prop::collection::vec(0i64..2_000, 1..30),
        f_times in prop::collection::vec(0i64..2_000, 1..30),
        g_vals in prop::collection::vec(arb_logic(), 30),
        f_vals in prop::collection::vec(arb_logic(), 30),
        from_ns in 0i64..500,
        span_ns in 0i64..2_000,
        gap_ns in 0i64..50,
        skew_ns in 0i64..10,
        cuts in prop::collection::vec(0i64..2_500, 0..6),
    ) {
        let build = |times: &[i64], vals: &[Logic]| {
            let mut sorted = times.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            let mut w = DigitalWave::new();
            for (i, &t) in sorted.iter().enumerate() {
                w.push(Time::from_ns(t), vals[i % vals.len()]).unwrap();
            }
            w
        };
        let g = build(&g_times, &g_vals);
        let f = build(&f_times, &f_vals);
        let (from, to) = (Time::from_ns(from_ns), Time::from_ns(from_ns + span_ns));
        let gap = Time::from_ns(gap_ns);
        let skew = Time::from_ns(skew_ns);
        let base = baseline::compare_digital_with_skew(&g, &f, from, to, gap, skew);
        // One-shot streaming path (the production compare function).
        prop_assert_eq!(&compare_digital_with_skew(&g, &f, from, to, gap, skew), &base);
        // Chunked streaming with arbitrary (sorted) finality bounds.
        let mut s = DigitalStream::new(from, to, gap, skew);
        let mut bounds = cuts.clone();
        bounds.sort_unstable();
        for b in bounds {
            s.advance(&g, &f, Time::from_ns(b));
        }
        prop_assert_eq!(&s.finish(&g, &f), &base);
    }

    #[test]
    fn streaming_analog_compare_equals_baseline(
        g_samples in prop::collection::vec((0i64..2_000, -5.0f64..5.0), 1..30),
        f_samples in prop::collection::vec((0i64..2_000, -5.0f64..5.0), 1..30),
        from_ns in 0i64..500,
        span_ns in 0i64..2_000,
        gap_ns in 0i64..50,
        abs_tol in 0.0f64..2.0,
        cuts in prop::collection::vec(0i64..2_500, 0..6),
    ) {
        let build = |samples: &[(i64, f64)]| {
            let mut sorted = samples.to_vec();
            sorted.sort_unstable_by_key(|&(t, _)| t);
            sorted.dedup_by_key(|&mut (t, _)| t);
            AnalogWave::from_samples(sorted.iter().map(|&(t, v)| (Time::from_ns(t), v)))
        };
        let g = build(&g_samples);
        let f = build(&f_samples);
        let (from, to) = (Time::from_ns(from_ns), Time::from_ns(from_ns + span_ns));
        let gap = Time::from_ns(gap_ns);
        let tol = Tolerance::absolute(abs_tol);
        let base = baseline::compare_analog(&g, &f, from, to, tol, gap);
        prop_assert_eq!(&compare_analog(&g, &f, from, to, tol, gap), &base);
        let mut s = AnalogStream::new(from, to, tol, gap);
        let mut bounds = cuts.clone();
        bounds.sort_unstable();
        for b in bounds {
            s.advance(&g, &f, Time::from_ns(b));
        }
        prop_assert_eq!(&s.finish(&g, &f), &base);
    }

    #[test]
    fn time_display_round_trips_through_seconds(fs in 0i64..=1_000_000_000_000_000) {
        let t = Time::from_fs(fs);
        let back = Time::from_secs_f64(t.as_secs_f64());
        // f64 has 52 mantissa bits; round trip is exact to ~128 fs at 0.5 s.
        prop_assert!((back - t).abs() <= Time::from_fs(256));
    }
}
