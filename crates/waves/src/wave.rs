//! Recorded waveforms: the traces produced by fault-injection runs.
//!
//! Two kinds of quantity are traced, matching the two halves of the flow:
//!
//! * [`DigitalWave`] — a piecewise-constant sequence of [`Logic`] transitions
//!   (what a VHDL simulator would write to a VCD file);
//! * [`AnalogWave`] — a sampled real-valued quantity, interpreted with linear
//!   interpolation between samples (what a mixed-mode simulator plots).

use crate::{Logic, Time};
use std::fmt;

/// Error returned when a sample is appended out of time order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushOutOfOrderError {
    last: Time,
    attempted: Time,
}

impl fmt::Display for PushOutOfOrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sample at {} pushed after sample at {}",
            self.attempted, self.last
        )
    }
}

impl std::error::Error for PushOutOfOrderError {}

/// A piecewise-constant logic waveform: a list of `(time, new value)`
/// transitions sorted by time.
///
/// # Examples
///
/// ```
/// use amsfi_waves::{DigitalWave, Logic, Time};
///
/// let mut w = DigitalWave::new();
/// w.push(Time::ZERO, Logic::Zero)?;
/// w.push(Time::from_ns(10), Logic::One)?;
/// assert_eq!(w.value_at(Time::from_ns(5)), Logic::Zero);
/// assert_eq!(w.value_at(Time::from_ns(10)), Logic::One);
/// # Ok::<(), amsfi_waves::PushOutOfOrderError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DigitalWave {
    transitions: Vec<(Time, Logic)>,
}

impl DigitalWave {
    /// An empty waveform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a transition. Transitions at the same time overwrite the
    /// previous value (the last delta cycle wins); redundant transitions to
    /// the current value are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`PushOutOfOrderError`] if `time` is earlier than the last
    /// recorded transition.
    pub fn push(&mut self, time: Time, value: Logic) -> Result<(), PushOutOfOrderError> {
        if let Some(&mut (last, ref mut v)) = self.transitions.last_mut() {
            if time < last {
                return Err(PushOutOfOrderError {
                    last,
                    attempted: time,
                });
            }
            if time == last {
                *v = value;
                return Ok(());
            }
            if *v == value {
                return Ok(());
            }
        }
        self.transitions.push((time, value));
        Ok(())
    }

    /// The value at `time`: the value of the latest transition not later
    /// than `time`, or `'U'` before the first transition.
    pub fn value_at(&self, time: Time) -> Logic {
        match self.transitions.partition_point(|&(t, _)| t <= time) {
            0 => Logic::Uninitialized,
            n => self.transitions[n - 1].1,
        }
    }

    /// The recorded transitions, sorted by time.
    pub fn transitions(&self) -> &[(Time, Logic)] {
        &self.transitions
    }

    /// The number of recorded transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True if no transition has been recorded.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// The time of the last transition, if any.
    pub fn end_time(&self) -> Option<Time> {
        self.transitions.last().map(|&(t, _)| t)
    }

    /// Times of transitions to `'1'`/`'H'` from a non-high value.
    pub fn rising_edges(&self) -> Vec<Time> {
        self.edges(true)
    }

    /// Times of transitions to `'0'`/`'L'` from a non-low value.
    pub fn falling_edges(&self) -> Vec<Time> {
        self.edges(false)
    }

    fn edges(&self, rising: bool) -> Vec<Time> {
        let mut prev = Logic::Uninitialized;
        let mut out = Vec::new();
        for &(t, v) in &self.transitions {
            let is_edge = if rising {
                v.is_high() && !prev.is_high()
            } else {
                v.is_low() && !prev.is_low()
            };
            if is_edge {
                out.push(t);
            }
            prev = v;
        }
        out
    }
}

/// A sampled real-valued waveform with linear interpolation.
///
/// Samples must be pushed in non-decreasing time order; duplicate times
/// overwrite (supporting discontinuities is not needed for behavioural
/// quantities, which are continuous).
///
/// # Examples
///
/// ```
/// use amsfi_waves::{AnalogWave, Time};
///
/// let mut w = AnalogWave::new();
/// w.push(Time::ZERO, 0.0)?;
/// w.push(Time::from_ns(10), 1.0)?;
/// assert_eq!(w.value_at(Time::from_ns(5)), 0.5);
/// # Ok::<(), amsfi_waves::PushOutOfOrderError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalogWave {
    samples: Vec<(Time, f64)>,
}

impl AnalogWave {
    /// An empty waveform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a waveform from `(time, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the pairs are not sorted by non-decreasing time.
    pub fn from_samples<I: IntoIterator<Item = (Time, f64)>>(samples: I) -> Self {
        let mut w = AnalogWave::new();
        for (t, v) in samples {
            w.push(t, v).expect("samples must be sorted by time");
        }
        w
    }

    /// Appends a sample.
    ///
    /// # Errors
    ///
    /// Returns [`PushOutOfOrderError`] if `time` is earlier than the last
    /// recorded sample.
    pub fn push(&mut self, time: Time, value: f64) -> Result<(), PushOutOfOrderError> {
        if let Some(&mut (last, ref mut v)) = self.samples.last_mut() {
            if time < last {
                return Err(PushOutOfOrderError {
                    last,
                    attempted: time,
                });
            }
            if time == last {
                *v = value;
                return Ok(());
            }
        }
        self.samples.push((time, value));
        Ok(())
    }

    /// The linearly interpolated value at `time`. Before the first sample the
    /// first value is held; after the last, the last value.
    ///
    /// Returns `0.0` for an empty waveform.
    pub fn value_at(&self, time: Time) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let n = self.samples.partition_point(|&(t, _)| t <= time);
        if n == 0 {
            return self.samples[0].1;
        }
        if n == self.samples.len() {
            return self.samples[n - 1].1;
        }
        let (t0, v0) = self.samples[n - 1];
        let (t1, v1) = self.samples[n];
        let frac = (time - t0).as_fs() as f64 / (t1 - t0).as_fs() as f64;
        v0 + (v1 - v0) * frac
    }

    /// The recorded samples, sorted by time.
    pub fn samples(&self) -> &[(Time, f64)] {
        &self.samples
    }

    /// The number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The time of the last sample, if any.
    pub fn end_time(&self) -> Option<Time> {
        self.samples.last().map(|&(t, _)| t)
    }

    /// The minimum sampled value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().map(|&(_, v)| v).reduce(f64::min)
    }

    /// The maximum sampled value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().map(|&(_, v)| v).reduce(f64::max)
    }

    /// Restricts the waveform to `[from, to]`, adding interpolated boundary
    /// samples so the window's end-point values are preserved.
    #[must_use]
    pub fn window(&self, from: Time, to: Time) -> AnalogWave {
        let mut out = AnalogWave::new();
        if self.samples.is_empty() || from > to {
            return out;
        }
        out.push(from, self.value_at(from)).expect("from is first");
        for &(t, v) in &self.samples {
            if t > from && t < to {
                out.push(t, v).expect("samples are sorted");
            }
        }
        if to > from {
            out.push(to, self.value_at(to)).expect("to is last");
        }
        out
    }
}

impl FromIterator<(Time, f64)> for AnalogWave {
    /// # Panics
    ///
    /// Panics if the pairs are not sorted by non-decreasing time.
    fn from_iter<I: IntoIterator<Item = (Time, f64)>>(iter: I) -> Self {
        AnalogWave::from_samples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digital_holds_value_between_transitions() {
        let mut w = DigitalWave::new();
        w.push(Time::from_ns(1), Logic::Zero).unwrap();
        w.push(Time::from_ns(3), Logic::One).unwrap();
        assert_eq!(w.value_at(Time::ZERO), Logic::Uninitialized);
        assert_eq!(w.value_at(Time::from_ns(1)), Logic::Zero);
        assert_eq!(w.value_at(Time::from_ns(2)), Logic::Zero);
        assert_eq!(w.value_at(Time::from_ns(3)), Logic::One);
        assert_eq!(w.value_at(Time::from_ns(99)), Logic::One);
    }

    #[test]
    fn digital_rejects_out_of_order() {
        let mut w = DigitalWave::new();
        w.push(Time::from_ns(5), Logic::One).unwrap();
        let err = w.push(Time::from_ns(4), Logic::Zero).unwrap_err();
        assert!(err.to_string().contains("4 ns"));
    }

    #[test]
    fn digital_same_time_overwrites_and_redundant_dropped() {
        let mut w = DigitalWave::new();
        w.push(Time::ZERO, Logic::Zero).unwrap();
        w.push(Time::ZERO, Logic::One).unwrap(); // delta-cycle overwrite
        assert_eq!(w.len(), 1);
        assert_eq!(w.value_at(Time::ZERO), Logic::One);
        w.push(Time::from_ns(1), Logic::One).unwrap(); // redundant
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn digital_edge_detection() {
        let mut w = DigitalWave::new();
        for (t, v) in [
            (0, Logic::Zero),
            (10, Logic::One),
            (20, Logic::Zero),
            (30, Logic::One),
        ] {
            w.push(Time::from_ns(t), v).unwrap();
        }
        assert_eq!(w.rising_edges(), vec![Time::from_ns(10), Time::from_ns(30)]);
        assert_eq!(w.falling_edges(), vec![Time::from_ns(0), Time::from_ns(20)]);
    }

    #[test]
    fn rising_edge_from_uninitialized_counts() {
        let mut w = DigitalWave::new();
        w.push(Time::from_ns(7), Logic::One).unwrap();
        assert_eq!(w.rising_edges(), vec![Time::from_ns(7)]);
    }

    #[test]
    fn analog_interpolates_linearly() {
        let w = AnalogWave::from_samples([
            (Time::ZERO, 0.0),
            (Time::from_ns(10), 2.0),
            (Time::from_ns(20), 0.0),
        ]);
        assert_eq!(w.value_at(Time::from_ns(5)), 1.0);
        assert_eq!(w.value_at(Time::from_ns(15)), 1.0);
        assert_eq!(w.value_at(Time::from_ns(10)), 2.0);
    }

    #[test]
    fn analog_holds_ends() {
        let w = AnalogWave::from_samples([(Time::from_ns(5), 3.0), (Time::from_ns(6), 4.0)]);
        assert_eq!(w.value_at(Time::ZERO), 3.0);
        assert_eq!(w.value_at(Time::from_ns(100)), 4.0);
    }

    #[test]
    fn analog_empty_is_zero() {
        assert_eq!(AnalogWave::new().value_at(Time::from_ns(1)), 0.0);
    }

    #[test]
    fn analog_min_max() {
        let w = AnalogWave::from_samples([
            (Time::ZERO, 1.0),
            (Time::from_ns(1), -2.0),
            (Time::from_ns(2), 5.0),
        ]);
        assert_eq!(w.min(), Some(-2.0));
        assert_eq!(w.max(), Some(5.0));
    }

    #[test]
    fn analog_window_preserves_boundary_values() {
        let w = AnalogWave::from_samples([(Time::ZERO, 0.0), (Time::from_ns(10), 10.0)]);
        let cut = w.window(Time::from_ns(2), Time::from_ns(8));
        assert_eq!(cut.value_at(Time::from_ns(2)), 2.0);
        assert_eq!(cut.value_at(Time::from_ns(8)), 8.0);
        assert_eq!(cut.samples().first().unwrap().0, Time::from_ns(2));
        assert_eq!(cut.end_time(), Some(Time::from_ns(8)));
    }
}
