//! Simulation time with femtosecond resolution.
//!
//! The paper's case study spans eleven decades of time: current-pulse rise
//! times of 40 ps inside a 0.2 ms transient. An integer femtosecond base unit
//! keeps event ordering exact (no floating-point ties in the scheduler) while
//! leaving headroom: `i64` femtoseconds cover ±2.5 hours.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

/// A point in simulation time, or a duration, in femtoseconds.
///
/// `Time` is used both as an absolute instant (since simulation start) and as
/// a span between instants, mirroring VHDL's single `time` type.
///
/// # Examples
///
/// ```
/// use amsfi_waves::Time;
///
/// let period = Time::from_ns(20);
/// assert_eq!(period * 50, Time::from_us(1));
/// assert_eq!(period.as_secs_f64(), 20e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

impl Time {
    /// Zero time: the simulation origin.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: Time = Time(i64::MAX);
    /// One femtosecond, the base resolution.
    pub const RESOLUTION: Time = Time(1);

    /// Creates a time from femtoseconds.
    pub const fn from_fs(fs: i64) -> Self {
        Time(fs)
    }

    /// Creates a time from picoseconds.
    pub const fn from_ps(ps: i64) -> Self {
        Time(ps * 1_000)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: i64) -> Self {
        Time(ns * 1_000_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: i64) -> Self {
        Time(us * 1_000_000_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: i64) -> Self {
        Time(ms * 1_000_000_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_s(s: i64) -> Self {
        Time(s * 1_000_000_000_000_000)
    }

    /// Creates a time from a floating-point number of seconds, rounding to
    /// the nearest femtosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not finite or does not fit in the representable
    /// range.
    pub fn from_secs_f64(secs: f64) -> Self {
        let fs = secs * 1e15;
        assert!(
            fs.is_finite() && fs >= i64::MIN as f64 && fs <= i64::MAX as f64,
            "time out of range: {secs} s"
        );
        Time(fs.round() as i64)
    }

    /// The raw femtosecond count.
    pub const fn as_fs(self) -> i64 {
        self.0
    }

    /// This time as a floating-point number of seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-15
    }

    /// This time as a floating-point number of picoseconds.
    pub fn as_ps_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// This time as a floating-point number of nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Saturating addition; clamps at [`Time::MAX`].
    #[must_use]
    pub fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Absolute value of a (possibly negative) duration.
    #[must_use]
    pub fn abs(self) -> Time {
        Time(self.0.abs())
    }

    /// The smaller of two times.
    #[must_use]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two times.
    #[must_use]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// True if this is a zero (or negative) duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Neg for Time {
    type Output = Time;
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Mul<i64> for Time {
    type Output = Time;
    fn mul(self, rhs: i64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for i64 {
    type Output = Time;
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<i64> for Time {
    type Output = Time;
    fn div(self, rhs: i64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Div<Time> for Time {
    /// Ratio of two durations (truncating).
    type Output = i64;
    fn div(self, rhs: Time) -> i64 {
        self.0 / rhs.0
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    /// Formats with the largest unit that yields an integral mantissa part,
    /// e.g. `20 ns`, `170 us`, `500 ps`, `1.5 ns`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fs = self.0;
        let (value, unit) = if fs == 0 {
            return write!(f, "0 s");
        } else if fs.abs() >= 1_000_000_000_000_000 {
            (fs as f64 / 1e15, "s")
        } else if fs.abs() >= 1_000_000_000_000 {
            (fs as f64 / 1e12, "ms")
        } else if fs.abs() >= 1_000_000_000 {
            (fs as f64 / 1e9, "us")
        } else if fs.abs() >= 1_000_000 {
            (fs as f64 / 1e6, "ns")
        } else if fs.abs() >= 1_000 {
            (fs as f64 / 1e3, "ps")
        } else {
            (fs as f64, "fs")
        };
        if value.fract() == 0.0 {
            write!(f, "{} {}", value as i64, unit)
        } else {
            write!(f, "{value} {unit}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_scale_correctly() {
        assert_eq!(Time::from_ps(1).as_fs(), 1_000);
        assert_eq!(Time::from_ns(1).as_fs(), 1_000_000);
        assert_eq!(Time::from_us(1).as_fs(), 1_000_000_000);
        assert_eq!(Time::from_ms(1).as_fs(), 1_000_000_000_000);
        assert_eq!(Time::from_s(1).as_fs(), 1_000_000_000_000_000);
    }

    #[test]
    fn float_round_trip() {
        let t = Time::from_secs_f64(0.17e-3);
        assert_eq!(t, Time::from_us(170));
        assert!((t.as_secs_f64() - 0.17e-3).abs() < 1e-20);
    }

    #[test]
    fn paper_case_study_times_fit() {
        // 0.2 ms transient with 40 ps rise times: both representable exactly.
        let transient = Time::from_ms(1) / 5;
        assert_eq!(transient, Time::from_us(200));
        let rise = Time::from_ps(40);
        assert_eq!(transient % rise, Time::ZERO);
    }

    #[test]
    fn arithmetic_and_comparison() {
        let a = Time::from_ns(20);
        let b = Time::from_ns(5);
        assert_eq!(a + b, Time::from_ns(25));
        assert_eq!(a - b, Time::from_ns(15));
        assert_eq!(a * 3, Time::from_ns(60));
        assert_eq!(a / 4, Time::from_ns(5));
        assert_eq!(a / b, 4);
        assert!(b < a);
        assert_eq!((-b).abs(), b);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(Time::MAX.saturating_add(Time::from_ns(1)), Time::MAX);
    }

    #[test]
    fn display_picks_natural_units() {
        assert_eq!(Time::from_ns(20).to_string(), "20 ns");
        assert_eq!(Time::from_ps(500).to_string(), "500 ps");
        assert_eq!(Time::from_us(170).to_string(), "170 us");
        assert_eq!(Time::from_fs(1500).to_string(), "1.5 ps");
        assert_eq!(Time::ZERO.to_string(), "0 s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Time = [Time::from_ns(1), Time::from_ns(2), Time::from_ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Time::from_ns(6));
    }
}
