//! Multi-valued digital logic in the style of IEEE 1164 `std_logic`.
//!
//! The digital analysis flow of the paper instruments VHDL descriptions, whose
//! signals carry nine-valued resolved logic. Saboteurs rely on the same value
//! system (e.g. forcing `X` on an interconnect), so the full set is modelled.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A nine-valued logic level, mirroring IEEE 1164 `std_ulogic`.
///
/// # Examples
///
/// ```
/// use amsfi_waves::Logic;
///
/// assert_eq!(Logic::One & Logic::Zero, Logic::Zero);
/// assert_eq!(Logic::One & Logic::Unknown, Logic::Unknown);
/// assert_eq!(Logic::Zero.resolve(Logic::One), Logic::Unknown);
/// assert_eq!(Logic::HighZ.resolve(Logic::One), Logic::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// `'U'` — uninitialised (the power-on value of every signal).
    #[default]
    Uninitialized,
    /// `'X'` — forcing unknown (e.g. two strong drivers in conflict).
    Unknown,
    /// `'0'` — forcing zero.
    Zero,
    /// `'1'` — forcing one.
    One,
    /// `'Z'` — high impedance.
    HighZ,
    /// `'W'` — weak unknown.
    WeakUnknown,
    /// `'L'` — weak zero (pull-down).
    WeakZero,
    /// `'H'` — weak one (pull-up).
    WeakOne,
    /// `'-'` — don't care.
    DontCare,
}

impl Logic {
    /// All nine values, in IEEE 1164 declaration order.
    pub const ALL: [Logic; 9] = [
        Logic::Uninitialized,
        Logic::Unknown,
        Logic::Zero,
        Logic::One,
        Logic::HighZ,
        Logic::WeakUnknown,
        Logic::WeakZero,
        Logic::WeakOne,
        Logic::DontCare,
    ];

    /// Converts a boolean to a strong logic level.
    pub const fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Interprets this level as a boolean, treating weak levels as their
    /// strong equivalents. Returns `None` for metalogical values
    /// (`U`, `X`, `Z`, `W`, `-`).
    pub const fn to_bool(self) -> Option<bool> {
        match self {
            Logic::One | Logic::WeakOne => Some(true),
            Logic::Zero | Logic::WeakZero => Some(false),
            _ => None,
        }
    }

    /// True for `'1'` or `'H'`.
    pub const fn is_high(self) -> bool {
        matches!(self, Logic::One | Logic::WeakOne)
    }

    /// True for `'0'` or `'L'`.
    pub const fn is_low(self) -> bool {
        matches!(self, Logic::Zero | Logic::WeakZero)
    }

    /// True if the value is neither a strong nor a weak 0/1.
    pub const fn is_metalogical(self) -> bool {
        !(self.is_high() || self.is_low())
    }

    /// Reduces to the strong subset `{X, 0, 1}` as IEEE 1164 `to_x01` does.
    #[must_use]
    pub const fn to_x01(self) -> Logic {
        match self {
            Logic::Zero | Logic::WeakZero => Logic::Zero,
            Logic::One | Logic::WeakOne => Logic::One,
            _ => Logic::Unknown,
        }
    }

    /// The inverted level of an SEU bit-flip: `0 -> 1`, `1 -> 0`; weak levels
    /// flip to their strong complements; metalogical values are unchanged
    /// (there is no stored charge to flip).
    #[must_use]
    pub const fn flipped(self) -> Logic {
        match self {
            Logic::Zero | Logic::WeakZero => Logic::One,
            Logic::One | Logic::WeakOne => Logic::Zero,
            other => other,
        }
    }

    /// IEEE 1164 resolution of two simultaneous drivers on one signal.
    ///
    /// Strong beats weak, weak beats `Z`, equal strengths in conflict give an
    /// unknown of the stronger strength, and `U` is contagious.
    #[must_use]
    pub const fn resolve(self, other: Logic) -> Logic {
        use Logic::*;
        // The IEEE 1164 resolution table, row = self, column = other.
        const TABLE: [[Logic; 9]; 9] = [
            // U             X        0        1        Z        W            L         H        -
            [Uninitialized; 9], // U row: U resolves to U with everything
            [
                Uninitialized,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
            ], // X
            [
                Uninitialized,
                Unknown,
                Zero,
                Unknown,
                Zero,
                Zero,
                Zero,
                Zero,
                Unknown,
            ], // 0
            [
                Uninitialized,
                Unknown,
                Unknown,
                One,
                One,
                One,
                One,
                One,
                Unknown,
            ], // 1
            [
                Uninitialized,
                Unknown,
                Zero,
                One,
                HighZ,
                WeakUnknown,
                WeakZero,
                WeakOne,
                Unknown,
            ], // Z
            [
                Uninitialized,
                Unknown,
                Zero,
                One,
                WeakUnknown,
                WeakUnknown,
                WeakUnknown,
                WeakUnknown,
                Unknown,
            ], // W
            [
                Uninitialized,
                Unknown,
                Zero,
                One,
                WeakZero,
                WeakUnknown,
                WeakZero,
                WeakUnknown,
                Unknown,
            ], // L
            [
                Uninitialized,
                Unknown,
                Zero,
                One,
                WeakOne,
                WeakUnknown,
                WeakUnknown,
                WeakOne,
                Unknown,
            ], // H
            [
                Uninitialized,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
            ], // -
        ];
        TABLE[self.index()][other.index()]
    }

    /// The position of this value in [`Logic::ALL`].
    pub const fn index(self) -> usize {
        match self {
            Logic::Uninitialized => 0,
            Logic::Unknown => 1,
            Logic::Zero => 2,
            Logic::One => 3,
            Logic::HighZ => 4,
            Logic::WeakUnknown => 5,
            Logic::WeakZero => 6,
            Logic::WeakOne => 7,
            Logic::DontCare => 8,
        }
    }

    /// The IEEE 1164 character for this value.
    pub const fn to_char(self) -> char {
        match self {
            Logic::Uninitialized => 'U',
            Logic::Unknown => 'X',
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::HighZ => 'Z',
            Logic::WeakUnknown => 'W',
            Logic::WeakZero => 'L',
            Logic::WeakOne => 'H',
            Logic::DontCare => '-',
        }
    }

    /// Parses an IEEE 1164 character (case-insensitive for letters).
    pub fn from_char(c: char) -> Option<Logic> {
        Some(match c.to_ascii_uppercase() {
            'U' => Logic::Uninitialized,
            'X' => Logic::Unknown,
            '0' => Logic::Zero,
            '1' => Logic::One,
            'Z' => Logic::HighZ,
            'W' => Logic::WeakUnknown,
            'L' => Logic::WeakZero,
            'H' => Logic::WeakOne,
            '-' => Logic::DontCare,
            _ => return None,
        })
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Logic {
        Logic::from_bool(b)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl Not for Logic {
    type Output = Logic;
    /// Logical inversion per the IEEE 1164 `not` table: `U` stays `U`, other
    /// metalogical inputs give `X`.
    fn not(self) -> Logic {
        if self.is_low() {
            Logic::One
        } else if self.is_high() {
            Logic::Zero
        } else if self == Logic::Uninitialized {
            Logic::Uninitialized
        } else {
            Logic::Unknown
        }
    }
}

impl BitAnd for Logic {
    type Output = Logic;
    /// IEEE 1164 `and`: a low side forces `0` even against `U`; otherwise
    /// `U` is contagious, then `X`-propagation applies.
    fn bitand(self, rhs: Logic) -> Logic {
        if self.is_low() || rhs.is_low() {
            Logic::Zero
        } else if self == Logic::Uninitialized || rhs == Logic::Uninitialized {
            Logic::Uninitialized
        } else if self.is_high() && rhs.is_high() {
            Logic::One
        } else {
            Logic::Unknown
        }
    }
}

impl BitOr for Logic {
    type Output = Logic;
    /// IEEE 1164 `or`: a high side forces `1` even against `U`; otherwise
    /// `U` is contagious, then `X`-propagation applies.
    fn bitor(self, rhs: Logic) -> Logic {
        if self.is_high() || rhs.is_high() {
            Logic::One
        } else if self == Logic::Uninitialized || rhs == Logic::Uninitialized {
            Logic::Uninitialized
        } else if self.is_low() && rhs.is_low() {
            Logic::Zero
        } else {
            Logic::Unknown
        }
    }
}

impl BitXor for Logic {
    type Output = Logic;
    /// IEEE 1164 `xor`: no dominating value, so `U` on either side is
    /// contagious before `X`-propagation.
    fn bitxor(self, rhs: Logic) -> Logic {
        if self == Logic::Uninitialized || rhs == Logic::Uninitialized {
            Logic::Uninitialized
        } else {
            match (self.to_x01(), rhs.to_x01()) {
                (Logic::Zero, Logic::Zero) | (Logic::One, Logic::One) => Logic::Zero,
                (Logic::Zero, Logic::One) | (Logic::One, Logic::Zero) => Logic::One,
                _ => Logic::Unknown,
            }
        }
    }
}

/// Number of fault-simulation lanes packed into one [`LogicPlanes`] word.
pub const LANES: usize = 64;

/// 64 lanes of nine-valued logic in bit-sliced form.
///
/// Each lane holds one [`Logic`] value encoded as its [`Logic::index`] in
/// [`Logic::ALL`] order, spread across four bit-planes: bit *k* of
/// `planes[p]` is bit *p* of lane *k*'s code. Nine codes need four planes
/// (`DontCare` is code 8 = `0b1000`); plane pattern `0b0000` is
/// `Uninitialized`, so an all-zero word is 64 power-on-default lanes — the
/// same invariant scalar [`Logic::default`] has.
///
/// The gate and resolution kernels below operate on all 64 lanes per call
/// with word-parallel boolean algebra and are proven equal to the scalar
/// tables over all 9×9 input pairs in this module's tests.
///
/// # Examples
///
/// ```
/// use amsfi_waves::{Logic, LogicPlanes};
///
/// let mut a = LogicPlanes::splat(Logic::One);
/// a.set_lane(3, Logic::Uninitialized);
/// let b = LogicPlanes::splat(Logic::One);
/// let and = a.and(b);
/// assert_eq!(and.lane(0), Logic::One);
/// assert_eq!(and.lane(3), Logic::Uninitialized);
/// // Lane 3 differs from the golden broadcast:
/// assert_eq!(and.diverged_mask(b), 1 << 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct LogicPlanes {
    planes: [u64; 4],
}

/// Per-class lane masks derived from a [`LogicPlanes`] word: bit *k* of a
/// field is set iff lane *k* holds that value. Exactly one field has each
/// lane bit set.
#[derive(Clone, Copy, Default)]
struct ClassMasks {
    u: u64,
    x: u64,
    zero: u64,
    one: u64,
    z: u64,
    w: u64,
    l: u64,
    h: u64,
    dc: u64,
}

impl LogicPlanes {
    /// All 64 lanes at the power-on default (`Uninitialized`, code 0).
    pub const fn new() -> Self {
        Self { planes: [0; 4] }
    }

    /// Broadcasts one value to all 64 lanes.
    pub const fn splat(v: Logic) -> Self {
        let code = v.index() as u64;
        let mut planes = [0u64; 4];
        let mut p = 0;
        while p < 4 {
            if (code >> p) & 1 == 1 {
                planes[p] = u64::MAX;
            }
            p += 1;
        }
        Self { planes }
    }

    /// Packs a slice of lane values (lane 0 first). Panics if more than
    /// [`LANES`] values are given; missing lanes stay `Uninitialized`.
    pub fn from_lanes(values: &[Logic]) -> Self {
        assert!(values.len() <= LANES, "more than {LANES} lanes");
        let mut out = Self::new();
        for (lane, &v) in values.iter().enumerate() {
            out.set_lane(lane, v);
        }
        out
    }

    /// Sets one lane's value.
    pub fn set_lane(&mut self, lane: usize, v: Logic) {
        assert!(lane < LANES, "lane {lane} out of range");
        let bit = 1u64 << lane;
        let code = v.index() as u64;
        for (p, plane) in self.planes.iter_mut().enumerate() {
            if (code >> p) & 1 == 1 {
                *plane |= bit;
            } else {
                *plane &= !bit;
            }
        }
    }

    /// Reads one lane's value.
    pub fn lane(&self, lane: usize) -> Logic {
        assert!(lane < LANES, "lane {lane} out of range");
        let mut code = 0usize;
        for (p, plane) in self.planes.iter().enumerate() {
            code |= (((plane >> lane) & 1) as usize) << p;
        }
        Logic::ALL[code]
    }

    /// The raw bit-planes (plane *p* holds bit *p* of every lane's code).
    pub const fn planes(&self) -> [u64; 4] {
        self.planes
    }

    /// Lanes holding `'1'` or `'H'`, as a bit mask (the plane-parallel
    /// [`Logic::is_high`]).
    pub const fn is_high_mask(&self) -> u64 {
        // One = 0b0011, WeakOne = 0b0111: plane0 & plane1 & !plane3.
        self.planes[0] & self.planes[1] & !self.planes[3]
    }

    /// Lanes holding `'0'` or `'L'`, as a bit mask (the plane-parallel
    /// [`Logic::is_low`]).
    pub const fn is_low_mask(&self) -> u64 {
        // Zero = 0b0010, WeakZero = 0b0110: !plane0 & plane1 & !plane3.
        !self.planes[0] & self.planes[1] & !self.planes[3]
    }

    /// Per-lane merge: lane *k* takes `then.lane(k)` where bit *k* of `mask`
    /// is set, `self.lane(k)` otherwise. This is the masked-event apply
    /// primitive of the word-parallel simulator.
    #[must_use]
    pub const fn select(self, mask: u64, then: LogicPlanes) -> LogicPlanes {
        LogicPlanes {
            planes: [
                (then.planes[0] & mask) | (self.planes[0] & !mask),
                (then.planes[1] & mask) | (self.planes[1] & !mask),
                (then.planes[2] & mask) | (self.planes[2] & !mask),
                (then.planes[3] & mask) | (self.planes[3] & !mask),
            ],
        }
    }

    /// Broadcasts lane `lane`'s value to all 64 lanes — the golden-lane
    /// reference word the divergence mask is taken against.
    #[must_use]
    pub fn broadcast_lane(&self, lane: usize) -> LogicPlanes {
        LogicPlanes::splat(self.lane(lane))
    }

    /// Builds a word of strong `'1'`/`'0'` from a boolean lane mask: lane
    /// *k* is `One` where bit *k* of `ones` is set, `Zero` otherwise.
    pub const fn from_bool_mask(ones: u64) -> LogicPlanes {
        // One = 0b0011, Zero = 0b0010: plane1 is always set.
        LogicPlanes {
            planes: [ones, u64::MAX, 0, 0],
        }
    }

    /// Lanes whose value differs from `other`, as a bit mask. One XOR/OR
    /// pass over the planes — this is the batch simulator's live
    /// divergence mask primitive.
    pub const fn diverged_mask(&self, other: LogicPlanes) -> u64 {
        (self.planes[0] ^ other.planes[0])
            | (self.planes[1] ^ other.planes[1])
            | (self.planes[2] ^ other.planes[2])
            | (self.planes[3] ^ other.planes[3])
    }

    fn classes(&self) -> ClassMasks {
        let [p0, p1, p2, p3] = self.planes;
        let n3 = !p3;
        ClassMasks {
            u: !p0 & !p1 & !p2 & n3,
            x: p0 & !p1 & !p2 & n3,
            zero: !p0 & p1 & !p2 & n3,
            one: p0 & p1 & !p2 & n3,
            z: !p0 & !p1 & p2 & n3,
            w: p0 & !p1 & p2 & n3,
            l: !p0 & p1 & p2 & n3,
            h: p0 & p1 & p2 & n3,
            dc: !p0 & !p1 & !p2 & p3,
        }
    }

    /// Recomposes planes from disjoint per-output-class masks. Any lane not
    /// covered by a mask ends up `Uninitialized` (code 0, like `m.u`); the
    /// kernels always cover every lane, and none outputs `-`.
    fn compose(m: ClassMasks) -> Self {
        Self {
            planes: [
                m.x | m.one | m.w | m.h,
                m.zero | m.one | m.l | m.h,
                m.z | m.w | m.l | m.h,
                m.dc,
            ],
        }
    }

    /// Lane-parallel IEEE 1164 `and` (equal to the scalar `&` operator in
    /// every lane).
    #[must_use]
    pub fn and(self, rhs: LogicPlanes) -> LogicPlanes {
        let a = self.classes();
        let b = rhs.classes();
        let a_low = a.zero | a.l;
        let b_low = b.zero | b.l;
        let a_high = a.one | a.h;
        let b_high = b.one | b.h;
        let zero = a_low | b_low;
        let u = (a.u | b.u) & !zero;
        let one = a_high & b_high & !zero;
        let x = !(zero | u | one);
        Self::compose(ClassMasks {
            u,
            x,
            zero,
            one,
            ..ClassMasks::default()
        })
    }

    /// Lane-parallel IEEE 1164 `or`.
    #[must_use]
    pub fn or(self, rhs: LogicPlanes) -> LogicPlanes {
        let a = self.classes();
        let b = rhs.classes();
        let a_low = a.zero | a.l;
        let b_low = b.zero | b.l;
        let a_high = a.one | a.h;
        let b_high = b.one | b.h;
        let one = a_high | b_high;
        let u = (a.u | b.u) & !one;
        let zero = a_low & b_low & !one;
        let x = !(one | u | zero);
        Self::compose(ClassMasks {
            u,
            x,
            zero,
            one,
            ..ClassMasks::default()
        })
    }

    /// Lane-parallel IEEE 1164 `xor`.
    #[must_use]
    pub fn xor(self, rhs: LogicPlanes) -> LogicPlanes {
        let a = self.classes();
        let b = rhs.classes();
        let a_low = a.zero | a.l;
        let b_low = b.zero | b.l;
        let a_high = a.one | a.h;
        let b_high = b.one | b.h;
        let u = a.u | b.u;
        let zero = ((a_low & b_low) | (a_high & b_high)) & !u;
        let one = ((a_low & b_high) | (a_high & b_low)) & !u;
        let x = !(u | zero | one);
        Self::compose(ClassMasks {
            u,
            x,
            zero,
            one,
            ..ClassMasks::default()
        })
    }

    /// Lane-parallel IEEE 1164 `not`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> LogicPlanes {
        let a = self.classes();
        let one = a.zero | a.l;
        let zero = a.one | a.h;
        let u = a.u;
        let x = !(one | zero | u);
        Self::compose(ClassMasks {
            u,
            x,
            zero,
            one,
            ..ClassMasks::default()
        })
    }

    /// Lane-parallel IEEE 1164 driver resolution (equal to
    /// [`Logic::resolve`] in every lane).
    ///
    /// Decomposed by strength region: `U` is contagious; any strong driver
    /// (`X 0 1 -`, with `-` contributing as `X`) masks all weak drivers;
    /// weak drivers (`W L H`) mask `Z`; two `Z` stay `Z`. Conflicting
    /// levels within a region give that region's unknown.
    #[must_use]
    pub fn resolve(self, rhs: LogicPlanes) -> LogicPlanes {
        let a = self.classes();
        let b = rhs.classes();
        let m_u = a.u | b.u;

        // Strong region: `-` resolves exactly like `X` (see the scalar table).
        let s_x = a.x | a.dc | b.x | b.dc;
        let s_0 = a.zero | b.zero;
        let s_1 = a.one | b.one;
        let strong = s_x | s_0 | s_1;
        let out_sx = s_x | (s_0 & s_1);

        // Weak region, only visible where no strong driver is present.
        let w_x = a.w | b.w;
        let w_0 = a.l | b.l;
        let w_1 = a.h | b.h;
        let weak = w_x | w_0 | w_1;
        let out_wx = w_x | (w_0 & w_1);

        let live = !m_u;
        let weak_live = live & !strong;
        Self::compose(ClassMasks {
            u: m_u,
            x: live & out_sx,
            zero: live & strong & s_0 & !out_sx,
            one: live & strong & s_1 & !out_sx,
            z: weak_live & !weak,
            w: weak_live & out_wx,
            l: weak_live & w_0 & !out_wx,
            h: weak_live & w_1 & !out_wx,
            dc: 0,
        })
    }
}

impl fmt::Debug for LogicPlanes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogicPlanes[")?;
        for lane in 0..LANES {
            write!(f, "{}", self.lane(lane).to_char())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic::from_bool(true), Logic::One);
        assert_eq!(Logic::from_bool(false), Logic::Zero);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::WeakZero.to_bool(), Some(false));
        assert_eq!(Logic::Unknown.to_bool(), None);
        assert_eq!(Logic::HighZ.to_bool(), None);
    }

    #[test]
    fn char_round_trip_all_values() {
        for v in Logic::ALL {
            assert_eq!(Logic::from_char(v.to_char()), Some(v));
        }
        assert_eq!(Logic::from_char('h'), Some(Logic::WeakOne));
        assert_eq!(Logic::from_char('q'), None);
    }

    #[test]
    fn resolution_is_commutative() {
        for a in Logic::ALL {
            for b in Logic::ALL {
                assert_eq!(a.resolve(b), b.resolve(a), "resolve({a}, {b})");
            }
        }
    }

    #[test]
    fn resolution_is_associative() {
        for a in Logic::ALL {
            for b in Logic::ALL {
                for c in Logic::ALL {
                    assert_eq!(
                        a.resolve(b).resolve(c),
                        a.resolve(b.resolve(c)),
                        "resolve({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn resolution_strength_ordering() {
        // Strong conflicting drivers produce X.
        assert_eq!(Logic::Zero.resolve(Logic::One), Logic::Unknown);
        // Strong beats weak.
        assert_eq!(Logic::Zero.resolve(Logic::WeakOne), Logic::Zero);
        assert_eq!(Logic::One.resolve(Logic::WeakZero), Logic::One);
        // Weak beats Z.
        assert_eq!(Logic::HighZ.resolve(Logic::WeakOne), Logic::WeakOne);
        // Weak conflict gives weak unknown.
        assert_eq!(Logic::WeakZero.resolve(Logic::WeakOne), Logic::WeakUnknown);
        // Z is the identity element.
        for v in Logic::ALL {
            assert_eq!(
                Logic::HighZ.resolve(v),
                if v == Logic::DontCare {
                    Logic::Unknown
                } else {
                    v
                }
            );
        }
    }

    #[test]
    fn uninitialized_is_contagious() {
        for v in Logic::ALL {
            assert_eq!(Logic::Uninitialized.resolve(v), Logic::Uninitialized);
        }
    }

    #[test]
    fn flipped_models_seu() {
        assert_eq!(Logic::Zero.flipped(), Logic::One);
        assert_eq!(Logic::One.flipped(), Logic::Zero);
        assert_eq!(Logic::WeakOne.flipped(), Logic::Zero);
        assert_eq!(Logic::Unknown.flipped(), Logic::Unknown);
        // Double flip restores 0/1 values.
        assert_eq!(Logic::Zero.flipped().flipped(), Logic::Zero);
    }

    #[test]
    fn gate_operators_propagate_x() {
        assert_eq!(Logic::Zero & Logic::Unknown, Logic::Zero);
        assert_eq!(Logic::One & Logic::Unknown, Logic::Unknown);
        assert_eq!(Logic::One | Logic::Unknown, Logic::One);
        assert_eq!(Logic::Zero | Logic::Unknown, Logic::Unknown);
        assert_eq!(Logic::One ^ Logic::Unknown, Logic::Unknown);
        assert_eq!(!Logic::Unknown, Logic::Unknown);
        assert_eq!(!Logic::One, Logic::Zero);
        assert_eq!(!Logic::WeakZero, Logic::One);
    }

    #[test]
    fn weak_levels_behave_as_strong_in_gates() {
        assert_eq!(Logic::WeakOne & Logic::One, Logic::One);
        assert_eq!(Logic::WeakZero | Logic::Zero, Logic::Zero);
        assert_eq!(Logic::WeakOne ^ Logic::WeakZero, Logic::One);
    }

    /// Parses a 9×9 reference table written as rows of IEEE 1164 characters
    /// in `Logic::ALL` order (row = left operand, column = right operand).
    fn table(rows: [&str; 9]) -> Vec<Vec<Logic>> {
        rows.iter()
            .map(|row| row.chars().map(|c| Logic::from_char(c).unwrap()).collect())
            .collect()
    }

    /// IEEE 1164-1993 `and_table`, transcribed from the standard package
    /// body (operands in `U X 0 1 Z W L H -` order).
    fn ieee_and() -> Vec<Vec<Logic>> {
        table([
            "UU0UUU0UU", // U
            "UX0XXX0XX", // X
            "000000000", // 0
            "UX01XX01X", // 1
            "UX0XXX0XX", // Z
            "UX0XXX0XX", // W
            "000000000", // L
            "UX01XX01X", // H
            "UX0XXX0XX", // -
        ])
    }

    /// IEEE 1164-1993 `or_table`.
    fn ieee_or() -> Vec<Vec<Logic>> {
        table([
            "UUU1UUU1U", // U
            "UXX1XXX1X", // X
            "UX01XX01X", // 0
            "111111111", // 1
            "UXX1XXX1X", // Z
            "UXX1XXX1X", // W
            "UX01XX01X", // L
            "111111111", // H
            "UXX1XXX1X", // -
        ])
    }

    /// IEEE 1164-1993 `xor_table`.
    fn ieee_xor() -> Vec<Vec<Logic>> {
        table([
            "UUUUUUUUU", // U
            "UXXXXXXXX", // X
            "UX01XX01X", // 0
            "UX10XX10X", // 1
            "UXXXXXXXX", // Z
            "UXXXXXXXX", // W
            "UX01XX01X", // L
            "UX10XX10X", // H
            "UXXXXXXXX", // -
        ])
    }

    /// IEEE 1164-1993 `resolution_table`.
    fn ieee_resolve() -> Vec<Vec<Logic>> {
        table([
            "UUUUUUUUU", // U
            "UXXXXXXXX", // X
            "UX0X0000X", // 0
            "UXX11111X", // 1
            "UX01ZWLHX", // Z
            "UX01WWWWX", // W
            "UX01LWLWX", // L
            "UX01HWWHX", // H
            "UXXXXXXXX", // -
        ])
    }

    /// IEEE 1164-1993 `not_table` (`U X 0 1 Z W L H -` → `U X 1 0 X X 1 0 X`).
    fn ieee_not() -> Vec<Logic> {
        "UX10XX10X"
            .chars()
            .map(|c| Logic::from_char(c).unwrap())
            .collect()
    }

    #[test]
    fn and_matches_ieee_1164_over_all_81_pairs() {
        let t = ieee_and();
        for a in Logic::ALL {
            for b in Logic::ALL {
                assert_eq!(a & b, t[a.index()][b.index()], "and({a},{b})");
            }
        }
    }

    #[test]
    fn or_matches_ieee_1164_over_all_81_pairs() {
        let t = ieee_or();
        for a in Logic::ALL {
            for b in Logic::ALL {
                assert_eq!(a | b, t[a.index()][b.index()], "or({a},{b})");
            }
        }
    }

    #[test]
    fn xor_matches_ieee_1164_over_all_81_pairs() {
        let t = ieee_xor();
        for a in Logic::ALL {
            for b in Logic::ALL {
                assert_eq!(a ^ b, t[a.index()][b.index()], "xor({a},{b})");
            }
        }
    }

    #[test]
    fn not_matches_ieee_1164_over_all_values() {
        let t = ieee_not();
        for a in Logic::ALL {
            assert_eq!(!a, t[a.index()], "not({a})");
        }
    }

    #[test]
    fn resolve_matches_ieee_1164_over_all_81_pairs() {
        let t = ieee_resolve();
        for a in Logic::ALL {
            for b in Logic::ALL {
                assert_eq!(a.resolve(b), t[a.index()][b.index()], "resolve({a},{b})");
            }
        }
    }

    #[test]
    fn planes_encoding_round_trips_and_defaults_to_uninitialized() {
        assert_eq!(LogicPlanes::new(), LogicPlanes::default());
        for lane in 0..LANES {
            assert_eq!(LogicPlanes::new().lane(lane), Logic::Uninitialized);
        }
        // splat + set_lane + lane round-trip every value in every position.
        for v in Logic::ALL {
            let s = LogicPlanes::splat(v);
            for lane in 0..LANES {
                assert_eq!(s.lane(lane), v);
            }
        }
        let mut w = LogicPlanes::splat(Logic::WeakOne);
        for (lane, v) in Logic::ALL.iter().cycle().take(LANES).enumerate() {
            w.set_lane(lane, *v);
        }
        for (lane, v) in Logic::ALL.iter().cycle().take(LANES).enumerate() {
            assert_eq!(w.lane(lane), *v);
        }
        // Plane pattern 0 is reserved for Uninitialized.
        assert_eq!(LogicPlanes::splat(Logic::Uninitialized).planes(), [0; 4]);
    }

    /// Every 9×9 operand pair, packed across two 64-lane words (81 pairs,
    /// lane k of word w holds pair 64·w + k).
    #[allow(clippy::type_complexity)]
    fn all_pairs_packed() -> Vec<(LogicPlanes, LogicPlanes, Vec<(Logic, Logic)>)> {
        let pairs: Vec<(Logic, Logic)> = Logic::ALL
            .iter()
            .flat_map(|&a| Logic::ALL.iter().map(move |&b| (a, b)))
            .collect();
        pairs
            .chunks(LANES)
            .map(|chunk| {
                let a = LogicPlanes::from_lanes(&chunk.iter().map(|p| p.0).collect::<Vec<_>>());
                let b = LogicPlanes::from_lanes(&chunk.iter().map(|p| p.1).collect::<Vec<_>>());
                (a, b, chunk.to_vec())
            })
            .collect()
    }

    #[test]
    fn plane_kernels_equal_scalar_tables_over_all_81_pairs() {
        for (a, b, pairs) in all_pairs_packed() {
            let and = a.and(b);
            let or = a.or(b);
            let xor = a.xor(b);
            let not = a.not();
            let res = a.resolve(b);
            for (lane, &(x, y)) in pairs.iter().enumerate() {
                assert_eq!(and.lane(lane), x & y, "and({x},{y})");
                assert_eq!(or.lane(lane), x | y, "or({x},{y})");
                assert_eq!(xor.lane(lane), x ^ y, "xor({x},{y})");
                assert_eq!(not.lane(lane), !x, "not({x})");
                assert_eq!(res.lane(lane), x.resolve(y), "resolve({x},{y})");
            }
            // Unfilled tail lanes are Uninitialized on both sides, and every
            // kernel maps (U, U) to U — i.e. stays at plane pattern 0.
            for lane in pairs.len()..LANES {
                assert_eq!(and.lane(lane), Logic::Uninitialized);
                assert_eq!(res.lane(lane), Logic::Uninitialized);
            }
        }
    }

    #[test]
    fn high_low_masks_match_scalar_predicates_for_all_values() {
        for v in Logic::ALL {
            let s = LogicPlanes::splat(v);
            let expect = |b: bool| if b { u64::MAX } else { 0 };
            assert_eq!(s.is_high_mask(), expect(v.is_high()), "is_high({v})");
            assert_eq!(s.is_low_mask(), expect(v.is_low()), "is_low({v})");
        }
        // Mixed lanes: each predicate flags exactly its lanes.
        let w = LogicPlanes::from_lanes(&[Logic::One, Logic::Zero, Logic::WeakOne, Logic::HighZ]);
        assert_eq!(w.is_high_mask(), 0b0101);
        assert_eq!(w.is_low_mask(), 0b0010);
    }

    #[test]
    fn select_merges_lanes_by_mask() {
        let a = LogicPlanes::splat(Logic::One);
        let b = LogicPlanes::splat(Logic::HighZ);
        let m = 0xF0F0_F0F0_F0F0_F0F0u64;
        let merged = b.select(m, a);
        for lane in 0..LANES {
            let expect = if (m >> lane) & 1 == 1 {
                Logic::One
            } else {
                Logic::HighZ
            };
            assert_eq!(merged.lane(lane), expect, "lane {lane}");
        }
        // Identity edges.
        assert_eq!(b.select(0, a), b);
        assert_eq!(b.select(u64::MAX, a), a);
    }

    #[test]
    fn broadcast_lane_and_bool_mask_round_trip() {
        let mut w = LogicPlanes::splat(Logic::Zero);
        w.set_lane(63, Logic::WeakOne);
        assert_eq!(w.broadcast_lane(63), LogicPlanes::splat(Logic::WeakOne));
        assert_eq!(w.broadcast_lane(0), LogicPlanes::splat(Logic::Zero));

        let ones = 0xDEAD_BEEF_0123_4567u64;
        let b = LogicPlanes::from_bool_mask(ones);
        for lane in 0..LANES {
            let expect = Logic::from_bool((ones >> lane) & 1 == 1);
            assert_eq!(b.lane(lane), expect, "lane {lane}");
        }
        assert_eq!(b.is_high_mask(), ones);
        assert_eq!(b.is_low_mask(), !ones);
    }

    #[test]
    fn diverged_mask_flags_exactly_the_differing_lanes() {
        let golden = LogicPlanes::splat(Logic::Zero);
        let mut faulty = golden;
        assert_eq!(faulty.diverged_mask(golden), 0);
        faulty.set_lane(0, Logic::One);
        faulty.set_lane(17, Logic::Unknown);
        faulty.set_lane(63, Logic::Uninitialized);
        assert_eq!(faulty.diverged_mask(golden), 1 | (1 << 17) | (1 << 63));
        // The mask is symmetric.
        assert_eq!(golden.diverged_mask(faulty), faulty.diverged_mask(golden));
    }
}
