//! Multi-valued digital logic in the style of IEEE 1164 `std_logic`.
//!
//! The digital analysis flow of the paper instruments VHDL descriptions, whose
//! signals carry nine-valued resolved logic. Saboteurs rely on the same value
//! system (e.g. forcing `X` on an interconnect), so the full set is modelled.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A nine-valued logic level, mirroring IEEE 1164 `std_ulogic`.
///
/// # Examples
///
/// ```
/// use amsfi_waves::Logic;
///
/// assert_eq!(Logic::One & Logic::Zero, Logic::Zero);
/// assert_eq!(Logic::One & Logic::Unknown, Logic::Unknown);
/// assert_eq!(Logic::Zero.resolve(Logic::One), Logic::Unknown);
/// assert_eq!(Logic::HighZ.resolve(Logic::One), Logic::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// `'U'` — uninitialised (the power-on value of every signal).
    #[default]
    Uninitialized,
    /// `'X'` — forcing unknown (e.g. two strong drivers in conflict).
    Unknown,
    /// `'0'` — forcing zero.
    Zero,
    /// `'1'` — forcing one.
    One,
    /// `'Z'` — high impedance.
    HighZ,
    /// `'W'` — weak unknown.
    WeakUnknown,
    /// `'L'` — weak zero (pull-down).
    WeakZero,
    /// `'H'` — weak one (pull-up).
    WeakOne,
    /// `'-'` — don't care.
    DontCare,
}

impl Logic {
    /// All nine values, in IEEE 1164 declaration order.
    pub const ALL: [Logic; 9] = [
        Logic::Uninitialized,
        Logic::Unknown,
        Logic::Zero,
        Logic::One,
        Logic::HighZ,
        Logic::WeakUnknown,
        Logic::WeakZero,
        Logic::WeakOne,
        Logic::DontCare,
    ];

    /// Converts a boolean to a strong logic level.
    pub const fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Interprets this level as a boolean, treating weak levels as their
    /// strong equivalents. Returns `None` for metalogical values
    /// (`U`, `X`, `Z`, `W`, `-`).
    pub const fn to_bool(self) -> Option<bool> {
        match self {
            Logic::One | Logic::WeakOne => Some(true),
            Logic::Zero | Logic::WeakZero => Some(false),
            _ => None,
        }
    }

    /// True for `'1'` or `'H'`.
    pub const fn is_high(self) -> bool {
        matches!(self, Logic::One | Logic::WeakOne)
    }

    /// True for `'0'` or `'L'`.
    pub const fn is_low(self) -> bool {
        matches!(self, Logic::Zero | Logic::WeakZero)
    }

    /// True if the value is neither a strong nor a weak 0/1.
    pub const fn is_metalogical(self) -> bool {
        !(self.is_high() || self.is_low())
    }

    /// Reduces to the strong subset `{X, 0, 1}` as IEEE 1164 `to_x01` does.
    #[must_use]
    pub const fn to_x01(self) -> Logic {
        match self {
            Logic::Zero | Logic::WeakZero => Logic::Zero,
            Logic::One | Logic::WeakOne => Logic::One,
            _ => Logic::Unknown,
        }
    }

    /// The inverted level of an SEU bit-flip: `0 -> 1`, `1 -> 0`; weak levels
    /// flip to their strong complements; metalogical values are unchanged
    /// (there is no stored charge to flip).
    #[must_use]
    pub const fn flipped(self) -> Logic {
        match self {
            Logic::Zero | Logic::WeakZero => Logic::One,
            Logic::One | Logic::WeakOne => Logic::Zero,
            other => other,
        }
    }

    /// IEEE 1164 resolution of two simultaneous drivers on one signal.
    ///
    /// Strong beats weak, weak beats `Z`, equal strengths in conflict give an
    /// unknown of the stronger strength, and `U` is contagious.
    #[must_use]
    pub const fn resolve(self, other: Logic) -> Logic {
        use Logic::*;
        // The IEEE 1164 resolution table, row = self, column = other.
        const TABLE: [[Logic; 9]; 9] = [
            // U             X        0        1        Z        W            L         H        -
            [Uninitialized; 9], // U row: U resolves to U with everything
            [
                Uninitialized,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
            ], // X
            [
                Uninitialized,
                Unknown,
                Zero,
                Unknown,
                Zero,
                Zero,
                Zero,
                Zero,
                Unknown,
            ], // 0
            [
                Uninitialized,
                Unknown,
                Unknown,
                One,
                One,
                One,
                One,
                One,
                Unknown,
            ], // 1
            [
                Uninitialized,
                Unknown,
                Zero,
                One,
                HighZ,
                WeakUnknown,
                WeakZero,
                WeakOne,
                Unknown,
            ], // Z
            [
                Uninitialized,
                Unknown,
                Zero,
                One,
                WeakUnknown,
                WeakUnknown,
                WeakUnknown,
                WeakUnknown,
                Unknown,
            ], // W
            [
                Uninitialized,
                Unknown,
                Zero,
                One,
                WeakZero,
                WeakUnknown,
                WeakZero,
                WeakUnknown,
                Unknown,
            ], // L
            [
                Uninitialized,
                Unknown,
                Zero,
                One,
                WeakOne,
                WeakUnknown,
                WeakUnknown,
                WeakOne,
                Unknown,
            ], // H
            [
                Uninitialized,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
            ], // -
        ];
        TABLE[self.index()][other.index()]
    }

    /// The position of this value in [`Logic::ALL`].
    pub const fn index(self) -> usize {
        match self {
            Logic::Uninitialized => 0,
            Logic::Unknown => 1,
            Logic::Zero => 2,
            Logic::One => 3,
            Logic::HighZ => 4,
            Logic::WeakUnknown => 5,
            Logic::WeakZero => 6,
            Logic::WeakOne => 7,
            Logic::DontCare => 8,
        }
    }

    /// The IEEE 1164 character for this value.
    pub const fn to_char(self) -> char {
        match self {
            Logic::Uninitialized => 'U',
            Logic::Unknown => 'X',
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::HighZ => 'Z',
            Logic::WeakUnknown => 'W',
            Logic::WeakZero => 'L',
            Logic::WeakOne => 'H',
            Logic::DontCare => '-',
        }
    }

    /// Parses an IEEE 1164 character (case-insensitive for letters).
    pub fn from_char(c: char) -> Option<Logic> {
        Some(match c.to_ascii_uppercase() {
            'U' => Logic::Uninitialized,
            'X' => Logic::Unknown,
            '0' => Logic::Zero,
            '1' => Logic::One,
            'Z' => Logic::HighZ,
            'W' => Logic::WeakUnknown,
            'L' => Logic::WeakZero,
            'H' => Logic::WeakOne,
            '-' => Logic::DontCare,
            _ => return None,
        })
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Logic {
        Logic::from_bool(b)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl Not for Logic {
    type Output = Logic;
    /// Logical inversion with X-propagation: metalogical inputs give `X`
    /// (except `U`, which stays `U`).
    fn not(self) -> Logic {
        match self.to_x01() {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ if self == Logic::Uninitialized => Logic::Uninitialized,
            _ => Logic::Unknown,
        }
    }
}

impl BitAnd for Logic {
    type Output = Logic;
    fn bitand(self, rhs: Logic) -> Logic {
        match (self.to_x01(), rhs.to_x01()) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::Unknown,
        }
    }
}

impl BitOr for Logic {
    type Output = Logic;
    fn bitor(self, rhs: Logic) -> Logic {
        match (self.to_x01(), rhs.to_x01()) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::Unknown,
        }
    }
}

impl BitXor for Logic {
    type Output = Logic;
    fn bitxor(self, rhs: Logic) -> Logic {
        match (self.to_x01(), rhs.to_x01()) {
            (Logic::Zero, Logic::Zero) | (Logic::One, Logic::One) => Logic::Zero,
            (Logic::Zero, Logic::One) | (Logic::One, Logic::Zero) => Logic::One,
            _ => Logic::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic::from_bool(true), Logic::One);
        assert_eq!(Logic::from_bool(false), Logic::Zero);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::WeakZero.to_bool(), Some(false));
        assert_eq!(Logic::Unknown.to_bool(), None);
        assert_eq!(Logic::HighZ.to_bool(), None);
    }

    #[test]
    fn char_round_trip_all_values() {
        for v in Logic::ALL {
            assert_eq!(Logic::from_char(v.to_char()), Some(v));
        }
        assert_eq!(Logic::from_char('h'), Some(Logic::WeakOne));
        assert_eq!(Logic::from_char('q'), None);
    }

    #[test]
    fn resolution_is_commutative() {
        for a in Logic::ALL {
            for b in Logic::ALL {
                assert_eq!(a.resolve(b), b.resolve(a), "resolve({a}, {b})");
            }
        }
    }

    #[test]
    fn resolution_is_associative() {
        for a in Logic::ALL {
            for b in Logic::ALL {
                for c in Logic::ALL {
                    assert_eq!(
                        a.resolve(b).resolve(c),
                        a.resolve(b.resolve(c)),
                        "resolve({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn resolution_strength_ordering() {
        // Strong conflicting drivers produce X.
        assert_eq!(Logic::Zero.resolve(Logic::One), Logic::Unknown);
        // Strong beats weak.
        assert_eq!(Logic::Zero.resolve(Logic::WeakOne), Logic::Zero);
        assert_eq!(Logic::One.resolve(Logic::WeakZero), Logic::One);
        // Weak beats Z.
        assert_eq!(Logic::HighZ.resolve(Logic::WeakOne), Logic::WeakOne);
        // Weak conflict gives weak unknown.
        assert_eq!(Logic::WeakZero.resolve(Logic::WeakOne), Logic::WeakUnknown);
        // Z is the identity element.
        for v in Logic::ALL {
            assert_eq!(
                Logic::HighZ.resolve(v),
                if v == Logic::DontCare {
                    Logic::Unknown
                } else {
                    v
                }
            );
        }
    }

    #[test]
    fn uninitialized_is_contagious() {
        for v in Logic::ALL {
            assert_eq!(Logic::Uninitialized.resolve(v), Logic::Uninitialized);
        }
    }

    #[test]
    fn flipped_models_seu() {
        assert_eq!(Logic::Zero.flipped(), Logic::One);
        assert_eq!(Logic::One.flipped(), Logic::Zero);
        assert_eq!(Logic::WeakOne.flipped(), Logic::Zero);
        assert_eq!(Logic::Unknown.flipped(), Logic::Unknown);
        // Double flip restores 0/1 values.
        assert_eq!(Logic::Zero.flipped().flipped(), Logic::Zero);
    }

    #[test]
    fn gate_operators_propagate_x() {
        assert_eq!(Logic::Zero & Logic::Unknown, Logic::Zero);
        assert_eq!(Logic::One & Logic::Unknown, Logic::Unknown);
        assert_eq!(Logic::One | Logic::Unknown, Logic::One);
        assert_eq!(Logic::Zero | Logic::Unknown, Logic::Unknown);
        assert_eq!(Logic::One ^ Logic::Unknown, Logic::Unknown);
        assert_eq!(!Logic::Unknown, Logic::Unknown);
        assert_eq!(!Logic::One, Logic::Zero);
        assert_eq!(!Logic::WeakZero, Logic::One);
    }

    #[test]
    fn weak_levels_behave_as_strong_in_gates() {
        assert_eq!(Logic::WeakOne & Logic::One, Logic::One);
        assert_eq!(Logic::WeakZero | Logic::Zero, Logic::Zero);
        assert_eq!(Logic::WeakOne ^ Logic::WeakZero, Logic::One);
    }
}
