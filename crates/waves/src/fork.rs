//! Golden-prefix checkpointing: snapshot a simulator mid-run and fork
//! faulty runs from the snapshot instead of re-simulating from time zero.
//!
//! A fault injected at time *t* cannot perturb the circuit before *t*, so a
//! campaign of N cases over a horizon T only needs the golden prefix
//! `[0, tᵢ)` simulated once per distinct injection instant. [`ForkableSim`]
//! is the capability contract a simulation kernel implements to take part;
//! [`Checkpoint`] is the snapshot itself, stamped with a structural
//! [fingerprint](ForkableSim::structural_fingerprint) so restoring into a
//! mismatched circuit is a reported error, not silent corruption.
//!
//! Because a snapshot clones the *whole* simulator — event queue, solver
//! step state, digitizer hysteresis and the trace recorded so far — a fork
//! already carries the golden prefix of every monitored waveform. Running
//! the fork to the horizon therefore yields a full-length trace with no
//! explicit stitching step.

use crate::{SimBudget, SimObserver, Time, Trace};
use std::fmt;

/// The FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// An incremental FNV-1a hasher for structural fingerprints.
///
/// The same idiom the engine journal uses for campaign fingerprints: hash
/// bytes, and call [`Fnv1a::eat`] between fields so `("ab", "c")` and
/// `("a", "bc")` hash differently.
///
/// # Examples
///
/// ```
/// use amsfi_waves::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write_str("vctrl");
/// h.eat();
/// h.write_u64(3);
/// let a = h.finish();
///
/// let mut h = Fnv1a::new();
/// h.write_str("vctrl3");
/// assert_ne!(a, h.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a {
    hash: u64,
}

impl Fnv1a {
    /// Starts a fresh hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a { hash: FNV_OFFSET }
    }

    /// Hashes a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes a string's bytes.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    /// Hashes a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Terminates the current field: a delimiter byte that cannot occur in
    /// UTF-8, so adjacent fields cannot be confused.
    pub fn eat(&mut self) {
        self.hash ^= 0xFF;
        self.hash = self.hash.wrapping_mul(FNV_PRIME);
    }

    /// The hash accumulated so far.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// A checkpoint was restored into a simulator with a different structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMismatch {
    /// Fingerprint baked into the checkpoint at capture time.
    pub expected: u64,
    /// Fingerprint of the simulator the restore targeted.
    pub found: u64,
}

impl fmt::Display for CheckpointMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checkpoint fingerprint {:016x} does not match target circuit {:016x}: \
             refusing to restore into a different structure",
            self.expected, self.found
        )
    }
}

impl std::error::Error for CheckpointMismatch {}

/// A simulation kernel that can be snapshotted mid-run and forked.
///
/// Implementors are `Clone`, and the clone must capture *all* run-relevant
/// state: pending event queues, adaptive solver step state, boundary
/// element (digitizer/driver) state and the trace recorded so far. The
/// digital [`Simulator`], [`AnalogSolver`] and [`MixedSimulator`] kernels
/// all satisfy this because their state lives in owned fields.
///
/// Equivalence contract: advancing through the *same* sequence of
/// `advance_to` stops must be deterministic, so a fork taken at `t` and a
/// fresh run driven through the identical stop sequence up to `t` produce
/// byte-identical traces when both are then advanced to the horizon.
/// (The stop sequence matters for adaptive-step solvers: each stop clamps
/// the final partial step, which shifts the subsequent step grid.)
///
/// [`Simulator`]: https://docs.rs/amsfi-digital
/// [`AnalogSolver`]: https://docs.rs/amsfi-analog
/// [`MixedSimulator`]: https://docs.rs/amsfi-mixed
pub trait ForkableSim: Clone + Send {
    /// Error produced while advancing simulation time.
    type Error: std::error::Error + Send + Sync + 'static;

    /// Advances simulation time to `t` (a no-op if already past it).
    ///
    /// # Errors
    ///
    /// Propagates the kernel's simulation error (e.g. delta overflow).
    fn advance_to(&mut self, t: Time) -> Result<(), Self::Error>;

    /// Current simulation time.
    fn current_time(&self) -> Time;

    /// The trace of monitored signals recorded so far.
    fn snapshot_trace(&self) -> Trace;

    /// A hash of the simulator's *structure* (nodes, components, bindings
    /// — not mutable run state). Two simulators built from the same
    /// description report the same fingerprint; a checkpoint only restores
    /// into a matching structure.
    fn structural_fingerprint(&self) -> u64;

    /// Installs a per-attempt [`SimBudget`] that subsequent `advance_to`
    /// calls must observe (step budget, timestep floor, NaN/Inf guard,
    /// cooperative cancellation). Replaces any previous budget wholesale —
    /// in particular one inherited through [`Checkpoint::fork`] — so
    /// consumed steps never leak across attempts. The default
    /// implementation ignores the budget (for toy simulators that cannot
    /// run away); the real kernels override it.
    fn install_budget(&mut self, budget: SimBudget) {
        let _ = budget;
    }

    /// Installs a periodic [`SimObserver`] that subsequent `advance_to`
    /// calls poll from their step loops (at instants where every recorded
    /// value strictly below the current time is final). Replaces any
    /// previous observer wholesale — in particular one inherited through
    /// [`Checkpoint::fork`] — so an observer never outlives its attempt.
    /// The default implementation ignores the observer (for toy
    /// simulators); the real kernels override it.
    fn install_observer(&mut self, observer: SimObserver) {
        let _ = observer;
    }
}

/// A point-in-time snapshot of a [`ForkableSim`], validated on restore.
///
/// Capture is a deep clone; forking clones again, so one checkpoint serves
/// arbitrarily many faulty runs.
#[derive(Debug, Clone)]
pub struct Checkpoint<S: ForkableSim> {
    state: S,
    fingerprint: u64,
    at: Time,
}

impl<S: ForkableSim> Checkpoint<S> {
    /// Snapshots `sim` at its current time.
    pub fn capture(sim: &S) -> Self {
        Checkpoint {
            state: sim.clone(),
            fingerprint: sim.structural_fingerprint(),
            at: sim.current_time(),
        }
    }

    /// Simulation time at which the snapshot was taken.
    pub fn at(&self) -> Time {
        self.at
    }

    /// Structural fingerprint of the snapshotted simulator.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Produces an independent simulator resumed from the snapshot.
    pub fn fork(&self) -> S {
        self.state.clone()
    }

    /// Like [`Checkpoint::fork`], but validates that the snapshot matches
    /// `target`'s structure first — the safe entry point when checkpoint
    /// and simulator were built in different places.
    ///
    /// # Errors
    ///
    /// [`CheckpointMismatch`] when the fingerprints differ.
    pub fn restore_into(&self, target: &S) -> Result<S, CheckpointMismatch> {
        let found = target.structural_fingerprint();
        if found != self.fingerprint {
            return Err(CheckpointMismatch {
                expected: self.fingerprint,
                found,
            });
        }
        Ok(self.fork())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Logic;
    use std::convert::Infallible;

    /// A counter "simulator": one tick per nanosecond, traced as a bit.
    #[derive(Debug, Clone)]
    struct Ticker {
        now: Time,
        ticks: u64,
        trace: Trace,
        shape: u64,
    }

    impl Ticker {
        fn new(shape: u64) -> Self {
            Ticker {
                now: Time::ZERO,
                ticks: 0,
                trace: Trace::new(),
                shape,
            }
        }
    }

    impl ForkableSim for Ticker {
        type Error = Infallible;

        fn advance_to(&mut self, t: Time) -> Result<(), Infallible> {
            while self.now + Time::from_ns(1) <= t {
                self.now += Time::from_ns(1);
                self.ticks += 1;
                let bit = if self.ticks.is_multiple_of(2) {
                    Logic::Zero
                } else {
                    Logic::One
                };
                self.trace.record_digital("tick", self.now, bit).unwrap();
            }
            Ok(())
        }

        fn current_time(&self) -> Time {
            self.now
        }

        fn snapshot_trace(&self) -> Trace {
            self.trace.clone()
        }

        fn structural_fingerprint(&self) -> u64 {
            self.shape
        }
    }

    #[test]
    fn fork_resumes_with_prefix_trace() {
        let mut sim = Ticker::new(7);
        sim.advance_to(Time::from_ns(5)).unwrap();
        let cp = Checkpoint::capture(&sim);
        assert_eq!(cp.at(), Time::from_ns(5));

        // The original keeps running; the fork is independent.
        sim.advance_to(Time::from_ns(20)).unwrap();
        let mut fork = cp.fork();
        assert_eq!(fork.current_time(), Time::from_ns(5));
        fork.advance_to(Time::from_ns(10)).unwrap();
        assert_eq!(fork.ticks, 10);
        assert_eq!(sim.ticks, 20);
        // The fork's trace carries the golden prefix.
        let w = fork.snapshot_trace();
        assert_eq!(
            w.digital("tick").unwrap().value_at(Time::from_ns(1)),
            Logic::One
        );
    }

    #[test]
    fn forked_run_equals_scratch_run() {
        let mut golden = Ticker::new(1);
        golden.advance_to(Time::from_ns(8)).unwrap();
        let cp = Checkpoint::capture(&golden);
        let mut fork = cp.fork();
        fork.advance_to(Time::from_ns(30)).unwrap();

        let mut scratch = Ticker::new(1);
        scratch.advance_to(Time::from_ns(8)).unwrap();
        scratch.advance_to(Time::from_ns(30)).unwrap();
        assert_eq!(fork.snapshot_trace(), scratch.snapshot_trace());
    }

    #[test]
    fn restore_validates_the_fingerprint() {
        let sim = Ticker::new(42);
        let cp = Checkpoint::capture(&sim);
        assert_eq!(cp.fingerprint(), 42);
        assert!(cp.restore_into(&Ticker::new(42)).is_ok());
        let err = cp.restore_into(&Ticker::new(43)).unwrap_err();
        assert_eq!(
            err,
            CheckpointMismatch {
                expected: 42,
                found: 43
            }
        );
        assert!(err.to_string().contains("fingerprint"));
    }

    #[test]
    fn fnv_field_delimiters_distinguish_splits() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.eat();
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.eat();
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
        // Deterministic across instances.
        let mut c = Fnv1a::new();
        c.write_str("ab");
        c.eat();
        c.write_str("c");
        assert_eq!(a.finish(), c.finish());
    }
}
