//! A named collection of monitored waveforms — the output of one simulation
//! run, digital and analog signals together.

use crate::{AnalogWave, DigitalWave, Logic, PushOutOfOrderError, Time};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The waveforms recorded by one simulation run.
///
/// Signals are keyed by hierarchical name (e.g. `"pll.vco_in"`). A `Trace`
/// is what the campaign engine compares between a golden run and each fault
/// injection run.
///
/// # Examples
///
/// ```
/// use amsfi_waves::{Logic, Time, Trace};
///
/// let mut trace = Trace::new();
/// trace.record_digital("clk", Time::ZERO, Logic::Zero)?;
/// trace.record_analog("vctrl", Time::ZERO, 2.5)?;
/// assert_eq!(trace.digital("clk").unwrap().value_at(Time::ZERO), Logic::Zero);
/// # Ok::<(), amsfi_waves::PushOutOfOrderError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    digital: BTreeMap<String, DigitalWave>,
    analog: BTreeMap<String, AnalogWave>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a transition to the named digital signal, creating it if
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`PushOutOfOrderError`] if `time` precedes the signal's last
    /// recorded transition.
    pub fn record_digital(
        &mut self,
        name: &str,
        time: Time,
        value: Logic,
    ) -> Result<(), PushOutOfOrderError> {
        if let Some(wave) = self.digital.get_mut(name) {
            wave.push(time, value)
        } else {
            let mut wave = DigitalWave::new();
            wave.push(time, value)?;
            self.digital.insert(name.to_owned(), wave);
            Ok(())
        }
    }

    /// Appends a sample to the named analog signal, creating it if needed.
    ///
    /// # Errors
    ///
    /// Returns [`PushOutOfOrderError`] if `time` precedes the signal's last
    /// recorded sample.
    pub fn record_analog(
        &mut self,
        name: &str,
        time: Time,
        value: f64,
    ) -> Result<(), PushOutOfOrderError> {
        if let Some(wave) = self.analog.get_mut(name) {
            wave.push(time, value)
        } else {
            let mut wave = AnalogWave::new();
            wave.push(time, value)?;
            self.analog.insert(name.to_owned(), wave);
            Ok(())
        }
    }

    /// The named digital waveform, if recorded.
    pub fn digital(&self, name: &str) -> Option<&DigitalWave> {
        self.digital.get(name)
    }

    /// The named analog waveform, if recorded.
    pub fn analog(&self, name: &str) -> Option<&AnalogWave> {
        self.analog.get(name)
    }

    /// Names of all recorded digital signals, sorted.
    pub fn digital_names(&self) -> impl Iterator<Item = &str> {
        self.digital.keys().map(String::as_str)
    }

    /// Names of all recorded analog signals, sorted.
    pub fn analog_names(&self) -> impl Iterator<Item = &str> {
        self.analog.keys().map(String::as_str)
    }

    /// Number of recorded signals (digital + analog).
    pub fn len(&self) -> usize {
        self.digital.len() + self.analog.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.digital.is_empty() && self.analog.is_empty()
    }

    /// The latest time appearing in any waveform.
    pub fn end_time(&self) -> Option<Time> {
        self.digital
            .values()
            .filter_map(DigitalWave::end_time)
            .chain(self.analog.values().filter_map(AnalogWave::end_time))
            .max()
    }

    /// Merges another trace into this one. Signals with the same name are
    /// replaced by `other`'s waveform.
    pub fn absorb(&mut self, other: Trace) {
        self.digital.extend(other.digital);
        self.analog.extend(other.analog);
    }

    /// Completes this trace (recorded up to time `at`) with `golden`'s
    /// records strictly after `at`.
    ///
    /// This is the reconvergence-seal splice of the batch simulator: once a
    /// mutant lane's full machine state is exactly equal to the golden
    /// machine's at `at`, its future is the golden future, so the lane's
    /// remaining waveform is the golden waveform. Because both sides record
    /// only value *changes* and the values at `at` agree, the spliced trace
    /// is identical to what simulating the lane to the end would record.
    pub fn splice_golden_suffix(&mut self, golden: &Trace, at: Time) {
        for (name, wave) in &golden.digital {
            for &(t, v) in wave.transitions() {
                if t > at {
                    self.record_digital(name, t, v)
                        .expect("golden suffix transition precedes lane prefix end");
                }
            }
        }
        for (name, wave) in &golden.analog {
            for &(t, v) in wave.samples() {
                if t > at {
                    self.record_analog(name, t, v)
                        .expect("golden suffix sample precedes lane prefix end");
                }
            }
        }
    }

    /// Approximate resident size of the recorded data in bytes: payload
    /// vectors plus signal names (map/allocator overhead excluded). Used
    /// for memory-telemetry counters such as the engine's shared
    /// golden-trace gauge.
    pub fn approx_bytes(&self) -> u64 {
        let digital: usize = self
            .digital
            .iter()
            .map(|(name, w)| name.len() + std::mem::size_of_val(w.transitions()))
            .sum();
        let analog: usize = self
            .analog
            .iter()
            .map(|(name, w)| name.len() + std::mem::size_of_val(w.samples()))
            .sum();
        (digital + analog) as u64
    }

    /// Renders the analog signals as CSV sampled every `step` over
    /// `[from, to]`, one time column plus one column per signal, suitable for
    /// external plotting of the paper's figures.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or negative.
    pub fn analog_csv(&self, from: Time, to: Time, step: Time) -> String {
        assert!(step > Time::ZERO, "step must be positive");
        let mut out = String::from("time_s");
        for name in self.analog.keys() {
            let _ = write!(out, ",{name}");
        }
        out.push('\n');
        let mut t = from;
        while t <= to {
            let _ = write!(out, "{}", t.as_secs_f64());
            for wave in self.analog.values() {
                let _ = write!(out, ",{}", wave.value_at(t));
            }
            out.push('\n');
            t += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_retrieves_both_kinds() {
        let mut tr = Trace::new();
        tr.record_digital("clk", Time::ZERO, Logic::One).unwrap();
        tr.record_digital("clk", Time::from_ns(10), Logic::Zero)
            .unwrap();
        tr.record_analog("vctrl", Time::ZERO, 2.5).unwrap();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.digital("clk").unwrap().len(), 2);
        assert_eq!(tr.analog("vctrl").unwrap().value_at(Time::ZERO), 2.5);
        assert!(tr.digital("nope").is_none());
        assert_eq!(tr.end_time(), Some(Time::from_ns(10)));
    }

    #[test]
    fn names_are_sorted() {
        let mut tr = Trace::new();
        tr.record_analog("b", Time::ZERO, 0.0).unwrap();
        tr.record_analog("a", Time::ZERO, 0.0).unwrap();
        let names: Vec<&str> = tr.analog_names().collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut tr = Trace::new();
        tr.record_analog("v", Time::ZERO, 1.0).unwrap();
        tr.record_analog("v", Time::from_ns(10), 2.0).unwrap();
        let csv = tr.analog_csv(Time::ZERO, Time::from_ns(10), Time::from_ns(5));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,v");
        assert_eq!(lines.len(), 4); // header + t=0,5,10 ns
        assert!(lines[2].ends_with("1.5"));
    }

    #[test]
    fn out_of_order_record_is_an_error() {
        let mut tr = Trace::new();
        tr.record_digital("s", Time::from_ns(5), Logic::One)
            .unwrap();
        assert!(tr.record_digital("s", Time::ZERO, Logic::Zero).is_err());
    }

    #[test]
    fn absorb_merges_traces() {
        let mut a = Trace::new();
        a.record_digital("clk", Time::ZERO, Logic::One).unwrap();
        let mut b = Trace::new();
        b.record_analog("v", Time::ZERO, 1.0).unwrap();
        b.record_digital("clk", Time::ZERO, Logic::Zero).unwrap();
        a.absorb(b);
        assert_eq!(a.len(), 2);
        // The absorbed trace wins on name clashes.
        assert_eq!(a.digital("clk").unwrap().value_at(Time::ZERO), Logic::Zero);
    }
}
