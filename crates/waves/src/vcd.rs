//! Value-change-dump (VCD) export, so recorded traces open directly in
//! GTKWave or any other standard waveform viewer.
//!
//! Digital signals are emitted as 1-bit wires (bus bits recorded as
//! `name[i]` appear as separate wires, which viewers regroup); analog
//! signals are emitted as IEEE 1364-2001 `real` variables.

use crate::{Logic, Time, Trace};
use std::fmt::Write as _;

fn vcd_logic(value: Logic) -> char {
    match value.to_x01() {
        Logic::Zero => '0',
        Logic::One => '1',
        _ => {
            if value == Logic::HighZ {
                'z'
            } else {
                'x'
            }
        }
    }
}

/// A compact VCD identifier for variable `index` (printable ASCII 33..=126).
fn vcd_id(mut index: usize) -> String {
    let mut out = String::new();
    loop {
        out.push((33 + (index % 94)) as u8 as char);
        index /= 94;
        if index == 0 {
            return out;
        }
        index -= 1;
    }
}

/// Renders the trace as a VCD document with 1 fs timescale.
///
/// # Examples
///
/// ```
/// use amsfi_waves::{vcd, Logic, Time, Trace};
///
/// let mut trace = Trace::new();
/// trace.record_digital("clk", Time::ZERO, Logic::Zero)?;
/// trace.record_digital("clk", Time::from_ns(10), Logic::One)?;
/// trace.record_analog("vctrl", Time::ZERO, 2.5)?;
/// let out = vcd::to_vcd(&trace, "amsfi run");
/// assert!(out.contains("$timescale 1 fs $end"));
/// assert!(out.contains("$var wire 1"));
/// assert!(out.contains("$var real 64"));
/// # Ok::<(), amsfi_waves::PushOutOfOrderError>(())
/// ```
pub fn to_vcd(trace: &Trace, comment: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$comment {comment} $end");
    let _ = writeln!(out, "$version amsfi trace export $end");
    let _ = writeln!(out, "$timescale 1 fs $end");
    let _ = writeln!(out, "$scope module amsfi $end");
    let mut ids = Vec::new();
    let mut next = 0usize;
    for name in trace.digital_names() {
        let id = vcd_id(next);
        next += 1;
        let _ = writeln!(out, "$var wire 1 {id} {} $end", vcd_name(name));
        ids.push(id);
    }
    let mut analog_ids = Vec::new();
    for name in trace.analog_names() {
        let id = vcd_id(next);
        next += 1;
        let _ = writeln!(out, "$var real 64 {id} {} $end", vcd_name(name));
        analog_ids.push(id);
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Merge all change events, time-ordered.
    enum Change<'a> {
        Digital(&'a str, Logic),
        Analog(&'a str, f64),
    }
    let digital_ids: std::collections::BTreeMap<&str, &str> = trace
        .digital_names()
        .zip(ids.iter().map(String::as_str))
        .collect();
    let analog_id_map: std::collections::BTreeMap<&str, &str> = trace
        .analog_names()
        .zip(analog_ids.iter().map(String::as_str))
        .collect();
    let mut events: Vec<(Time, Change<'_>)> = Vec::new();
    for name in trace.digital_names() {
        for &(t, v) in trace.digital(name).expect("listed").transitions() {
            events.push((t, Change::Digital(name, v)));
        }
    }
    for name in trace.analog_names() {
        for &(t, v) in trace.analog(name).expect("listed").samples() {
            events.push((t, Change::Analog(name, v)));
        }
    }
    events.sort_by_key(|&(t, _)| t);

    let mut current: Option<Time> = None;
    for (t, change) in events {
        if current != Some(t) {
            let _ = writeln!(out, "#{}", t.as_fs());
            current = Some(t);
        }
        match change {
            Change::Digital(name, v) => {
                let _ = writeln!(out, "{}{}", vcd_logic(v), digital_ids[name]);
            }
            Change::Analog(name, v) => {
                let _ = writeln!(out, "r{v} {}", analog_id_map[name]);
            }
        }
    }
    out
}

/// VCD variable names cannot contain whitespace; bus-bit suffixes `[i]` are
/// legal and understood by viewers.
fn vcd_name(name: &str) -> String {
    name.replace([' ', '\t'], "_")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.record_digital("clk", Time::ZERO, Logic::Zero).unwrap();
        t.record_digital("clk", Time::from_ns(10), Logic::One)
            .unwrap();
        t.record_digital("q[0]", Time::from_ns(10), Logic::Unknown)
            .unwrap();
        t.record_analog("vctrl", Time::ZERO, 2.5).unwrap();
        t.record_analog("vctrl", Time::from_ns(5), 2.75).unwrap();
        t
    }

    #[test]
    fn header_and_definitions() {
        let vcd = to_vcd(&sample_trace(), "test");
        assert!(vcd.starts_with("$comment test $end"));
        assert!(vcd.contains("$var wire 1 ! clk $end"));
        assert!(vcd.contains("$var wire 1 \" q[0] $end"));
        assert!(vcd.contains("$var real 64 # vctrl $end"));
        assert!(vcd.contains("$enddefinitions $end"));
    }

    #[test]
    fn changes_are_time_ordered_and_grouped() {
        let vcd = to_vcd(&sample_trace(), "test");
        let t0 = vcd.find("#0\n").expect("time 0 stamp");
        let t5 = vcd.find("#5000000\n").expect("5 ns stamp");
        let t10 = vcd.find("#10000000\n").expect("10 ns stamp");
        assert!(t0 < t5 && t5 < t10);
        // Both 10 ns changes share one timestamp.
        assert_eq!(vcd.matches("#10000000\n").count(), 1);
    }

    #[test]
    fn logic_values_map_to_vcd_chars() {
        let vcd = to_vcd(&sample_trace(), "test");
        assert!(vcd.contains("0!"), "clk low at t0");
        assert!(vcd.contains("1!"), "clk high at 10 ns");
        assert!(vcd.contains("x\""), "q[0] unknown");
        assert!(vcd.contains("r2.5 #"), "real sample");
    }

    #[test]
    fn id_generation_is_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = vcd_id(i);
            assert!(id.chars().all(|c| (33..=126).contains(&(c as u32))));
            assert!(seen.insert(id), "duplicate id for {i}");
        }
        assert_eq!(vcd_id(0), "!");
        assert_eq!(vcd_id(94), "!!");
    }
}
