//! Streaming (single-pass) golden-vs-faulty comparison.
//!
//! The batch comparators in `compare` resolve every observation time with
//! `value_at()` — a binary search per observation, O(n log n) per signal —
//! and need the complete faulty wave up front. This module is the O(n)
//! replacement: monotone *merge cursors* walk both waves exactly once,
//! feeding an incremental interval builder, and — because they never look
//! past a caller-supplied bound — they can run *while the faulty wave is
//! still being recorded*. That is the substrate for early-verdict
//! classification: an online classifier advances each signal's stream to
//! the frozen prefix of the faulty trace between simulation steps (via a
//! [`SimObserver`] hook installed on the kernel) and seals the verdict the
//! moment no future observation can change it.
//!
//! # Finality contract
//!
//! A caller advancing a stream to `upto` asserts that both waves are
//! *final* up to and including `upto`: every recorded point at `t <= upto`
//! is immutable and no point with `t <= upto` will be appended later. The
//! simulation kernels guarantee this for any time *strictly below* their
//! current watermark — they only append at or after the instant they are
//! currently executing (a mixed-signal digitizer crossing may clamp an
//! injected edge back to the current sync-step start, so the watermark
//! instant itself is not yet final). Digital comparisons with an edge-skew
//! tolerance additionally read values at `t + skew`, so their safe bound is
//! `watermark - skew` (exclusive); analog comparisons interpolate, so their
//! safe bound is `min(watermark, last faulty sample)`.

use crate::{
    AnalogWave, DigitalWave, Logic, MismatchInterval, SignalComparison, Time, Tolerance, Trace,
};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Default number of kernel steps between [`SimObserver`] hook invocations.
///
/// Matches the clock-probe stride of the simulation budgets: frequent
/// enough that a sealed case stops within microseconds of simulated time,
/// rare enough that the hook costs nothing measurable per step.
pub const OBSERVER_STRIDE: u32 = 64;

/// A monotone replacement for [`DigitalWave::value_at`]: amortized O(1)
/// per query as long as query times never decrease.
#[derive(Debug, Clone, Copy, Default)]
struct DigitalValueCursor {
    /// Number of transitions at or before the last queried time.
    idx: usize,
}

impl DigitalValueCursor {
    fn value_at(&mut self, wave: &DigitalWave, t: Time) -> Logic {
        let tr = wave.transitions();
        while self.idx < tr.len() && tr[self.idx].0 <= t {
            self.idx += 1;
        }
        if self.idx == 0 {
            Logic::Uninitialized
        } else {
            tr[self.idx - 1].1
        }
    }
}

/// A monotone replacement for [`AnalogWave::value_at`]: amortized O(1)
/// per query as long as query times never decrease.
#[derive(Debug, Clone, Copy, Default)]
struct AnalogValueCursor {
    /// Number of samples at or before the last queried time.
    idx: usize,
}

impl AnalogValueCursor {
    fn value_at(&mut self, wave: &AnalogWave, t: Time) -> f64 {
        let s = wave.samples();
        if s.is_empty() {
            return 0.0;
        }
        while self.idx < s.len() && s[self.idx].0 <= t {
            self.idx += 1;
        }
        if self.idx == 0 {
            return s[0].1;
        }
        if self.idx == s.len() {
            return s[self.idx - 1].1;
        }
        let (t0, v0) = s[self.idx - 1];
        let (t1, v1) = s[self.idx];
        let frac = (t - t0).as_fs() as f64 / (t1 - t0).as_fs() as f64;
        v0 + (v1 - v0) * frac
    }
}

/// Incremental equivalent of the batch interval builder: mismatch
/// observations extend to the next observation, and intervals closer than
/// `merge_gap` fuse. Feeding the same `(time, matched)` sequence produces
/// byte-identical intervals.
#[derive(Debug, Clone, Default)]
struct IntervalBuilder {
    merge_gap: Time,
    intervals: Vec<MismatchInterval>,
    /// The previous observation mismatched at this time; its interval stays
    /// open until the next observation closes (and bounds) it.
    open: Option<Time>,
    /// Most recent mismatching observation time.
    last_mismatch: Option<Time>,
}

impl IntervalBuilder {
    fn new(merge_gap: Time) -> Self {
        IntervalBuilder {
            merge_gap,
            ..IntervalBuilder::default()
        }
    }

    fn observe(&mut self, t: Time, matched: bool) {
        if let Some(from) = self.open.take() {
            self.push(from, t);
        }
        if !matched {
            self.open = Some(t);
            self.last_mismatch = Some(t);
        }
    }

    fn push(&mut self, from: Time, end: Time) {
        match self.intervals.last_mut() {
            Some(last) if from - last.to <= self.merge_gap => last.to = last.to.max(end),
            _ => self.intervals.push(MismatchInterval { from, to: end }),
        }
    }

    /// Closes a still-open mismatch at its own time (it was the final
    /// observation, so it extends no further).
    fn finalize(&mut self) {
        if let Some(from) = self.open.take() {
            self.push(from, from);
        }
    }
}

/// One merged observation-time source: the transition/sample times of one
/// wave, shifted by `offset` (the `±skew` expansion of the batch path).
#[derive(Debug, Clone, Copy)]
struct ObsSource {
    /// `true` reads the golden wave, `false` the faulty wave.
    golden: bool,
    offset: Time,
    idx: usize,
}

/// Sentinel for "nothing processed yet" — below every representable time.
const UNSET: Time = Time::from_fs(i64::MIN);

/// A streaming digital comparator: equivalent to the batch
/// `compare_digital_with_skew`, but incremental and O(n).
///
/// Feed it monotonically increasing finality bounds with
/// [`DigitalStream::advance`]; read partial state any time; obtain the
/// exact batch result with [`DigitalStream::finish`] once both waves are
/// complete.
#[derive(Debug, Clone)]
pub struct DigitalStream {
    from: Time,
    to: Time,
    skew: Time,
    sources: [ObsSource; 6],
    nsources: usize,
    f_at: DigitalValueCursor,
    g_at: DigitalValueCursor,
    g_minus: DigitalValueCursor,
    g_plus: DigitalValueCursor,
    build: IntervalBuilder,
    emitted_from: bool,
    last_obs: Time,
    limit: Time,
    finished: bool,
}

impl DigitalStream {
    /// A stream comparing over `[from, to]` with the given merge gap and
    /// edge-skew tolerance (the exact parameters of the batch path).
    pub fn new(from: Time, to: Time, merge_gap: Time, skew: Time) -> Self {
        let mut sources = [ObsSource {
            golden: true,
            offset: Time::ZERO,
            idx: 0,
        }; 6];
        let offsets: &[Time] = if skew > Time::ZERO {
            &[Time::ZERO, -skew, skew]
        } else {
            &[Time::ZERO]
        };
        let mut n = 0;
        for &golden in &[true, false] {
            for &offset in offsets {
                sources[n] = ObsSource {
                    golden,
                    offset,
                    idx: 0,
                };
                n += 1;
            }
        }
        DigitalStream {
            from,
            to,
            skew,
            sources,
            nsources: n,
            f_at: DigitalValueCursor::default(),
            g_at: DigitalValueCursor::default(),
            g_minus: DigitalValueCursor::default(),
            g_plus: DigitalValueCursor::default(),
            build: IntervalBuilder::new(merge_gap),
            emitted_from: false,
            last_obs: UNSET,
            limit: UNSET,
            finished: false,
        }
    }

    fn observe(&mut self, golden: &DigitalWave, faulty: &DigitalWave, t: Time) {
        let f = self.f_at.value_at(faulty, t).to_x01();
        let matched = if self.g_at.value_at(golden, t).to_x01() == f {
            true
        } else {
            self.skew > Time::ZERO
                && (self.g_minus.value_at(golden, t - self.skew).to_x01() == f
                    || self.g_plus.value_at(golden, t + self.skew).to_x01() == f)
        };
        self.build.observe(t, matched);
        self.last_obs = t;
    }

    /// Processes every observation at `t <= min(upto, to)` not yet
    /// processed. Both waves must be final up to `upto + skew` (see the
    /// module-level finality contract).
    pub fn advance(&mut self, golden: &DigitalWave, faulty: &DigitalWave, upto: Time) {
        if self.finished {
            return;
        }
        let cap = upto.min(self.to);
        if cap > self.limit {
            self.limit = cap;
        }
        if cap < self.from {
            return;
        }
        if !self.emitted_from {
            self.emitted_from = true;
            self.observe(golden, faulty, self.from);
        }
        loop {
            let mut best: Option<Time> = None;
            for i in 0..self.nsources {
                let src = &mut self.sources[i];
                let tr = if src.golden {
                    golden.transitions()
                } else {
                    faulty.transitions()
                };
                while src.idx < tr.len() && tr[src.idx].0 + src.offset <= self.last_obs {
                    src.idx += 1;
                }
                if src.idx < tr.len() {
                    let t = tr[src.idx].0 + src.offset;
                    if t <= cap && best.is_none_or(|b| t < b) {
                        best = Some(t);
                    }
                }
            }
            match best {
                Some(t) => self.observe(golden, faulty, t),
                None => break,
            }
        }
    }

    /// Processes everything up to the window end, emits the closing
    /// sentinel observation and returns the completed comparison. Requires
    /// both waves to be fully recorded. Idempotent.
    pub fn finish(&mut self, golden: &DigitalWave, faulty: &DigitalWave) -> SignalComparison {
        if !self.finished {
            if self.from <= self.to {
                self.advance(golden, faulty, self.to);
                if self.last_obs < self.to {
                    self.observe(golden, faulty, self.to);
                }
            } else {
                // Degenerate inverted window: the batch path sorts the two
                // sentinels, observing `to` then `from`.
                self.observe(golden, faulty, self.to);
                self.observe(golden, faulty, self.from);
            }
            self.build.finalize();
            self.finished = true;
        }
        SignalComparison {
            mismatches: self.build.intervals.clone(),
        }
    }

    /// Mismatch intervals closed so far (an open mismatch is not included
    /// until the observation that bounds it — see
    /// [`DigitalStream::open_since`]).
    pub fn intervals(&self) -> &[MismatchInterval] {
        &self.build.intervals
    }

    /// Start of the currently open (still mismatching) interval, if any.
    pub fn open_since(&self) -> Option<Time> {
        self.build.open
    }

    /// Time of the most recent mismatching observation, if any.
    pub fn last_mismatch_obs(&self) -> Option<Time> {
        self.build.last_mismatch
    }

    /// True if any mismatch (closed or open) has been observed.
    pub fn any_mismatch(&self) -> bool {
        !self.build.intervals.is_empty() || self.build.open.is_some()
    }

    /// The highest finality bound processed so far, clamped to the window
    /// end.
    pub fn processed_to(&self) -> Time {
        self.limit
    }

    /// True once [`DigitalStream::finish`] has run.
    pub fn is_finished(&self) -> bool {
        self.finished
    }
}

/// A streaming analog comparator: equivalent to the batch
/// `compare_analog`, but incremental and O(n).
#[derive(Debug, Clone)]
pub struct AnalogStream {
    from: Time,
    to: Time,
    tolerance: Tolerance,
    g_idx: usize,
    f_idx: usize,
    g_val: AnalogValueCursor,
    f_val: AnalogValueCursor,
    build: IntervalBuilder,
    emitted_from: bool,
    last_obs: Time,
    limit: Time,
    finished: bool,
}

impl AnalogStream {
    /// A stream comparing over `[from, to]` with the given tolerance and
    /// merge gap (the exact parameters of the batch path).
    pub fn new(from: Time, to: Time, tolerance: Tolerance, merge_gap: Time) -> Self {
        AnalogStream {
            from,
            to,
            tolerance,
            g_idx: 0,
            f_idx: 0,
            g_val: AnalogValueCursor::default(),
            f_val: AnalogValueCursor::default(),
            build: IntervalBuilder::new(merge_gap),
            emitted_from: false,
            last_obs: UNSET,
            limit: UNSET,
            finished: false,
        }
    }

    fn observe(&mut self, golden: &AnalogWave, faulty: &AnalogWave, t: Time) {
        let matched = self.tolerance.matches(
            self.g_val.value_at(golden, t),
            self.f_val.value_at(faulty, t),
        );
        self.build.observe(t, matched);
        self.last_obs = t;
    }

    /// Processes every observation at `t <= min(upto, to)` not yet
    /// processed. Both waves must be final up to `upto` — for a faulty
    /// wave still being recorded that means
    /// `upto <= min(watermark - 1 fs, last faulty sample)`.
    pub fn advance(&mut self, golden: &AnalogWave, faulty: &AnalogWave, upto: Time) {
        if self.finished {
            return;
        }
        let cap = upto.min(self.to);
        if cap > self.limit {
            self.limit = cap;
        }
        if cap < self.from {
            return;
        }
        if !self.emitted_from {
            self.emitted_from = true;
            self.observe(golden, faulty, self.from);
        }
        loop {
            let gs = golden.samples();
            while self.g_idx < gs.len() && gs[self.g_idx].0 <= self.last_obs {
                self.g_idx += 1;
            }
            let fs = faulty.samples();
            while self.f_idx < fs.len() && fs[self.f_idx].0 <= self.last_obs {
                self.f_idx += 1;
            }
            let g_head = gs.get(self.g_idx).map(|&(t, _)| t).filter(|&t| t <= cap);
            let f_head = fs.get(self.f_idx).map(|&(t, _)| t).filter(|&t| t <= cap);
            let t = match (g_head, f_head) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            self.observe(golden, faulty, t);
        }
    }

    /// Processes everything up to the window end, emits the closing
    /// sentinel observation and returns the completed comparison. Requires
    /// both waves to be fully recorded. Idempotent.
    pub fn finish(&mut self, golden: &AnalogWave, faulty: &AnalogWave) -> SignalComparison {
        if !self.finished {
            if self.from <= self.to {
                self.advance(golden, faulty, self.to);
                if self.last_obs < self.to {
                    self.observe(golden, faulty, self.to);
                }
            } else {
                self.observe(golden, faulty, self.to);
                self.observe(golden, faulty, self.from);
            }
            self.build.finalize();
            self.finished = true;
        }
        SignalComparison {
            mismatches: self.build.intervals.clone(),
        }
    }

    /// Mismatch intervals closed so far.
    pub fn intervals(&self) -> &[MismatchInterval] {
        &self.build.intervals
    }

    /// Start of the currently open (still mismatching) interval, if any.
    pub fn open_since(&self) -> Option<Time> {
        self.build.open
    }

    /// Time of the most recent mismatching observation, if any.
    pub fn last_mismatch_obs(&self) -> Option<Time> {
        self.build.last_mismatch
    }

    /// True if any mismatch (closed or open) has been observed.
    pub fn any_mismatch(&self) -> bool {
        !self.build.intervals.is_empty() || self.build.open.is_some()
    }

    /// The highest finality bound processed so far, clamped to the window
    /// end.
    pub fn processed_to(&self) -> Time {
        self.limit
    }

    /// True once [`AnalogStream::finish`] has run.
    pub fn is_finished(&self) -> bool {
        self.finished
    }
}

/// A read-only view over the traces a (possibly composite) simulator has
/// recorded so far. A mixed-signal kernel exposes its digital and analog
/// sub-traces as separate parts without merging (merging clones); lookups
/// scan the parts in order.
#[derive(Debug, Clone, Copy)]
pub struct TraceView<'a> {
    parts: &'a [&'a Trace],
}

impl<'a> TraceView<'a> {
    /// A view over the given trace parts.
    pub fn new(parts: &'a [&'a Trace]) -> Self {
        TraceView { parts }
    }

    /// The named digital waveform from the first part recording it.
    pub fn digital(&self, name: &str) -> Option<&'a DigitalWave> {
        self.parts.iter().find_map(|t| t.digital(name))
    }

    /// The named analog waveform from the first part recording it.
    pub fn analog(&self, name: &str) -> Option<&'a AnalogWave> {
        self.parts.iter().find_map(|t| t.analog(name))
    }
}

/// The callback a [`SimObserver`] invokes: current simulation time (the
/// *watermark* — everything strictly below it is final) plus a view of the
/// traces recorded so far.
type ObserverHook = dyn FnMut(Time, &TraceView<'_>) + Send;

/// A periodic observation hook a simulation kernel polls from its step
/// loop.
///
/// Installed via [`ForkableSim::install_observer`](crate::ForkableSim);
/// the kernel calls [`SimObserver::poll`] once per step (or sync
/// iteration) at a point where every recorded value strictly below the
/// current time is final. The hook itself only runs every
/// [`OBSERVER_STRIDE`] polls, so the per-step cost is a counter decrement.
///
/// Clones share the underlying hook (so a kernel snapshot does not
/// duplicate an online classifier) but keep independent stride counters.
#[derive(Clone)]
pub struct SimObserver {
    stride: u32,
    countdown: u32,
    hook: Arc<Mutex<ObserverHook>>,
}

impl fmt::Debug for SimObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimObserver")
            .field("stride", &self.stride)
            .field("countdown", &self.countdown)
            .finish()
    }
}

impl SimObserver {
    /// Wraps a hook with the default [`OBSERVER_STRIDE`].
    pub fn new<F>(hook: F) -> Self
    where
        F: FnMut(Time, &TraceView<'_>) + Send + 'static,
    {
        SimObserver {
            stride: OBSERVER_STRIDE,
            countdown: 0,
            hook: Arc::new(Mutex::new(hook)),
        }
    }

    /// Overrides the poll stride (clamped to at least 1).
    #[must_use]
    pub fn with_stride(mut self, stride: u32) -> Self {
        self.stride = stride.max(1);
        self
    }

    /// Stride-gated hook invocation: cheap enough for a kernel's inner
    /// loop. `now` is the watermark; `parts` are the traces recorded so
    /// far.
    pub fn poll(&mut self, now: Time, parts: &[&Trace]) {
        if self.countdown > 0 {
            self.countdown -= 1;
            return;
        }
        self.countdown = self.stride.saturating_sub(1);
        self.flush(now, parts);
    }

    /// Ungated hook invocation (used at natural boundaries such as the end
    /// of an `advance_to`). A poisoned hook (a previous invocation
    /// panicked) is skipped.
    pub fn flush(&mut self, now: Time, parts: &[&Trace]) {
        if let Ok(mut hook) = self.hook.lock() {
            let view = TraceView::new(parts);
            hook(now, &view);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::baseline;
    use crate::{compare_analog, compare_digital_with_skew};

    fn dwave(points: &[(i64, Logic)]) -> DigitalWave {
        let mut w = DigitalWave::new();
        for &(ns, v) in points {
            w.push(Time::from_ns(ns), v).unwrap();
        }
        w
    }

    fn awave(points: &[(i64, f64)]) -> AnalogWave {
        AnalogWave::from_samples(points.iter().map(|&(ns, v)| (Time::from_ns(ns), v)))
    }

    #[test]
    fn digital_stream_matches_batch_and_baseline() {
        let g = dwave(&[(0, Logic::Zero), (100, Logic::One), (300, Logic::Zero)]);
        let f = dwave(&[
            (0, Logic::Zero),
            (102, Logic::One),
            (150, Logic::Zero),
            (160, Logic::One),
            (300, Logic::Zero),
        ]);
        for skew_ns in [0i64, 1, 5] {
            let skew = Time::from_ns(skew_ns);
            let batch = compare_digital_with_skew(
                &g,
                &f,
                Time::ZERO,
                Time::from_ns(400),
                Time::from_ns(5),
                skew,
            );
            let base = baseline::compare_digital_with_skew(
                &g,
                &f,
                Time::ZERO,
                Time::from_ns(400),
                Time::from_ns(5),
                skew,
            );
            assert_eq!(batch, base, "skew {skew_ns} ns");
        }
    }

    #[test]
    fn digital_stream_is_chunk_invariant() {
        let g = dwave(&[(0, Logic::Zero), (100, Logic::One)]);
        let f = dwave(&[(0, Logic::Zero), (103, Logic::One), (250, Logic::Zero)]);
        let (from, to) = (Time::ZERO, Time::from_ns(400));
        let gap = Time::from_ns(10);
        let skew = Time::from_ns(2);
        let mut chunked = DigitalStream::new(from, to, gap, skew);
        for upto_ns in [0i64, 50, 103, 104, 200, 399] {
            chunked.advance(&g, &f, Time::from_ns(upto_ns));
        }
        let chunked = chunked.finish(&g, &f);
        let oneshot = DigitalStream::new(from, to, gap, skew).finish(&g, &f);
        assert_eq!(chunked, oneshot);
        assert_eq!(
            chunked,
            baseline::compare_digital_with_skew(&g, &f, from, to, gap, skew)
        );
    }

    #[test]
    fn analog_stream_matches_baseline() {
        let g = awave(&[(0, 2.5), (1000, 2.5)]);
        let f = awave(&[(0, 2.5), (400, 2.5), (500, 3.2), (600, 2.5), (1000, 2.5)]);
        let tol = Tolerance::absolute(0.1);
        let gap = Time::from_ns(100);
        let batch = compare_analog(&g, &f, Time::ZERO, Time::from_us(1), tol, gap);
        let base = baseline::compare_analog(&g, &f, Time::ZERO, Time::from_us(1), tol, gap);
        assert_eq!(batch, base);
        assert_eq!(batch.first_divergence(), Some(Time::from_ns(500)));
    }

    #[test]
    fn analog_stream_is_chunk_invariant() {
        let g = awave(&[(0, 1.0), (1000, 1.0)]);
        let f = awave(&[(0, 1.0), (300, 5.0), (700, 1.0), (1000, 1.0)]);
        let tol = Tolerance::absolute(0.5);
        let gap = Time::from_ns(50);
        let (from, to) = (Time::from_ns(100), Time::from_ns(900));
        let mut chunked = AnalogStream::new(from, to, tol, gap);
        for upto_ns in [0i64, 150, 300, 301, 699, 700, 850] {
            chunked.advance(&g, &f, Time::from_ns(upto_ns));
        }
        let chunked = chunked.finish(&g, &f);
        assert_eq!(
            chunked,
            baseline::compare_analog(&g, &f, from, to, tol, gap)
        );
    }

    #[test]
    fn open_mismatch_is_visible_before_it_closes() {
        let g = dwave(&[(0, Logic::Zero)]);
        let f = dwave(&[(0, Logic::Zero), (100, Logic::One)]);
        let mut s = DigitalStream::new(Time::ZERO, Time::from_ns(1000), Time::ZERO, Time::ZERO);
        s.advance(&g, &f, Time::from_ns(500));
        assert!(s.any_mismatch());
        assert_eq!(s.open_since(), Some(Time::from_ns(100)));
        assert_eq!(s.last_mismatch_obs(), Some(Time::from_ns(100)));
        assert!(s.intervals().is_empty(), "not closed yet");
        let cmp = s.finish(&g, &f);
        assert_eq!(cmp.first_divergence(), Some(Time::from_ns(100)));
        assert_eq!(cmp.last_divergence(), Some(Time::from_ns(1000)));
    }

    #[test]
    fn empty_window_single_observation() {
        let g = dwave(&[(0, Logic::Zero)]);
        let f = dwave(&[(0, Logic::One)]);
        let t = Time::from_ns(10);
        let cmp = DigitalStream::new(t, t, Time::ZERO, Time::ZERO).finish(&g, &f);
        assert_eq!(
            cmp,
            baseline::compare_digital_with_skew(&g, &f, t, t, Time::ZERO, Time::ZERO)
        );
        assert!(!cmp.is_match());
    }

    #[test]
    fn observer_stride_gates_hook_invocations() {
        let count = Arc::new(Mutex::new(0u32));
        let c = Arc::clone(&count);
        let mut obs = SimObserver::new(move |_, _| *c.lock().unwrap() += 1).with_stride(4);
        let trace = Trace::new();
        for i in 0..9 {
            obs.poll(Time::from_ns(i), &[&trace]);
        }
        assert_eq!(*count.lock().unwrap(), 3, "polls 0, 4, 8 fire");
        obs.flush(Time::from_ns(9), &[&trace]);
        assert_eq!(*count.lock().unwrap(), 4);
    }

    #[test]
    fn trace_view_scans_parts_in_order() {
        let mut a = Trace::new();
        a.record_digital("d", Time::ZERO, Logic::One).unwrap();
        let mut b = Trace::new();
        b.record_analog("v", Time::ZERO, 1.5).unwrap();
        let parts = [&a, &b];
        let view = TraceView::new(&parts);
        assert!(view.digital("d").is_some());
        assert_eq!(view.analog("v").unwrap().value_at(Time::ZERO), 1.5);
        assert!(view.digital("nope").is_none());
    }
}
