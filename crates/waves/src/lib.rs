//! Signal values, waveforms and measurements for the `amsfi` mixed-signal
//! fault-injection framework.
//!
//! This crate provides the vocabulary shared by every other `amsfi` crate:
//!
//! * [`Time`] — integer femtosecond simulation time (exact event ordering
//!   from 40 ps pulse edges up to millisecond transients);
//! * [`Logic`] and [`LogicVector`] — IEEE 1164-style nine-valued logic with
//!   driver resolution, the value system of the digital simulator;
//! * [`DigitalWave`], [`AnalogWave`] and [`Trace`] — recorded waveforms, the
//!   raw material of fault classification;
//! * [`measure`] — periods, frequencies, threshold crossings, deviation and
//!   perturbation-duration metrics (the quantities read off the paper's
//!   figures);
//! * [`Tolerance`] and the comparison functions — golden-vs-faulty matching
//!   with the analog tolerance required by the paper's Section 4.1.
//!
//! # Example
//!
//! Measuring how long a transient perturbs a clock, as in the paper's Fig. 6:
//!
//! ```
//! use amsfi_waves::{measure, DigitalWave, Logic, Time};
//!
//! let mut clk = DigitalWave::new();
//! let mut t = Time::ZERO;
//! for period_ns in [20i64, 20, 22, 21, 20, 20] {
//!     clk.push(t, Logic::One)?;
//!     clk.push(t + Time::from_ns(period_ns) / 2, Logic::Zero)?;
//!     t += Time::from_ns(period_ns);
//! }
//! clk.push(t, Logic::One)?;
//!
//! let (perturbed, worst) = measure::perturbed_cycles(
//!     &clk,
//!     Time::ZERO,
//!     t,
//!     Time::from_ns(20),
//!     Time::from_ps(500),
//! );
//! assert_eq!(perturbed, 2);
//! assert_eq!(worst, Some(Time::from_ns(22)));
//! # Ok::<(), amsfi_waves::PushOutOfOrderError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compare;
mod fork;
mod guard;
mod logic;
pub mod measure;
mod stream;
mod time;
mod trace;
pub mod vcd;
mod vector;
mod wave;

pub use amsfi_telemetry::KernelMetrics;
pub use compare::{
    baseline, compare_analog, compare_digital, compare_digital_with_skew, MismatchInterval,
    SignalComparison, Tolerance,
};
pub use fork::{Checkpoint, CheckpointMismatch, Fnv1a, ForkableSim};
pub use guard::{CancelToken, GuardViolation, SimBudget, CLOCK_STRIDE};
pub use logic::{Logic, LogicPlanes, LANES};
pub use stream::{AnalogStream, DigitalStream, SimObserver, TraceView, OBSERVER_STRIDE};
pub use time::Time;
pub use trace::Trace;
pub use vector::{LogicVector, ParseLogicVectorError};
pub use wave::{AnalogWave, DigitalWave, PushOutOfOrderError};
