//! Fixed-width vectors of [`Logic`] values (buses, registers).

use crate::{Logic, LogicPlanes, LANES};
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Index, IndexMut, Not};
use std::str::FromStr;

/// A bus of [`Logic`] values.
///
/// Bit 0 is the least-significant bit; [`fmt::Display`] prints MSB first, as
/// a VHDL bit-string literal would.
///
/// # Examples
///
/// ```
/// use amsfi_waves::LogicVector;
///
/// let v = LogicVector::from_u64(0b1010, 4);
/// assert_eq!(v.to_string(), "1010");
/// assert_eq!(v.to_u64(), Some(10));
/// let flipped = {
///     let mut w = v.clone();
///     w.flip_bit(0);
///     w
/// };
/// assert_eq!(flipped.to_u64(), Some(11));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LogicVector {
    bits: Vec<Logic>,
}

impl LogicVector {
    /// A vector of `width` bits, all `'U'` (the power-on state).
    pub fn new(width: usize) -> Self {
        LogicVector {
            bits: vec![Logic::Uninitialized; width],
        }
    }

    /// A vector of `width` bits, all set to `value`.
    pub fn filled(value: Logic, width: usize) -> Self {
        LogicVector {
            bits: vec![value; width],
        }
    }

    /// A vector of `width` zero bits.
    pub fn zeros(width: usize) -> Self {
        Self::filled(Logic::Zero, width)
    }

    /// Encodes the low `width` bits of `value`, LSB at index 0.
    pub fn from_u64(value: u64, width: usize) -> Self {
        LogicVector {
            bits: (0..width)
                .map(|i| Logic::from_bool(value >> i & 1 == 1))
                .collect(),
        }
    }

    /// Builds from a slice of booleans, index 0 = LSB.
    pub fn from_bools(bools: &[bool]) -> Self {
        LogicVector {
            bits: bools.iter().copied().map(Logic::from_bool).collect(),
        }
    }

    /// Decodes to an integer if every bit is a (weak or strong) 0/1 and the
    /// width fits in 64 bits; `None` otherwise.
    pub fn to_u64(&self) -> Option<u64> {
        if self.bits.len() > 64 {
            return None;
        }
        let mut acc = 0u64;
        for (i, bit) in self.bits.iter().enumerate() {
            if bit.to_bool()? {
                acc |= 1 << i;
            }
        }
        Some(acc)
    }

    /// The number of bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// True if the vector has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bit at `index`, or `None` if out of range.
    pub fn get(&self, index: usize) -> Option<Logic> {
        self.bits.get(index).copied()
    }

    /// Sets the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    pub fn set(&mut self, index: usize, value: Logic) {
        self.bits[index] = value;
    }

    /// Applies an SEU bit-flip ([`Logic::flipped`]) to the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    pub fn flip_bit(&mut self, index: usize) {
        self.bits[index] = self.bits[index].flipped();
    }

    /// True if any bit is metalogical (`U`, `X`, `Z`, `W`, `-`).
    pub fn has_metalogical(&self) -> bool {
        self.bits.iter().any(|b| b.is_metalogical())
    }

    /// Iterates over bits from LSB to MSB.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Logic>> {
        self.bits.iter().copied()
    }

    /// The bits as a slice, index 0 = LSB.
    pub fn as_slice(&self) -> &[Logic] {
        &self.bits
    }

    /// Packs bits `[lo, lo + n)` (where `n = min(LANES, width - lo)`) into a
    /// bit-sliced word, bit `lo` in lane 0. Used by the plane-parallel
    /// bulk operators and the batch simulator's divergence masks.
    pub fn planes_from(&self, lo: usize) -> LogicPlanes {
        let hi = self.bits.len().min(lo + LANES);
        LogicPlanes::from_lanes(&self.bits[lo..hi])
    }

    /// Applies a bit-sliced binary kernel chunk-wise over two equal-width
    /// vectors; exact per-bit equality with the scalar operators is proven
    /// by the `LogicPlanes` kernel tests.
    fn zip_planes(
        &self,
        rhs: &LogicVector,
        kernel: impl Fn(LogicPlanes, LogicPlanes) -> LogicPlanes,
    ) -> LogicVector {
        assert_eq!(self.width(), rhs.width(), "bitwise op width mismatch");
        let mut bits = Vec::with_capacity(self.width());
        for lo in (0..self.width()).step_by(LANES) {
            let out = kernel(self.planes_from(lo), rhs.planes_from(lo));
            let n = (self.width() - lo).min(LANES);
            bits.extend((0..n).map(|lane| out.lane(lane)));
        }
        LogicVector { bits }
    }

    /// The number of bits that differ from `other` (both reduced to X01;
    /// a differing metalogical status also counts).
    ///
    /// This is the error-multiplicity metric used when classifying faults.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn hamming_distance(&self, other: &LogicVector) -> usize {
        assert_eq!(
            self.width(),
            other.width(),
            "hamming distance requires equal widths"
        );
        self.bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a.to_x01() != b.to_x01())
            .count()
    }
}

impl Index<usize> for LogicVector {
    type Output = Logic;
    fn index(&self, index: usize) -> &Logic {
        &self.bits[index]
    }
}

impl IndexMut<usize> for LogicVector {
    fn index_mut(&mut self, index: usize) -> &mut Logic {
        &mut self.bits[index]
    }
}

impl FromIterator<Logic> for LogicVector {
    fn from_iter<I: IntoIterator<Item = Logic>>(iter: I) -> Self {
        LogicVector {
            bits: iter.into_iter().collect(),
        }
    }
}

impl Extend<Logic> for LogicVector {
    fn extend<I: IntoIterator<Item = Logic>>(&mut self, iter: I) {
        self.bits.extend(iter);
    }
}

impl IntoIterator for LogicVector {
    type Item = Logic;
    type IntoIter = std::vec::IntoIter<Logic>;
    fn into_iter(self) -> Self::IntoIter {
        self.bits.into_iter()
    }
}

impl Not for &LogicVector {
    type Output = LogicVector;
    fn not(self) -> LogicVector {
        let mut bits = Vec::with_capacity(self.width());
        for lo in (0..self.width()).step_by(LANES) {
            let out = self.planes_from(lo).not();
            let n = (self.width() - lo).min(LANES);
            bits.extend((0..n).map(|lane| out.lane(lane)));
        }
        LogicVector { bits }
    }
}

macro_rules! vector_bitop {
    ($trait:ident, $method:ident, $kernel:ident) => {
        impl $trait for &LogicVector {
            type Output = LogicVector;
            /// Bit-sliced: evaluates up to 64 bits per plane-kernel call.
            ///
            /// # Panics
            ///
            /// Panics if the operand widths differ.
            fn $method(self, rhs: &LogicVector) -> LogicVector {
                self.zip_planes(rhs, LogicPlanes::$kernel)
            }
        }
    };
}

vector_bitop!(BitAnd, bitand, and);
vector_bitop!(BitOr, bitor, or);
vector_bitop!(BitXor, bitxor, xor);

impl fmt::Display for LogicVector {
    /// Prints MSB first, one IEEE 1164 character per bit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in self.bits.iter().rev() {
            write!(f, "{bit}")?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`LogicVector`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLogicVectorError {
    offending: char,
}

impl fmt::Display for ParseLogicVectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid logic character {:?} in bit-string literal",
            self.offending
        )
    }
}

impl std::error::Error for ParseLogicVectorError {}

impl FromStr for LogicVector {
    type Err = ParseLogicVectorError;

    /// Parses a bit-string literal with the MSB first, e.g. `"1010"` or
    /// `"ZZXX"`. Underscores are ignored as separators.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut bits = Vec::with_capacity(s.len());
        for c in s.chars().rev() {
            if c == '_' {
                continue;
            }
            bits.push(Logic::from_char(c).ok_or(ParseLogicVectorError { offending: c })?);
        }
        Ok(LogicVector { bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip() {
        for value in [0u64, 1, 0b1010, 0xFF, 0xDEAD] {
            let v = LogicVector::from_u64(value, 16);
            assert_eq!(v.to_u64(), Some(value));
        }
    }

    #[test]
    fn to_u64_rejects_metalogical() {
        let mut v = LogicVector::from_u64(5, 4);
        v.set(2, Logic::Unknown);
        assert_eq!(v.to_u64(), None);
        assert!(v.has_metalogical());
    }

    #[test]
    fn display_msb_first() {
        assert_eq!(LogicVector::from_u64(0b0110, 4).to_string(), "0110");
        assert_eq!(LogicVector::new(3).to_string(), "UUU");
    }

    #[test]
    fn parse_round_trip() {
        let v: LogicVector = "10Z_X".parse().unwrap();
        assert_eq!(v.width(), 4);
        assert_eq!(v.to_string(), "10ZX");
        assert!("10q2".parse::<LogicVector>().is_err());
    }

    #[test]
    fn flip_bit_changes_value_by_power_of_two() {
        let mut v = LogicVector::from_u64(0b1000, 4);
        v.flip_bit(3);
        assert_eq!(v.to_u64(), Some(0));
        v.flip_bit(0);
        assert_eq!(v.to_u64(), Some(1));
    }

    #[test]
    fn hamming_distance_counts_differing_bits() {
        let a = LogicVector::from_u64(0b1010, 4);
        let b = LogicVector::from_u64(0b0110, 4);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn bitwise_ops() {
        let a = LogicVector::from_u64(0b1100, 4);
        let b = LogicVector::from_u64(0b1010, 4);
        assert_eq!((&a & &b).to_u64(), Some(0b1000));
        assert_eq!((&a | &b).to_u64(), Some(0b1110));
        assert_eq!((&a ^ &b).to_u64(), Some(0b0110));
        assert_eq!((!&a).to_u64(), Some(0b0011));
    }

    #[test]
    fn plane_backed_ops_match_scalar_per_bit_across_word_boundaries() {
        // 150 bits: spans three 64-lane plane words, cycling all nine values
        // with different phases so every (a, b) class pair occurs.
        let a: LogicVector = Logic::ALL.iter().copied().cycle().take(150).collect();
        let b: LogicVector = Logic::ALL
            .iter()
            .copied()
            .cycle()
            .skip(4)
            .take(150)
            .collect();
        let and = &a & &b;
        let or = &a | &b;
        let xor = &a ^ &b;
        let not = !&a;
        for i in 0..a.width() {
            assert_eq!(and[i], a[i] & b[i], "and bit {i}");
            assert_eq!(or[i], a[i] | b[i], "or bit {i}");
            assert_eq!(xor[i], a[i] ^ b[i], "xor bit {i}");
            assert_eq!(not[i], !a[i], "not bit {i}");
        }
    }

    #[test]
    fn collect_and_extend() {
        let mut v: LogicVector = [Logic::One, Logic::Zero].into_iter().collect();
        v.extend([Logic::One]);
        assert_eq!(v.to_u64(), Some(0b101));
    }
}
