//! Cooperative simulation budgets and numerical guards.
//!
//! At campaign scale some faulty cases drive a behavioural kernel into
//! numerical divergence (non-finite node values), timestep collapse (an
//! adaptive step shrinking without bound) or plain runaway (an event loop
//! that never converges). A [`SimBudget`] is the contract between the
//! campaign engine and a simulation kernel that bounds all of these: the
//! kernel calls the cheap check methods inside its `advance_to` loop and
//! surfaces a structured [`GuardViolation`] instead of hanging, spinning or
//! emitting NaNs into the trace.
//!
//! The wall-clock half is a [`CancelToken`]: a shared flag plus an optional
//! deadline. The engine hands the token to the attempt it spawns; when the
//! timeout fires it cancels the token and the attempt *returns* — no
//! abandoned thread keeps burning a core.
//!
//! All checks are designed to sit on a hot simulation loop: a step check is
//! an integer compare plus a relaxed atomic load, and the wall clock is only
//! probed every [`CLOCK_STRIDE`] steps.
//!
//! # Examples
//!
//! ```
//! use amsfi_waves::{GuardViolation, SimBudget, Time};
//!
//! let mut budget = SimBudget::unlimited().with_max_steps(2);
//! assert!(budget.note_step(Time::ZERO).is_ok());
//! assert!(budget.note_step(Time::ZERO).is_ok());
//! let err = budget.note_step(Time::from_ns(3)).unwrap_err();
//! assert!(matches!(err, GuardViolation::StepBudgetExhausted { .. }));
//! ```

use crate::Time;
use amsfi_telemetry::KernelMetrics;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many steps elapse between wall-clock probes of a budget's
/// [`CancelToken`] deadline. The cancellation *flag* is checked every step
/// (a relaxed atomic load); only the `Instant::now()` syscall is strided.
pub const CLOCK_STRIDE: u32 = 64;

/// A structured reason a guarded simulation was stopped.
///
/// Every variant carries the simulation time `t` at which the guard fired,
/// so a campaign report can say *where* in the transient a case went bad.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardViolation {
    /// A node or signal took a NaN or infinite value.
    NonFinite {
        /// Name of the offending node or signal.
        signal: String,
        /// Simulation time of the first non-finite sample.
        t: Time,
    },
    /// The step budget ran out before the horizon was reached.
    StepBudgetExhausted {
        /// Steps consumed when the budget tripped.
        steps: u64,
        /// Simulation time when the budget tripped.
        t: Time,
    },
    /// The adaptive timestep collapsed below the configured floor.
    TimestepCollapse {
        /// The offending proposed step.
        dt: Time,
        /// The configured floor.
        min_dt: Time,
        /// Simulation time of the collapse.
        t: Time,
    },
    /// The attempt's wall-clock deadline expired.
    Deadline {
        /// Simulation time reached when the deadline expired.
        t: Time,
    },
    /// The attempt was cooperatively cancelled by its owner.
    Cancelled {
        /// Simulation time reached when cancellation was observed.
        t: Time,
    },
}

impl fmt::Display for GuardViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardViolation::NonFinite { signal, t } => {
                write!(f, "non-finite signal={signal} t={}", t.as_fs())
            }
            GuardViolation::StepBudgetExhausted { steps, t } => {
                write!(f, "step-budget-exhausted steps={steps} t={}", t.as_fs())
            }
            GuardViolation::TimestepCollapse { dt, min_dt, t } => write!(
                f,
                "timestep-collapse dt={} min={} t={}",
                dt.as_fs(),
                min_dt.as_fs(),
                t.as_fs()
            ),
            GuardViolation::Deadline { t } => write!(f, "deadline t={}", t.as_fs()),
            GuardViolation::Cancelled { t } => write!(f, "cancelled t={}", t.as_fs()),
        }
    }
}

impl std::error::Error for GuardViolation {}

/// A shared cooperative-cancellation flag with an optional wall-clock
/// deadline.
///
/// Clones share the flag: the engine keeps one clone and hands another to
/// the attempt; [`CancelToken::cancel`] on either side is observed by all.
/// The default token never cancels and has no deadline, so an unconfigured
/// budget costs one relaxed load per step.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never expires on its own (cancellable only via
    /// [`CancelToken::cancel`]).
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally expires `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + timeout),
        }
    }

    /// Requests cancellation; observed by every clone of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called (does not consult
    /// the deadline — that costs a clock read; see
    /// [`CancelToken::expired`]).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Whether the deadline (if any) has passed. Reads the clock.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Flag *or* deadline: the full (clock-reading) stop check.
    pub fn should_stop(&self) -> bool {
        self.is_cancelled() || self.expired()
    }
}

/// A per-attempt simulation budget: step count, timestep floor and a
/// [`CancelToken`] for wall-clock deadline / cooperative cancellation.
///
/// A kernel holds one `SimBudget` (default: unlimited) and calls
/// [`SimBudget::note_step`] once per step of its main loop,
/// [`SimBudget::check_dt`] on each proposed adaptive step and
/// [`SimBudget::check_finite`] on freshly computed values. The budget is
/// `Clone` so snapshotting a kernel snapshots its budget; the engine
/// installs a fresh budget per attempt, so consumed steps never leak
/// across cases.
#[derive(Debug, Default)]
pub struct SimBudget {
    max_steps: Option<u64>,
    min_dt: Option<Time>,
    cancel: CancelToken,
    steps: u64,
    probe: u32,
    armed: bool,
    /// Observability-only: total steps noted by this budget *and every
    /// clone of it* within one attempt (the engine reads it after the
    /// attempt for the `steps_used` histogram). Shared via `Arc` because
    /// kernels clone their budget into sub-kernels and snapshots. To keep
    /// the hot path free of contended atomics, steps accumulate locally in
    /// `pending` and flush in [`CLOCK_STRIDE`]-sized batches (and on drop).
    attempt_steps: Arc<AtomicU64>,
    /// Steps noted locally but not yet flushed to `attempt_steps`.
    pending: u32,
    /// Observability-only metric registry; attaching it does *not* arm the
    /// budget, so guard semantics are identical with telemetry on or off.
    metrics: Option<Arc<KernelMetrics>>,
}

impl Clone for SimBudget {
    fn clone(&self) -> Self {
        SimBudget {
            max_steps: self.max_steps,
            min_dt: self.min_dt,
            cancel: self.cancel.clone(),
            steps: self.steps,
            probe: self.probe,
            armed: self.armed,
            attempt_steps: Arc::clone(&self.attempt_steps),
            // Unflushed steps stay with the instance that noted them: the
            // original will flush them exactly once. A clone that copied
            // `pending` would double-count on its own flush.
            pending: 0,
            metrics: self.metrics.clone(),
        }
    }
}

impl Drop for SimBudget {
    fn drop(&mut self) {
        self.flush_pending();
    }
}

impl SimBudget {
    /// A budget with no limits: every check passes.
    pub fn unlimited() -> Self {
        SimBudget::default()
    }

    /// Caps the number of simulation steps.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = Some(max_steps);
        self.armed = true;
        self
    }

    /// Floors the adaptive timestep: a proposed step strictly below
    /// `min_dt` is a [`GuardViolation::TimestepCollapse`].
    #[must_use]
    pub fn with_min_dt(mut self, min_dt: Time) -> Self {
        self.min_dt = Some(min_dt);
        self.armed = true;
        self
    }

    /// Attaches a cancellation token (deadline and/or cooperative cancel).
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self.armed = true;
        self
    }

    /// Attaches a telemetry metric registry. Purely observational: it
    /// does **not** arm the budget ([`SimBudget::is_limited`] is
    /// unchanged), so enabling telemetry never alters guard semantics or
    /// simulation behaviour.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<KernelMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The attached metric registry, if telemetry is enabled.
    pub fn metrics(&self) -> Option<&Arc<KernelMetrics>> {
        self.metrics.as_ref()
    }

    /// Total steps noted by this budget and all of its clones (the
    /// observability counter behind the engine's `steps_used` histogram).
    /// Only maintained while a metric registry is attached, and updated in
    /// [`CLOCK_STRIDE`]-sized batches: live reads may trail by up to
    /// `CLOCK_STRIDE - 1` steps per active clone, but each clone flushes
    /// its remainder on drop, so the count is exact once the kernels that
    /// noted the steps have been dropped (which is how the engine reads
    /// it: after the attempt thread is joined).
    pub fn attempt_steps(&self) -> u64 {
        self.attempt_steps.load(Ordering::Relaxed) + u64::from(self.pending)
    }

    /// Whether any guard is configured. `false` for
    /// [`SimBudget::unlimited`]; kernels may use this to skip optional
    /// (per-value) checks when running unguarded.
    pub fn is_limited(&self) -> bool {
        self.armed
    }

    /// The configured step cap, if any.
    pub fn max_steps(&self) -> Option<u64> {
        self.max_steps
    }

    /// The configured timestep floor, if any.
    pub fn min_dt(&self) -> Option<Time> {
        self.min_dt
    }

    /// The attached cancellation token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Steps consumed so far (via [`SimBudget::note_step`]).
    pub fn steps_used(&self) -> u64 {
        self.steps
    }

    /// Counts one simulation step and runs the per-step checks: step
    /// budget, cancellation flag, and (every [`CLOCK_STRIDE`] steps) the
    /// wall-clock deadline.
    ///
    /// # Errors
    ///
    /// [`GuardViolation::StepBudgetExhausted`], [`GuardViolation::Cancelled`]
    /// or [`GuardViolation::Deadline`].
    pub fn note_step(&mut self, now: Time) -> Result<(), GuardViolation> {
        self.steps += 1;
        if self.metrics.is_some() {
            // Batched: one contended RMW per CLOCK_STRIDE steps (flushed
            // below with the clock probe, and on drop), not one per step.
            self.pending += 1;
        }
        if let Some(max) = self.max_steps {
            if self.steps > max {
                return Err(GuardViolation::StepBudgetExhausted {
                    steps: self.steps,
                    t: now,
                });
            }
        }
        if self.cancel.is_cancelled() {
            return Err(GuardViolation::Cancelled { t: now });
        }
        self.probe += 1;
        if self.probe >= CLOCK_STRIDE {
            self.probe = 0;
            self.flush_pending();
            if self.cancel.expired() {
                return Err(GuardViolation::Deadline { t: now });
            }
        }
        Ok(())
    }

    /// Publishes locally accumulated steps to the shared attempt counter.
    fn flush_pending(&mut self) {
        if self.pending > 0 {
            self.attempt_steps
                .fetch_add(u64::from(self.pending), Ordering::Relaxed);
            self.pending = 0;
        }
    }

    /// Checks a proposed adaptive timestep against the configured floor.
    ///
    /// # Errors
    ///
    /// [`GuardViolation::TimestepCollapse`] when `dt < min_dt`.
    pub fn check_dt(&self, dt: Time, now: Time) -> Result<(), GuardViolation> {
        if let Some(min_dt) = self.min_dt {
            if dt < min_dt {
                return Err(GuardViolation::TimestepCollapse { dt, min_dt, t: now });
            }
        }
        Ok(())
    }

    /// Checks one freshly computed value for NaN/Inf.
    ///
    /// # Errors
    ///
    /// [`GuardViolation::NonFinite`] when `value` is NaN or infinite.
    pub fn check_finite(signal: &str, value: f64, now: Time) -> Result<(), GuardViolation> {
        if value.is_finite() {
            Ok(())
        } else {
            Err(GuardViolation::NonFinite {
                signal: signal.to_owned(),
                t: now,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_passes_every_check() {
        let mut b = SimBudget::unlimited();
        for i in 0..10_000 {
            b.note_step(Time::from_ns(i)).unwrap();
        }
        b.check_dt(Time::RESOLUTION, Time::ZERO).unwrap();
        assert_eq!(b.steps_used(), 10_000);
    }

    #[test]
    fn step_budget_trips_exactly_after_the_cap() {
        let mut b = SimBudget::unlimited().with_max_steps(3);
        for _ in 0..3 {
            b.note_step(Time::ZERO).unwrap();
        }
        match b.note_step(Time::from_ns(9)).unwrap_err() {
            GuardViolation::StepBudgetExhausted { steps, t } => {
                assert_eq!(steps, 4);
                assert_eq!(t, Time::from_ns(9));
            }
            other => panic!("unexpected violation {other}"),
        }
    }

    #[test]
    fn min_dt_floor_detects_collapse() {
        let b = SimBudget::unlimited().with_min_dt(Time::from_ps(10));
        b.check_dt(Time::from_ps(10), Time::ZERO).unwrap();
        let err = b.check_dt(Time::from_ps(9), Time::from_ns(1)).unwrap_err();
        assert_eq!(
            err,
            GuardViolation::TimestepCollapse {
                dt: Time::from_ps(9),
                min_dt: Time::from_ps(10),
                t: Time::from_ns(1),
            }
        );
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let token = CancelToken::new();
        let mut b = SimBudget::unlimited().with_cancel(token.clone());
        b.note_step(Time::ZERO).unwrap();
        token.cancel();
        assert!(matches!(
            b.note_step(Time::ZERO).unwrap_err(),
            GuardViolation::Cancelled { .. }
        ));
        assert!(b.cancel_token().is_cancelled());
    }

    #[test]
    fn expired_deadline_trips_within_one_clock_stride() {
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(token.expired() && token.should_stop());
        let mut b = SimBudget::unlimited().with_cancel(token);
        let mut tripped = None;
        for i in 0..=u64::from(CLOCK_STRIDE) {
            if let Err(e) = b.note_step(Time::from_ns(i as i64)) {
                tripped = Some(e);
                break;
            }
        }
        assert!(
            matches!(tripped, Some(GuardViolation::Deadline { .. })),
            "{tripped:?}"
        );
    }

    #[test]
    fn non_finite_values_are_named() {
        SimBudget::check_finite("vctrl", 2.5, Time::ZERO).unwrap();
        let err = SimBudget::check_finite("vctrl", f64::NAN, Time::from_ns(5)).unwrap_err();
        assert_eq!(
            err.to_string(),
            format!("non-finite signal=vctrl t={}", Time::from_ns(5).as_fs())
        );
        assert!(SimBudget::check_finite("x", f64::INFINITY, Time::ZERO).is_err());
    }

    #[test]
    fn attempt_steps_shared_across_clones_only_with_metrics() {
        // Without metrics the observability counter stays untouched.
        let mut plain = SimBudget::unlimited().with_max_steps(10);
        plain.note_step(Time::ZERO).unwrap();
        assert_eq!(plain.attempt_steps(), 0);
        assert_eq!(plain.steps_used(), 1);

        // With metrics, clones (sub-kernels, snapshots) share the counter.
        // Updates are batched at CLOCK_STRIDE granularity, so cross the
        // stride in one clone and rely on drop-flush for the other.
        let metrics = Arc::new(KernelMetrics::new());
        let mut a = SimBudget::unlimited().with_metrics(Arc::clone(&metrics));
        assert!(!a.is_limited(), "with_metrics must not arm the budget");
        let probe = a.clone();
        let mut b = a.clone();
        for _ in 0..CLOCK_STRIDE {
            a.note_step(Time::ZERO).unwrap();
        }
        b.note_step(Time::ZERO).unwrap();
        b.note_step(Time::ZERO).unwrap();
        // `a` crossed the stride: its steps are already visible everywhere.
        assert_eq!(probe.attempt_steps(), u64::from(CLOCK_STRIDE));
        // A reader sees its *own* unflushed remainder immediately.
        assert_eq!(b.attempt_steps(), u64::from(CLOCK_STRIDE) + 2);
        // Per-clone guard accounting is unchanged.
        assert_eq!(a.steps_used(), u64::from(CLOCK_STRIDE));
        assert_eq!(b.steps_used(), 2);
        // Dropping a clone flushes its remainder, making the total exact.
        drop(a);
        drop(b);
        assert_eq!(probe.attempt_steps(), u64::from(CLOCK_STRIDE) + 2);
    }

    #[test]
    fn violation_display_is_stable() {
        let v = GuardViolation::StepBudgetExhausted {
            steps: 11,
            t: Time::from_ns(2),
        };
        assert_eq!(v.to_string(), "step-budget-exhausted steps=11 t=2000000");
    }
}
