//! Waveform measurements: periods, frequency, threshold crossings, deviation
//! and perturbation metrics.
//!
//! These are the quantities the paper reads off its figures: the per-cycle
//! frequency of the generated clock (Fig. 6), the deviation of the VCO input
//! voltage from its nominal locked value and how long it persists (Figs. 6–8).

use crate::{AnalogWave, DigitalWave, Time};

/// Per-cycle periods of a digital clock: the deltas between consecutive
/// rising edges.
pub fn periods(wave: &DigitalWave) -> Vec<(Time, Time)> {
    let edges = wave.rising_edges();
    edges
        .windows(2)
        .map(|pair| (pair[0], pair[1] - pair[0]))
        .collect()
}

/// Mean frequency (Hz) estimated from rising edges within `[from, to]`.
/// Returns `None` with fewer than two edges in the window.
pub fn mean_frequency(wave: &DigitalWave, from: Time, to: Time) -> Option<f64> {
    let edges: Vec<Time> = wave
        .rising_edges()
        .into_iter()
        .filter(|&t| t >= from && t <= to)
        .collect();
    if edges.len() < 2 {
        return None;
    }
    let span = (*edges.last().expect("len >= 2") - edges[0]).as_secs_f64();
    Some((edges.len() - 1) as f64 / span)
}

/// Peak-to-peak and RMS period jitter of a clock, over `[from, to]`.
/// Returns `None` with fewer than two periods in the window.
pub fn period_jitter(wave: &DigitalWave, from: Time, to: Time) -> Option<(Time, Time)> {
    let ps: Vec<f64> = periods(wave)
        .into_iter()
        .filter(|&(s, _)| s >= from && s <= to)
        .map(|(_, p)| p.as_fs() as f64)
        .collect();
    if ps.len() < 2 {
        return None;
    }
    let mean = ps.iter().sum::<f64>() / ps.len() as f64;
    let p2p =
        ps.iter().cloned().fold(f64::MIN, f64::max) - ps.iter().cloned().fold(f64::MAX, f64::min);
    let rms = (ps.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / ps.len() as f64).sqrt();
    Some((Time::from_fs(p2p as i64), Time::from_fs(rms as i64)))
}

/// Fraction of `[from, to]` during which the signal is high.
/// Returns `None` for an empty window.
pub fn duty_cycle(wave: &DigitalWave, from: Time, to: Time) -> Option<f64> {
    if to <= from {
        return None;
    }
    let mut high_time = Time::ZERO;
    let mut t = from;
    let mut level = wave.value_at(from);
    for &(tt, v) in wave.transitions() {
        if tt <= from {
            continue;
        }
        let seg_end = tt.min(to);
        if level.is_high() {
            high_time += seg_end - t;
        }
        if tt >= to {
            break;
        }
        t = seg_end;
        level = v;
    }
    if t < to && level.is_high() {
        high_time += to - t;
    }
    Some(high_time.as_secs_f64() / (to - from).as_secs_f64())
}

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossingDirection {
    /// Value goes from below to at-or-above the threshold.
    Rising,
    /// Value goes from above to at-or-below the threshold.
    Falling,
}

/// A threshold crossing of an analog waveform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossing {
    /// Interpolated crossing time.
    pub time: Time,
    /// Crossing direction.
    pub direction: CrossingDirection,
}

/// Finds every time the waveform crosses `threshold`, with linear
/// interpolation between samples.
pub fn crossings(wave: &AnalogWave, threshold: f64) -> Vec<Crossing> {
    let mut out = Vec::new();
    let samples = wave.samples();
    for pair in samples.windows(2) {
        let (t0, v0) = pair[0];
        let (t1, v1) = pair[1];
        let below0 = v0 < threshold;
        let below1 = v1 < threshold;
        if below0 == below1 {
            continue;
        }
        let frac = (threshold - v0) / (v1 - v0);
        let dt = ((t1 - t0).as_fs() as f64 * frac).round() as i64;
        out.push(Crossing {
            time: t0 + Time::from_fs(dt),
            direction: if below0 {
                CrossingDirection::Rising
            } else {
                CrossingDirection::Falling
            },
        });
    }
    out
}

/// Summary of how a faulty analog waveform deviates from its golden
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Deviation {
    /// Largest absolute difference observed.
    pub peak: f64,
    /// Time at which the peak difference occurs.
    pub peak_time: Time,
    /// First time the difference exceeds the threshold, if it ever does.
    pub onset: Option<Time>,
    /// Last time the difference exceeds the threshold, if it ever does.
    pub last_excursion: Option<Time>,
    /// Integral of |difference| over time (V·s or A·s) — a measure of the
    /// total disturbance ("cumulative effect" in the paper's Fig. 8).
    pub area: f64,
}

impl Deviation {
    /// Length of the perturbed interval (`last_excursion - onset`), or zero
    /// when the threshold was never exceeded.
    ///
    /// This is the paper's headline observation for Fig. 6: a 500 ps pulse
    /// perturbs the filter output "during a much larger time".
    pub fn duration(&self) -> Time {
        match (self.onset, self.last_excursion) {
            (Some(a), Some(b)) => b - a,
            _ => Time::ZERO,
        }
    }
}

/// Compares `faulty` against `golden` on the union of their sample points
/// within `[from, to]` and summarises the deviation. Differences at or below
/// `threshold` do not count towards onset/duration (they do count towards the
/// peak if nothing exceeds the threshold).
pub fn deviation(
    golden: &AnalogWave,
    faulty: &AnalogWave,
    from: Time,
    to: Time,
    threshold: f64,
) -> Deviation {
    let mut times: Vec<Time> = golden
        .samples()
        .iter()
        .chain(faulty.samples())
        .map(|&(t, _)| t)
        .filter(|&t| t >= from && t <= to)
        .collect();
    times.sort_unstable();
    times.dedup();

    let mut dev = Deviation::default();
    let mut prev: Option<(Time, f64)> = None;
    for t in times {
        let diff = (faulty.value_at(t) - golden.value_at(t)).abs();
        if diff > dev.peak {
            dev.peak = diff;
            dev.peak_time = t;
        }
        if diff > threshold {
            if dev.onset.is_none() {
                dev.onset = Some(t);
            }
            dev.last_excursion = Some(t);
        }
        if let Some((pt, pd)) = prev {
            // Trapezoidal integration of |difference|.
            dev.area += 0.5 * (pd + diff) * (t - pt).as_secs_f64();
        }
        prev = Some((t, diff));
    }
    dev
}

/// The time after `from` at which the waveform settles to within `band` of
/// `target` and stays there until the end of the trace. `None` if it never
/// settles.
pub fn settling_time(wave: &AnalogWave, from: Time, target: f64, band: f64) -> Option<Time> {
    let mut settled_since: Option<Time> = None;
    for &(t, v) in wave.samples() {
        if t < from {
            continue;
        }
        if (v - target).abs() <= band {
            settled_since.get_or_insert(t);
        } else {
            settled_since = None;
        }
    }
    settled_since.map(|t| t - from)
}

/// Counts the clock cycles whose period differs from `nominal` by more than
/// `tolerance`, within `[from, to]`, and returns `(count, worst_period)`.
///
/// This quantifies the paper's Fig. 6 observation that a single analog
/// transient perturbs the generated clock "during a large number of cycles
/// and not only during one cycle".
pub fn perturbed_cycles(
    wave: &DigitalWave,
    from: Time,
    to: Time,
    nominal: Time,
    tolerance: Time,
) -> (usize, Option<Time>) {
    let mut count = 0;
    let mut worst: Option<Time> = None;
    for (start, period) in periods(wave) {
        if start < from || start > to {
            continue;
        }
        let err = (period - nominal).abs();
        if err > tolerance {
            count += 1;
            if worst.is_none_or(|w| (w - nominal).abs() < err) {
                worst = Some(period);
            }
        }
    }
    (count, worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Logic;

    fn clock(period_ns: i64, cycles: usize) -> DigitalWave {
        let mut w = DigitalWave::new();
        let half = Time::from_ns(period_ns) / 2;
        let mut t = Time::ZERO;
        for _ in 0..cycles {
            w.push(t, Logic::One).unwrap();
            w.push(t + half, Logic::Zero).unwrap();
            t += Time::from_ns(period_ns);
        }
        w
    }

    #[test]
    fn periods_of_uniform_clock() {
        let w = clock(20, 5);
        let p = periods(&w);
        assert_eq!(p.len(), 4);
        assert!(p.iter().all(|&(_, d)| d == Time::from_ns(20)));
    }

    #[test]
    fn mean_frequency_of_50mhz_clock() {
        let w = clock(20, 100);
        let f = mean_frequency(&w, Time::ZERO, Time::from_us(2)).unwrap();
        assert!((f - 50e6).abs() / 50e6 < 1e-9, "f = {f}");
    }

    #[test]
    fn mean_frequency_needs_two_edges() {
        let w = clock(20, 1);
        assert_eq!(mean_frequency(&w, Time::ZERO, Time::from_us(1)), None);
    }

    #[test]
    fn crossing_interpolation() {
        let w = AnalogWave::from_samples([(Time::ZERO, 0.0), (Time::from_ns(10), 5.0)]);
        let c = crossings(&w, 2.5);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].time, Time::from_ns(5));
        assert_eq!(c[0].direction, CrossingDirection::Rising);
    }

    #[test]
    fn crossing_both_directions() {
        let w = AnalogWave::from_samples([
            (Time::ZERO, 0.0),
            (Time::from_ns(10), 5.0),
            (Time::from_ns(20), 0.0),
        ]);
        let c = crossings(&w, 2.5);
        assert_eq!(c.len(), 2);
        assert_eq!(c[1].direction, CrossingDirection::Falling);
        assert_eq!(c[1].time, Time::from_ns(15));
    }

    #[test]
    fn deviation_detects_bump() {
        let golden = AnalogWave::from_samples([(Time::ZERO, 1.0), (Time::from_us(1), 1.0)]);
        let faulty = AnalogWave::from_samples([
            (Time::ZERO, 1.0),
            (Time::from_ns(100), 1.0),
            (Time::from_ns(200), 3.0),
            (Time::from_ns(250), 3.0),
            (Time::from_ns(300), 1.0),
            (Time::from_us(1), 1.0),
        ]);
        let d = deviation(&golden, &faulty, Time::ZERO, Time::from_us(1), 0.1);
        assert!((d.peak - 2.0).abs() < 1e-12);
        assert_eq!(d.peak_time, Time::from_ns(200));
        assert_eq!(d.onset, Some(Time::from_ns(200)));
        assert_eq!(d.duration(), Time::from_ns(50));
        assert!(d.area > 0.0);
    }

    #[test]
    fn deviation_of_identical_waves_is_zero() {
        let w = AnalogWave::from_samples([(Time::ZERO, 1.0), (Time::from_us(1), 2.0)]);
        let d = deviation(&w, &w, Time::ZERO, Time::from_us(1), 1e-9);
        assert_eq!(d.peak, 0.0);
        assert_eq!(d.onset, None);
        assert_eq!(d.duration(), Time::ZERO);
        assert_eq!(d.area, 0.0);
    }

    #[test]
    fn settling_time_finds_band_entry() {
        let w = AnalogWave::from_samples([
            (Time::ZERO, 0.0),
            (Time::from_ns(10), 0.5),
            (Time::from_ns(20), 0.95),
            (Time::from_ns(30), 1.0),
        ]);
        let s = settling_time(&w, Time::ZERO, 1.0, 0.1).unwrap();
        assert_eq!(s, Time::from_ns(20));
        assert_eq!(settling_time(&w, Time::ZERO, 5.0, 0.1), None);
    }

    #[test]
    fn perturbed_cycles_counts_long_periods() {
        let mut w = DigitalWave::new();
        // Three 20 ns cycles, one 25 ns cycle, two more 20 ns cycles.
        let mut t = Time::ZERO;
        for p in [20i64, 20, 20, 25, 20, 20] {
            w.push(t, Logic::One).unwrap();
            w.push(t + Time::from_ns(p) / 2, Logic::Zero).unwrap();
            t += Time::from_ns(p);
        }
        w.push(t, Logic::One).unwrap();
        let (count, worst) =
            perturbed_cycles(&w, Time::ZERO, t, Time::from_ns(20), Time::from_ns(1));
        assert_eq!(count, 1);
        assert_eq!(worst, Some(Time::from_ns(25)));
    }

    #[test]
    fn jitter_of_perfect_clock_is_zero() {
        let w = clock(20, 50);
        let (p2p, rms) = period_jitter(&w, Time::ZERO, Time::from_us(1)).unwrap();
        assert_eq!(p2p, Time::ZERO);
        assert_eq!(rms, Time::ZERO);
    }

    #[test]
    fn jitter_of_wobbling_clock() {
        let mut w = DigitalWave::new();
        let mut t = Time::ZERO;
        for p in [20i64, 22, 18, 20, 22, 18, 20] {
            w.push(t, Logic::One).unwrap();
            w.push(t + Time::from_ns(p) / 2, Logic::Zero).unwrap();
            t += Time::from_ns(p);
        }
        w.push(t, Logic::One).unwrap();
        let (p2p, rms) = period_jitter(&w, Time::ZERO, t).unwrap();
        assert_eq!(p2p, Time::from_ns(4));
        assert!(rms > Time::from_ps(500) && rms < Time::from_ns(2), "{rms}");
    }

    #[test]
    fn duty_cycle_of_square_is_half() {
        let w = clock(20, 50);
        let d = duty_cycle(&w, Time::ZERO, Time::from_ns(1000)).unwrap();
        assert!((d - 0.5).abs() < 1e-9, "{d}");
    }

    #[test]
    fn duty_cycle_of_mostly_high_signal() {
        let mut w = DigitalWave::new();
        w.push(Time::ZERO, Logic::One).unwrap();
        w.push(Time::from_ns(75), Logic::Zero).unwrap();
        let d = duty_cycle(&w, Time::ZERO, Time::from_ns(100)).unwrap();
        assert!((d - 0.75).abs() < 1e-9, "{d}");
        assert_eq!(duty_cycle(&w, Time::from_ns(10), Time::from_ns(10)), None);
    }
}
