//! Golden-vs-faulty trace comparison with analog tolerance.
//!
//! Section 4.1 of the paper: when analog nodes are monitored "it may be
//! necessary to define an additional tolerance on the values, in order to
//! avoid non significant error identifications". [`Tolerance`] implements
//! that check; the comparison functions report where and when waves diverge.

use crate::{AnalogWave, DigitalWave, Time};

/// Acceptance band for comparing analog quantities.
///
/// Two values `a` (golden) and `b` (faulty) match when
/// `|a - b| <= absolute + relative * |a|`.
///
/// # Examples
///
/// ```
/// use amsfi_waves::Tolerance;
///
/// let tol = Tolerance::new(1e-3, 0.01);
/// assert!(tol.matches(2.5, 2.52));
/// assert!(!tol.matches(2.5, 2.6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute tolerance in the quantity's unit.
    pub absolute: f64,
    /// Relative tolerance as a fraction of the golden value.
    pub relative: f64,
}

impl Tolerance {
    /// Creates a tolerance with both an absolute floor and a relative band.
    ///
    /// # Panics
    ///
    /// Panics if either component is negative or non-finite.
    pub fn new(absolute: f64, relative: f64) -> Self {
        assert!(
            absolute >= 0.0 && relative >= 0.0 && absolute.is_finite() && relative.is_finite(),
            "tolerances must be finite and non-negative"
        );
        Tolerance { absolute, relative }
    }

    /// A purely absolute tolerance.
    pub fn absolute(value: f64) -> Self {
        Self::new(value, 0.0)
    }

    /// Exact comparison (zero tolerance).
    pub fn exact() -> Self {
        Self::new(0.0, 0.0)
    }

    /// True when `faulty` is within tolerance of `golden`.
    pub fn matches(&self, golden: f64, faulty: f64) -> bool {
        (golden - faulty).abs() <= self.absolute + self.relative * golden.abs()
    }
}

impl Default for Tolerance {
    /// 1 mV/mA absolute with 0.1 % relative: a sensible default for
    /// behavioural electrical quantities.
    fn default() -> Self {
        Tolerance::new(1e-3, 1e-3)
    }
}

/// A time interval during which a monitored signal mismatched its golden
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MismatchInterval {
    /// First observed mismatch time.
    pub from: Time,
    /// Last observed mismatch time.
    pub to: Time,
}

impl MismatchInterval {
    /// Length of the interval.
    pub fn duration(&self) -> Time {
        self.to - self.from
    }
}

/// Outcome of comparing one monitored signal across two runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SignalComparison {
    /// Maximal intervals during which the signal mismatched.
    pub mismatches: Vec<MismatchInterval>,
}

impl SignalComparison {
    /// True when no mismatch was observed.
    pub fn is_match(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Time of the first divergence, if any.
    pub fn first_divergence(&self) -> Option<Time> {
        self.mismatches.first().map(|m| m.from)
    }

    /// Time of the last divergence, if any.
    pub fn last_divergence(&self) -> Option<Time> {
        self.mismatches.last().map(|m| m.to)
    }

    /// Total mismatched time across all intervals.
    pub fn total_mismatch(&self) -> Time {
        self.mismatches.iter().map(MismatchInterval::duration).sum()
    }
}

/// Builds maximal mismatch intervals from a sequence of `(time, matched)`
/// observations sorted by time. A mismatching observation extends until the
/// *next* observation (between observations the comparison result holds —
/// waves are piecewise defined); intervals closer than `merge_gap` merge.
fn intervals_from_observations(
    observations: &[(Time, bool)],
    merge_gap: Time,
) -> Vec<MismatchInterval> {
    let mut out: Vec<MismatchInterval> = Vec::new();
    for (i, &(t, matched)) in observations.iter().enumerate() {
        if matched {
            continue;
        }
        let end = observations.get(i + 1).map_or(t, |&(next, _)| next);
        match out.last_mut() {
            Some(last) if t - last.to <= merge_gap => last.to = last.to.max(end),
            _ => out.push(MismatchInterval { from: t, to: end }),
        }
    }
    out
}

/// Compares two digital waves at every transition of either, over
/// `[from, to]`. Values are reduced to X01 before comparison, so `'1'` vs
/// `'H'` is a match. Mismatching observations closer than `merge_gap` fuse
/// into one interval.
pub fn compare_digital(
    golden: &DigitalWave,
    faulty: &DigitalWave,
    from: Time,
    to: Time,
    merge_gap: Time,
) -> SignalComparison {
    compare_digital_with_skew(golden, faulty, from, to, merge_gap, Time::ZERO)
}

/// Like [`compare_digital`], but tolerating edge-timing skew: an
/// observation also counts as matching when the faulty value equals the
/// golden value at `t ± skew` — so clock edges displaced by less than
/// `skew` (jitter, residual phase offset) do not register as errors.
///
/// With `skew == 0` this is exactly [`compare_digital`].
///
/// Implemented as a single O(n) pass with the streaming merge cursor (see
/// [`DigitalStream`](crate::DigitalStream)); the original
/// binary-search-per-observation path survives as
/// [`baseline::compare_digital_with_skew`] for regression benchmarking.
pub fn compare_digital_with_skew(
    golden: &DigitalWave,
    faulty: &DigitalWave,
    from: Time,
    to: Time,
    merge_gap: Time,
    skew: Time,
) -> SignalComparison {
    crate::stream::DigitalStream::new(from, to, merge_gap, skew).finish(golden, faulty)
}

/// Compares two analog waves on the union of their sample points over
/// `[from, to]`, applying `tolerance`. Mismatching samples closer than
/// `merge_gap` fuse into one interval.
///
/// Implemented as a single O(n) pass with the streaming merge cursor (see
/// [`AnalogStream`](crate::AnalogStream)); the original path survives as
/// [`baseline::compare_analog`] for regression benchmarking.
pub fn compare_analog(
    golden: &AnalogWave,
    faulty: &AnalogWave,
    from: Time,
    to: Time,
    tolerance: Tolerance,
    merge_gap: Time,
) -> SignalComparison {
    crate::stream::AnalogStream::new(from, to, tolerance, merge_gap).finish(golden, faulty)
}

/// The pre-streaming comparison implementations: one `value_at()` binary
/// search per observation time, O(n log n) per signal.
///
/// Kept verbatim as the regression baseline for the streaming rewrite —
/// the micro-benchmarks pit [`compare_digital_with_skew`] /
/// [`compare_analog`] against these, and the property tests assert
/// result equality. Not for production use.
pub mod baseline {
    use super::{intervals_from_observations, SignalComparison, Tolerance};
    use crate::{AnalogWave, DigitalWave, Time};

    /// Batch binary-search implementation of
    /// [`compare_digital_with_skew`](super::compare_digital_with_skew).
    pub fn compare_digital_with_skew(
        golden: &DigitalWave,
        faulty: &DigitalWave,
        from: Time,
        to: Time,
        merge_gap: Time,
        skew: Time,
    ) -> SignalComparison {
        let mut times: Vec<Time> = golden
            .transitions()
            .iter()
            .chain(faulty.transitions())
            .flat_map(|&(t, _)| {
                // With a skew tolerance, also observe just past the tolerance
                // band of every transition, so a displacement larger than the
                // skew cannot hide between observations.
                if skew > Time::ZERO {
                    vec![t, t - skew, t + skew]
                } else {
                    vec![t]
                }
            })
            .filter(|&t| t >= from && t <= to)
            .collect();
        times.push(from);
        times.push(to);
        times.sort_unstable();
        times.dedup();
        let matches_at = |t: Time| {
            let f = faulty.value_at(t).to_x01();
            if golden.value_at(t).to_x01() == f {
                return true;
            }
            skew > Time::ZERO
                && (golden.value_at(t - skew).to_x01() == f
                    || golden.value_at(t + skew).to_x01() == f)
        };
        let observations: Vec<(Time, bool)> =
            times.into_iter().map(|t| (t, matches_at(t))).collect();
        SignalComparison {
            mismatches: intervals_from_observations(&observations, merge_gap),
        }
    }

    /// Batch binary-search implementation of
    /// [`compare_analog`](super::compare_analog).
    pub fn compare_analog(
        golden: &AnalogWave,
        faulty: &AnalogWave,
        from: Time,
        to: Time,
        tolerance: Tolerance,
        merge_gap: Time,
    ) -> SignalComparison {
        let mut times: Vec<Time> = golden
            .samples()
            .iter()
            .chain(faulty.samples())
            .map(|&(t, _)| t)
            .filter(|&t| t >= from && t <= to)
            .collect();
        times.push(from);
        times.push(to);
        times.sort_unstable();
        times.dedup();
        let observations: Vec<(Time, bool)> = times
            .into_iter()
            .map(|t| (t, tolerance.matches(golden.value_at(t), faulty.value_at(t))))
            .collect();
        SignalComparison {
            mismatches: intervals_from_observations(&observations, merge_gap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Logic;

    #[test]
    fn tolerance_bands() {
        let tol = Tolerance::new(0.1, 0.0);
        assert!(tol.matches(1.0, 1.05));
        assert!(!tol.matches(1.0, 1.2));
        let rel = Tolerance::new(0.0, 0.1);
        assert!(rel.matches(10.0, 10.9));
        assert!(!rel.matches(10.0, 11.5));
        assert!(Tolerance::exact().matches(1.0, 1.0));
        assert!(!Tolerance::exact().matches(1.0, 1.0 + 1e-12));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn tolerance_rejects_negative() {
        let _ = Tolerance::new(-1.0, 0.0);
    }

    #[test]
    fn digital_match_of_equal_waves() {
        let mut w = DigitalWave::new();
        w.push(Time::ZERO, Logic::Zero).unwrap();
        w.push(Time::from_ns(10), Logic::One).unwrap();
        let cmp = compare_digital(&w, &w, Time::ZERO, Time::from_ns(20), Time::from_ns(1));
        assert!(cmp.is_match());
        assert_eq!(cmp.total_mismatch(), Time::ZERO);
    }

    #[test]
    fn digital_weak_strong_equivalence() {
        let mut g = DigitalWave::new();
        g.push(Time::ZERO, Logic::One).unwrap();
        let mut f = DigitalWave::new();
        f.push(Time::ZERO, Logic::WeakOne).unwrap();
        let cmp = compare_digital(&g, &f, Time::ZERO, Time::from_ns(1), Time::ZERO);
        assert!(cmp.is_match());
    }

    #[test]
    fn digital_detects_transient_mismatch() {
        let mut g = DigitalWave::new();
        g.push(Time::ZERO, Logic::Zero).unwrap();
        let mut f = DigitalWave::new();
        f.push(Time::ZERO, Logic::Zero).unwrap();
        f.push(Time::from_ns(10), Logic::One).unwrap();
        f.push(Time::from_ns(12), Logic::Zero).unwrap();
        let cmp = compare_digital(&g, &f, Time::ZERO, Time::from_ns(20), Time::from_ns(5));
        assert_eq!(cmp.mismatches.len(), 1);
        assert_eq!(cmp.first_divergence(), Some(Time::from_ns(10)));
    }

    #[test]
    fn digital_separate_mismatches_stay_separate() {
        let mut g = DigitalWave::new();
        g.push(Time::ZERO, Logic::Zero).unwrap();
        let mut f = DigitalWave::new();
        f.push(Time::ZERO, Logic::Zero).unwrap();
        f.push(Time::from_ns(10), Logic::One).unwrap();
        f.push(Time::from_ns(11), Logic::Zero).unwrap();
        f.push(Time::from_ns(50), Logic::One).unwrap();
        f.push(Time::from_ns(51), Logic::Zero).unwrap();
        let cmp = compare_digital(&g, &f, Time::ZERO, Time::from_ns(60), Time::from_ns(5));
        assert_eq!(cmp.mismatches.len(), 2);
        // The second mismatch extends to the next observation (its end).
        assert_eq!(cmp.last_divergence(), Some(Time::from_ns(51)));
    }

    #[test]
    fn skew_tolerance_forgives_displaced_edges() {
        let mut g = DigitalWave::new();
        g.push(Time::ZERO, Logic::Zero).unwrap();
        g.push(Time::from_ns(100), Logic::One).unwrap();
        let mut f = DigitalWave::new();
        f.push(Time::ZERO, Logic::Zero).unwrap();
        f.push(Time::from_ns(102), Logic::One).unwrap(); // edge 2 ns late
                                                         // Exact comparison flags the 2 ns window.
        let strict = compare_digital(&g, &f, Time::ZERO, Time::from_ns(200), Time::ZERO);
        assert!(!strict.is_match());
        // A 5 ns skew tolerance absorbs it.
        let lax = compare_digital_with_skew(
            &g,
            &f,
            Time::ZERO,
            Time::from_ns(200),
            Time::ZERO,
            Time::from_ns(5),
        );
        assert!(lax.is_match(), "{lax:?}");
        // But a 1 ns tolerance does not.
        let tight = compare_digital_with_skew(
            &g,
            &f,
            Time::ZERO,
            Time::from_ns(200),
            Time::ZERO,
            Time::from_ns(1),
        );
        assert!(!tight.is_match());
    }

    #[test]
    fn analog_tolerance_suppresses_noise() {
        let g = AnalogWave::from_samples([(Time::ZERO, 2.5), (Time::from_us(1), 2.5)]);
        let f = AnalogWave::from_samples([
            (Time::ZERO, 2.5005),
            (Time::from_ns(500), 2.4995),
            (Time::from_us(1), 2.5002),
        ]);
        let cmp = compare_analog(
            &g,
            &f,
            Time::ZERO,
            Time::from_us(1),
            Tolerance::absolute(0.01),
            Time::from_ns(100),
        );
        assert!(cmp.is_match());
    }

    #[test]
    fn analog_detects_excursion_beyond_tolerance() {
        let g = AnalogWave::from_samples([(Time::ZERO, 2.5), (Time::from_us(1), 2.5)]);
        let f = AnalogWave::from_samples([
            (Time::ZERO, 2.5),
            (Time::from_ns(400), 2.5),
            (Time::from_ns(500), 3.2),
            (Time::from_ns(600), 2.5),
            (Time::from_us(1), 2.5),
        ]);
        let cmp = compare_analog(
            &g,
            &f,
            Time::ZERO,
            Time::from_us(1),
            Tolerance::absolute(0.1),
            Time::from_ns(100),
        );
        assert_eq!(cmp.mismatches.len(), 1);
        assert_eq!(cmp.first_divergence(), Some(Time::from_ns(500)));
    }
}
