//! The sequential phase–frequency detector of the paper's Fig. 5 PLL.

use amsfi_digital::{Component, EvalContext, PortSpec};
use amsfi_waves::{Logic, Time};

/// A classical sequential (three-state) phase–frequency detector.
///
/// Ports: `ref`, `fb` → `up`, `dn`.
///
/// A rising edge on `ref` raises `UP`; a rising edge on `fb` raises `DN`;
/// when both are raised they clear each other (behaviourally instantaneous —
/// the anti-backlash delay of a real pump is below the abstraction level of
/// this flow). The pulse width on the surviving output therefore equals the
/// phase error, and the detector is frequency-sensitive during acquisition —
/// the properties the charge-pump loop relies on.
///
/// Both memorised flags are SEU targets (mutant hooks), modelling an upset
/// inside the detector itself.
#[derive(Debug, Clone)]
pub struct SequentialPfd {
    up: bool,
    dn: bool,
    prev_ref: Logic,
    prev_fb: Logic,
    delay: Time,
}

impl SequentialPfd {
    /// Creates a PFD with the given output delay.
    pub fn new(delay: Time) -> Self {
        SequentialPfd {
            up: false,
            dn: false,
            prev_ref: Logic::Uninitialized,
            prev_fb: Logic::Uninitialized,
            delay,
        }
    }
}

impl Default for SequentialPfd {
    fn default() -> Self {
        Self::new(Time::ZERO)
    }
}

impl Component for SequentialPfd {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let r = ctx.input_bit(0);
        let f = ctx.input_bit(1);
        if !self.prev_ref.is_high() && r.is_high() {
            self.up = true;
        }
        if !self.prev_fb.is_high() && f.is_high() {
            self.dn = true;
        }
        if self.up && self.dn {
            self.up = false;
            self.dn = false;
        }
        self.prev_ref = r;
        self.prev_fb = f;
        ctx.drive_bit(0, Logic::from_bool(self.up), self.delay);
        ctx.drive_bit(1, Logic::from_bool(self.dn), self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("ref", 1), ("fb", 1)], &[("up", 1), ("dn", 1)])
    }

    fn state_bits(&self) -> usize {
        2
    }

    fn flip_state_bit(&mut self, bit: usize) {
        match bit {
            0 => self.up = !self.up,
            _ => self.dn = !self.dn,
        }
    }

    fn state_label(&self, bit: usize) -> String {
        if bit == 0 { "up" } else { "dn" }.to_owned()
    }

    fn force_state(&mut self, value: u64) {
        self.up = value & 1 != 0;
        self.dn = value & 2 != 0;
    }

    fn state_value(&self) -> Option<u64> {
        Some(u64::from(self.up) | u64::from(self.dn) << 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amsfi_digital::{cells, Netlist, Simulator};

    /// Two clocks with a fixed skew; returns (up, dn) duty observations.
    fn pfd_bench(ref_period_ns: i64, fb_period_ns: i64, fb_skew_ns: i64) -> Simulator {
        let mut net = Netlist::new();
        let r = net.signal("ref", 1);
        let f = net.signal("fb", 1);
        let up = net.signal("up", 1);
        let dn = net.signal("dn", 1);
        net.add(
            "ckr",
            cells::ClockGen::new(Time::from_ns(ref_period_ns)),
            &[],
            &[r],
        );
        net.add(
            "ckf",
            cells::ClockGen::new(Time::from_ns(fb_period_ns)).with_start(Time::from_ns(fb_skew_ns)),
            &[],
            &[f],
        );
        net.add("pfd", SequentialPfd::default(), &[r, f], &[up, dn]);
        let mut sim = Simulator::new(net);
        sim.monitor_name("up");
        sim.monitor_name("dn");
        sim
    }

    fn high_time(sim: &Simulator, name: &str, until: Time) -> Time {
        let w = sim.trace().digital(name).unwrap();
        let mut acc = Time::ZERO;
        let mut last_rise: Option<Time> = None;
        for &(t, v) in w.transitions() {
            if v.is_high() {
                last_rise = Some(t);
            } else if let Some(rise) = last_rise.take() {
                acc += t - rise;
            }
        }
        if let Some(rise) = last_rise {
            acc += until - rise;
        }
        acc
    }

    #[test]
    fn lagging_feedback_raises_up_pulses() {
        // fb lags ref by 20 ns each 100 ns cycle: UP pulses of 20 ns.
        let mut sim = pfd_bench(100, 100, 20);
        sim.run_until(Time::from_us(1)).unwrap();
        let up_time = high_time(&sim, "up", Time::from_us(1));
        let dn_time = high_time(&sim, "dn", Time::from_us(1));
        // ~10 cycles x 20 ns = 200 ns of UP, essentially no DN.
        assert!(
            up_time > Time::from_ns(150) && up_time < Time::from_ns(250),
            "up {up_time}"
        );
        assert!(dn_time < Time::from_ns(10), "dn {dn_time}");
    }

    #[test]
    fn fast_feedback_raises_dn_pulses() {
        // fb faster than ref: the loop must slow down -> DN dominates.
        let mut sim = pfd_bench(100, 80, 0);
        sim.run_until(Time::from_us(2)).unwrap();
        let up_time = high_time(&sim, "up", Time::from_us(2));
        let dn_time = high_time(&sim, "dn", Time::from_us(2));
        assert!(
            dn_time > up_time * 2,
            "dn {dn_time} should dominate up {up_time}"
        );
    }

    #[test]
    fn slow_feedback_pumps_up_on_average() {
        // fb much slower than ref: the loop must speed up -> UP dominates.
        let mut sim = pfd_bench(100, 300, 0);
        sim.run_until(Time::from_us(3)).unwrap();
        let up_time = high_time(&sim, "up", Time::from_us(3));
        let dn_time = high_time(&sim, "dn", Time::from_us(3));
        assert!(
            up_time > dn_time * 2,
            "up {up_time} should dominate dn {dn_time}"
        );
    }

    #[test]
    fn seu_on_up_flag_creates_spurious_pump_pulse() {
        let mut net = Netlist::new();
        let r = net.signal("ref", 1);
        let f = net.signal("fb", 1);
        let up = net.signal("up", 1);
        let dn = net.signal("dn", 1);
        // Idle detector: no clock edges at all.
        net.add("cr", cells::ConstVector::bit(Logic::Zero), &[], &[r]);
        net.add("cf", cells::ConstVector::bit(Logic::Zero), &[], &[f]);
        let pfd = net.add("pfd", SequentialPfd::default(), &[r, f], &[up, dn]);
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(100)).unwrap();
        assert_eq!(sim.value(sim.signal_id("up").unwrap())[0], Logic::Zero);
        sim.flip_state(pfd, 0); // SEU raises the UP flag
        sim.run_until(Time::from_ns(101)).unwrap();
        assert_eq!(sim.value(sim.signal_id("up").unwrap())[0], Logic::One);
        assert_eq!(sim.state_value(pfd), Some(1));
    }

    #[test]
    fn mutant_labels() {
        let pfd = SequentialPfd::default();
        assert_eq!(pfd.state_bits(), 2);
        assert_eq!(pfd.state_label(0), "up");
        assert_eq!(pfd.state_label(1), "dn");
    }
}
