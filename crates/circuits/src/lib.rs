//! Case-study circuits for the `amsfi` fault-injection flow.
//!
//! * [`pll`] — the behavioural PLL of the paper's Fig. 5 (500 kHz reference,
//!   ÷100 feedback, 50 MHz generated clock, 2.5 V digitizer), the circuit on
//!   which Figs. 6–8 were measured, plus an optional digital payload block
//!   clocked by the generated clock;
//! * [`pfd`] — the sequential phase–frequency detector used by the PLL;
//! * [`adc`] — flash and SAR analog-to-digital converters, the paper's
//!   stated future-work target ("blocks including both analog and digital
//!   circuitry, e.g. analog to digital converters");
//! * [`sdm`] — a first-order sigma–delta modulator, the tightest
//!   analog/digital feedback loop in common use;
//! * [`cpu`] — a tiny accumulator processor running a self-checking
//!   program, the "processor-based architecture" of the paper's
//!   reference \[2\].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adc;
pub mod cpu;
pub mod pfd;
pub mod pll;
pub mod sdm;
