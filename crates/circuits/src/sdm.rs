//! A first-order sigma–delta modulator: the third mixed-signal case study.
//!
//! Σ-Δ converters are the most tightly coupled analog/digital loop in common
//! use — an analog integrator and a 1-bit quantizer inside a digital
//! feedback — and therefore a natural stress test for the paper's global
//! flow: an analog strike on the integrator perturbs the *digital* bitstream
//! directly, and a digital SEU in the decimator corrupts a whole output
//! word.
//!
//! Loop: `verr = vin − vfb` → integrator → comparator (digitizer) →
//! clocked 1-bit register → level-driven feedback `vfb`, plus a sinc¹
//! decimator counting ones over `2^log2_osr` clocks. For a DC input the
//! ones-density equals `vin / v_ref`.

use amsfi_analog::{
    blocks, AnalogBlock, AnalogCircuit, AnalogContext, AnalogSolver, BlockId, NodeKind,
};
use amsfi_digital::{cells, Component, ComponentId, EvalContext, Netlist, PortSpec, Simulator};
use amsfi_faults::PulseShape;
use amsfi_mixed::MixedSimulator;
use amsfi_waves::{Logic, LogicVector, Time};
use std::sync::Arc;

use crate::adc::AdcInput;

/// `v_out = (v_a − v_b) + r·i_inj`: the modulator's error summer with the
/// input-referred strike resistance folded in.
#[derive(Debug, Clone)]
struct ErrorSummer {
    r_ohm: f64,
}

impl AnalogBlock for ErrorSummer {
    fn step(&mut self, ctx: &mut AnalogContext<'_>) {
        let v = ctx.input(0) - ctx.input(1) + self.r_ohm * ctx.input(2);
        ctx.set(0, v);
    }
}

/// Sinc¹ decimator: counts ones in the bitstream over `2^log2_osr` clock
/// cycles and publishes the count as the output word.
///
/// Ports: `clk`, `bit` → `code[log2_osr + 1]`, `valid`.
///
/// The accumulator and the published word are mutant targets — an SEU here
/// corrupts exactly one decimated sample.
#[derive(Debug, Clone)]
pub struct SincDecimator {
    log2_osr: u32,
    delay: Time,
    count: u64,
    cycles: u64,
    code: u64,
    prev_clk: Logic,
}

impl SincDecimator {
    /// Creates a decimator with oversampling ratio `2^log2_osr`.
    ///
    /// # Panics
    ///
    /// Panics if `log2_osr` is zero or above 16.
    pub fn new(log2_osr: u32, delay: Time) -> Self {
        assert!((1..=16).contains(&log2_osr), "log2_osr must be in 1..=16");
        SincDecimator {
            log2_osr,
            delay,
            count: 0,
            cycles: 0,
            code: 0,
            prev_clk: Logic::Uninitialized,
        }
    }

    /// The output word width (`log2_osr + 1`, since the count can equal the
    /// oversampling ratio itself).
    pub fn code_width(&self) -> usize {
        self.log2_osr as usize + 1
    }

    /// The oversampling ratio.
    pub fn osr(&self) -> u64 {
        1 << self.log2_osr
    }
}

impl Component for SincDecimator {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let clk = ctx.input_bit(0);
        let mut valid = false;
        if !self.prev_clk.is_high() && clk.is_high() {
            if ctx.input_bit(1).is_high() {
                self.count += 1;
            }
            self.cycles += 1;
            if self.cycles == self.osr() {
                self.code = self.count;
                self.count = 0;
                self.cycles = 0;
                valid = true;
            }
        }
        self.prev_clk = clk;
        ctx.drive(
            0,
            LogicVector::from_u64(self.code, self.code_width()),
            self.delay,
        );
        ctx.drive_bit(1, Logic::from_bool(valid), self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(
            &[("clk", 1), ("bit", 1)],
            &[("code", self.code_width()), ("valid", 1)],
        )
    }

    fn state_bits(&self) -> usize {
        2 * self.code_width()
    }

    fn flip_state_bit(&mut self, bit: usize) {
        let w = self.code_width();
        if bit < w {
            self.count ^= 1 << bit;
        } else {
            self.code ^= 1 << (bit - w);
        }
    }

    fn state_label(&self, bit: usize) -> String {
        let w = self.code_width();
        if bit < w {
            format!("count[{bit}]")
        } else {
            format!("code[{}]", bit - w)
        }
    }

    fn state_value(&self) -> Option<u64> {
        Some(self.count | self.code << self.code_width())
    }
}

/// Configuration of the modulator bench.
#[derive(Debug, Clone)]
pub struct SdmConfig {
    /// Full-scale reference (V); the feedback DAC swings 0..`v_ref`.
    pub v_ref: f64,
    /// Modulator clock period.
    pub clk_period: Time,
    /// Oversampling: the decimator outputs one word per `2^log2_osr` clocks.
    pub log2_osr: u32,
    /// Analog input stimulus.
    pub input: AdcInput,
    /// Injection resistance of the input-referred strike (Ω).
    pub r_inj: f64,
    /// Analog base step.
    pub base_dt: Time,
    /// Optional current-pulse fault on the error summer.
    pub fault: Option<(Arc<dyn PulseShape>, Time)>,
}

impl Default for SdmConfig {
    fn default() -> Self {
        SdmConfig {
            v_ref: 5.0,
            clk_period: Time::from_ns(100),
            log2_osr: 5, // OSR 32
            input: AdcInput::Dc(2.2),
            r_inj: 100.0,
            base_dt: Time::from_ns(10),
            fault: None,
        }
    }
}

impl SdmConfig {
    /// Arms the input-referred saboteur.
    #[must_use]
    pub fn with_fault<P: PulseShape + 'static>(mut self, pulse: P, at: Time) -> Self {
        self.fault = Some((Arc::new(pulse), at));
        self
    }

    /// Wall-clock duration of one decimated output word.
    pub fn word_time(&self) -> Time {
        self.clk_period * (1 << self.log2_osr)
    }
}

/// Signal name of the decimated output word.
pub const SDM_CODE: &str = "code";
/// Signal name of the raw 1-bit modulator stream.
pub const SDM_BIT: &str = "bit_q";

/// The built modulator bench.
#[derive(Debug, Clone)]
pub struct SdmBench {
    /// The coupled simulator.
    pub mixed: MixedSimulator,
    /// The input saboteur block.
    pub saboteur: BlockId,
    /// The decimator (digital mutant target).
    pub decimator: ComponentId,
}

/// Builds the first-order Σ-Δ bench.
pub fn build(config: &SdmConfig) -> SdmBench {
    let mut ckt = AnalogCircuit::new();
    let vin_raw = ckt.node("vin_raw", NodeKind::Voltage);
    let iinj = ckt.node("iinj", NodeKind::Current);
    let vfb = ckt.node("vfb", NodeKind::Voltage);
    let verr = ckt.node("verr", NodeKind::Voltage);
    let vint = ckt.node("vint", NodeKind::Voltage);
    crate::adc::add_input(&mut ckt, config.input, vin_raw);
    let mut sab = blocks::AnalogSaboteur::new();
    if let Some((pulse, at)) = &config.fault {
        sab = sab.with_pulse_arc(Arc::clone(pulse), *at);
    }
    let saboteur = ckt.add("saboteur", sab, &[], &[iinj]);
    ckt.add(
        "summer",
        ErrorSummer {
            r_ohm: config.r_inj,
        },
        &[vin_raw, vfb, iinj],
        &[verr],
    );
    // Integrator gain: ~0.5 V of movement per clock at full-scale error.
    let gain = 1.0 / (config.clk_period.as_secs_f64() * 10.0);
    ckt.add(
        "integrator",
        blocks::Integrator::new(gain, -4.0 * config.v_ref, 4.0 * config.v_ref),
        &[verr],
        &[vint],
    );

    let mut net = Netlist::new();
    let clk = net.signal("clk", 1);
    let bit = net.signal("bit", 1); // digitized comparator decision
    let bit_q = net.signal(SDM_BIT, 1);
    let decim = SincDecimator::new(config.log2_osr, Time::ZERO);
    let code = net.signal(SDM_CODE, decim.code_width());
    let valid = net.signal("valid", 1);
    net.add("ck", cells::ClockGen::new(config.clk_period), &[], &[clk]);
    net.add("ff", cells::Dff::new(1, Time::ZERO), &[clk, bit], &[bit_q]);
    let decimator = net.add("decimator", decim, &[clk, bit_q], &[code, valid]);

    let mut mixed =
        MixedSimulator::new(Simulator::new(net), AnalogSolver::new(ckt, config.base_dt));
    // Quantizer: integrator sign -> digital bit.
    mixed.bind_digitizer("vint", "bit", 0.0, 0.05);
    // 1-bit feedback DAC: latched bit -> 0 / v_ref.
    mixed.bind_driver(SDM_BIT, "vfb", 0.0, config.v_ref);
    SdmBench {
        mixed,
        saboteur,
        decimator,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amsfi_faults::TrapezoidPulse;

    fn code_of(bench: &SdmBench) -> u64 {
        let sig = bench.mixed.digital().signal_id(SDM_CODE).unwrap();
        bench.mixed.digital().value(sig).to_u64().unwrap_or(0)
    }

    #[test]
    fn dc_levels_give_proportional_ones_density() {
        for (vin, expect) in [(0.6, 4u64), (1.25, 8), (2.5, 16), (3.75, 24), (4.4, 28)] {
            let cfg = SdmConfig {
                input: AdcInput::Dc(vin),
                ..SdmConfig::default()
            };
            let mut bench = build(&cfg);
            // Let the loop settle one word, then read the second word.
            bench
                .mixed
                .run_until(cfg.word_time() * 2 + cfg.clk_period)
                .unwrap();
            let code = code_of(&bench);
            let err = code as i64 - expect as i64;
            assert!(
                err.abs() <= 2,
                "vin {vin}: code {code}, expected ~{expect} of 32"
            );
        }
    }

    #[test]
    fn strike_on_integrator_corrupts_one_word_only() {
        let cfg = SdmConfig {
            input: AdcInput::Dc(2.5),
            ..SdmConfig::default()
        };
        // 1 us, 20 mA strike: 2 V error across ~10 clock cycles.
        let word = cfg.word_time(); // 3.2 us
        let pulse = TrapezoidPulse::from_ma_ps(20.0, 100, 100, 1_000_000).unwrap();
        let faulty_cfg = cfg.clone().with_fault(pulse, word * 3 + Time::from_ns(200));
        let mut golden = build(&cfg);
        let mut faulty = build(&faulty_cfg);
        for b in [&mut golden, &mut faulty] {
            b.mixed.run_until(word * 4 + cfg.clk_period).unwrap();
        }
        let (g4, f4) = (code_of(&golden), code_of(&faulty));
        assert_ne!(g4, f4, "the struck word must differ");
        // The following word is clean again (first-order loop: no memory
        // beyond the integrator, which re-converges within a few cycles).
        for b in [&mut golden, &mut faulty] {
            b.mixed.run_until(word * 6 + cfg.clk_period).unwrap();
        }
        let (g6, f6) = (code_of(&golden), code_of(&faulty));
        assert!(
            (g6 as i64 - f6 as i64).abs() <= 1,
            "word after the strike should be clean: {g6} vs {f6}"
        );
    }

    #[test]
    fn decimator_seu_corrupts_published_word() {
        let cfg = SdmConfig {
            input: AdcInput::Dc(2.5),
            ..SdmConfig::default()
        };
        let word = cfg.word_time();
        let mut bench = build(&cfg);
        bench.mixed.run_until(word * 2 + cfg.clk_period).unwrap();
        let before = code_of(&bench);
        // Flip the MSB of the *published* word (bits code_width.. are code).
        let decim = bench.decimator;
        bench.mixed.digital_mut().flip_state(decim, 6 + 4);
        bench
            .mixed
            .run_until(word * 2 + cfg.clk_period * 2)
            .unwrap();
        let after = code_of(&bench);
        assert_eq!(after, before ^ (1 << 4), "published-word SEU visible");
    }

    #[test]
    fn decimator_widths_and_labels() {
        let d = SincDecimator::new(5, Time::ZERO);
        assert_eq!(d.code_width(), 6);
        assert_eq!(d.osr(), 32);
        assert_eq!(d.state_bits(), 12);
        assert_eq!(d.state_label(0), "count[0]");
        assert_eq!(d.state_label(7), "code[1]");
    }
}
