//! A tiny accumulator processor: the "processor-based architecture" case
//! study of the paper's reference \[2\] (Cardarilli et al., *Bit-flip
//! injection in processor-based architectures*).
//!
//! Eight instructions, an 8-bit accumulator, a 16-byte data RAM and a small
//! program ROM — enough microarchitectural state (accumulator, program
//! counter, flags, memory) for SEU campaigns to exhibit the full verdict
//! spectrum: masked upsets in dead values, transients that the program
//! overwrites, and failures that corrupt the output stream.

use amsfi_digital::{Component, EvalContext, PortSpec, WordComponent, WordEvalContext};
use amsfi_waves::{Logic, LogicPlanes, LogicVector, Time, LANES};
use std::fmt;

/// One instruction of the tiny ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `acc <- imm`.
    Ldi(u8),
    /// `acc <- ram[addr]`.
    Lda(u8),
    /// `ram[addr] <- acc`.
    Sta(u8),
    /// `acc <- acc + ram[addr]` (wrapping).
    Add(u8),
    /// `acc <- acc - ram[addr]` (wrapping).
    Sub(u8),
    /// `pc <- addr`.
    Jmp(u8),
    /// `pc <- addr` when the last ALU result was nonzero.
    Jnz(u8),
    /// Drive the output port with `acc`.
    Out,
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::Ldi(v) => write!(f, "LDI {v:#04x}"),
            Insn::Lda(a) => write!(f, "LDA [{a}]"),
            Insn::Sta(a) => write!(f, "STA [{a}]"),
            Insn::Add(a) => write!(f, "ADD [{a}]"),
            Insn::Sub(a) => write!(f, "SUB [{a}]"),
            Insn::Jmp(a) => write!(f, "JMP {a}"),
            Insn::Jnz(a) => write!(f, "JNZ {a}"),
            Insn::Out => write!(f, "OUT"),
        }
    }
}

const RAM_SIZE: usize = 16;
const PC_BITS: usize = 6; // up to 64 instructions

/// The processor component.
///
/// Ports: `clk`, `rst` → `out[8]`, `pc[6]`. One instruction executes per
/// rising clock edge; `rst` (synchronous) restarts the program and clears
/// the architectural state (the RAM keeps its contents, like a real SRAM).
///
/// Mutant surface (in order): accumulator bits, program-counter bits, the
/// zero flag, then every RAM bit.
#[derive(Debug, Clone)]
pub struct TinyCpu {
    program: Vec<Insn>,
    delay: Time,
    acc: u8,
    pc: u8,
    nonzero: bool,
    ram: [u8; RAM_SIZE],
    out: u8,
    prev_clk: Logic,
}

impl TinyCpu {
    /// Creates a processor executing `program` (looped via explicit jumps).
    ///
    /// # Panics
    ///
    /// Panics if the program is empty, longer than 64 instructions, or
    /// addresses RAM beyond 16 bytes / jumps beyond its own length.
    pub fn new(program: Vec<Insn>, delay: Time) -> Self {
        assert!(
            !program.is_empty() && program.len() <= 1 << PC_BITS,
            "program must have 1..=64 instructions"
        );
        for (i, insn) in program.iter().enumerate() {
            match *insn {
                Insn::Lda(a) | Insn::Sta(a) | Insn::Add(a) | Insn::Sub(a) => {
                    assert!(
                        (a as usize) < RAM_SIZE,
                        "insn {i}: RAM address {a} out of range"
                    );
                }
                Insn::Jmp(a) | Insn::Jnz(a) => {
                    assert!(
                        (a as usize) < program.len(),
                        "insn {i}: jump target {a} out of range"
                    );
                }
                Insn::Ldi(_) | Insn::Out => {}
            }
        }
        TinyCpu {
            program,
            delay,
            acc: 0,
            pc: 0,
            nonzero: false,
            ram: [0; RAM_SIZE],
            out: 0,
            prev_clk: Logic::Uninitialized,
        }
    }

    /// The loaded program.
    pub fn program(&self) -> &[Insn] {
        &self.program
    }

    fn execute_one(&mut self) {
        let insn = self.program[self.pc as usize % self.program.len()];
        let mut next_pc = self.pc.wrapping_add(1);
        if next_pc as usize >= self.program.len() {
            next_pc = 0;
        }
        match insn {
            Insn::Ldi(v) => {
                self.acc = v;
                self.nonzero = v != 0;
            }
            Insn::Lda(a) => {
                self.acc = self.ram[a as usize];
                self.nonzero = self.acc != 0;
            }
            Insn::Sta(a) => self.ram[a as usize] = self.acc,
            Insn::Add(a) => {
                self.acc = self.acc.wrapping_add(self.ram[a as usize]);
                self.nonzero = self.acc != 0;
            }
            Insn::Sub(a) => {
                self.acc = self.acc.wrapping_sub(self.ram[a as usize]);
                self.nonzero = self.acc != 0;
            }
            Insn::Jmp(a) => next_pc = a,
            Insn::Jnz(a) => {
                if self.nonzero {
                    next_pc = a;
                }
            }
            Insn::Out => self.out = self.acc,
        }
        self.pc = next_pc;
    }
}

impl Component for TinyCpu {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let clk = ctx.input_bit(0);
        if !self.prev_clk.is_high() && clk.is_high() {
            if ctx.input_bit(1).is_high() {
                self.acc = 0;
                self.pc = 0;
                self.nonzero = false;
                self.out = 0;
            } else {
                self.execute_one();
            }
        }
        self.prev_clk = clk;
        ctx.drive(0, LogicVector::from_u64(self.out as u64, 8), self.delay);
        ctx.drive(
            1,
            LogicVector::from_u64(self.pc as u64, PC_BITS),
            self.delay,
        );
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(&[("clk", 1), ("rst", 1)], &[("out", 8), ("pc", PC_BITS)])
    }

    fn state_bits(&self) -> usize {
        8 + PC_BITS + 1 + RAM_SIZE * 8
    }

    fn flip_state_bit(&mut self, bit: usize) {
        if bit < 8 {
            self.acc ^= 1 << bit;
        } else if bit < 8 + PC_BITS {
            self.pc ^= 1 << (bit - 8);
        } else if bit == 8 + PC_BITS {
            self.nonzero = !self.nonzero;
        } else {
            let b = bit - 8 - PC_BITS - 1;
            self.ram[b / 8] ^= 1 << (b % 8);
        }
    }

    fn state_label(&self, bit: usize) -> String {
        if bit < 8 {
            format!("acc[{bit}]")
        } else if bit < 8 + PC_BITS {
            format!("pc[{}]", bit - 8)
        } else if bit == 8 + PC_BITS {
            "flag_nz".to_owned()
        } else {
            let b = bit - 8 - PC_BITS - 1;
            format!("ram[{}][{}]", b / 8, b % 8)
        }
    }

    fn force_state(&mut self, value: u64) {
        self.pc = (value as u8) % self.program.len() as u8;
    }

    fn state_value(&self) -> Option<u64> {
        Some(self.acc as u64 | (self.pc as u64) << 8 | (self.nonzero as u64) << 14)
    }

    fn word_component(&self) -> Option<Box<dyn WordComponent>> {
        Some(Box::new(WordTinyCpu {
            program: self.program.clone(),
            delay: self.delay,
            acc: [self.acc; LANES],
            pc: [self.pc; LANES],
            nonzero: if self.nonzero { u64::MAX } else { 0 },
            ram: [self.ram; LANES],
            out: [self.out; LANES],
            prev_clk: LogicPlanes::splat(self.prev_clk),
        }))
    }
}

/// The word-parallel (64-lane) processor: per-lane architectural state,
/// shared program ROM, one evaluation per clock event for all lanes.
///
/// Instruction execution stays a per-lane scalar loop (the ISA semantics do
/// not plane-vectorize), but it only runs for lanes on a rising edge; the
/// expensive parts of the cloned-mode path — 64 event wheels, 64
/// `LogicVector` port drives per edge, 64 input stagings — collapse into
/// masked plane operations.
#[derive(Clone)]
struct WordTinyCpu {
    program: Vec<Insn>,
    delay: Time,
    acc: [u8; LANES],
    pc: [u8; LANES],
    nonzero: u64,
    ram: [[u8; RAM_SIZE]; LANES],
    out: [u8; LANES],
    prev_clk: LogicPlanes,
}

impl fmt::Debug for WordTinyCpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WordTinyCpu")
            .field("program", &self.program.len())
            .field("delay", &self.delay)
            .finish_non_exhaustive()
    }
}

impl WordTinyCpu {
    /// Mirrors [`TinyCpu::execute_one`] for one lane.
    fn execute_one(&mut self, lane: usize) {
        let pc = self.pc[lane];
        let insn = self.program[pc as usize % self.program.len()];
        let mut next_pc = pc.wrapping_add(1);
        if next_pc as usize >= self.program.len() {
            next_pc = 0;
        }
        let bit = 1u64 << lane;
        match insn {
            Insn::Ldi(v) => {
                self.acc[lane] = v;
                self.nonzero = (self.nonzero & !bit) | if v != 0 { bit } else { 0 };
            }
            Insn::Lda(a) => {
                self.acc[lane] = self.ram[lane][a as usize];
                self.nonzero = (self.nonzero & !bit) | if self.acc[lane] != 0 { bit } else { 0 };
            }
            Insn::Sta(a) => self.ram[lane][a as usize] = self.acc[lane],
            Insn::Add(a) => {
                self.acc[lane] = self.acc[lane].wrapping_add(self.ram[lane][a as usize]);
                self.nonzero = (self.nonzero & !bit) | if self.acc[lane] != 0 { bit } else { 0 };
            }
            Insn::Sub(a) => {
                self.acc[lane] = self.acc[lane].wrapping_sub(self.ram[lane][a as usize]);
                self.nonzero = (self.nonzero & !bit) | if self.acc[lane] != 0 { bit } else { 0 };
            }
            Insn::Jmp(a) => next_pc = a,
            Insn::Jnz(a) => {
                if self.nonzero & bit != 0 {
                    next_pc = a;
                }
            }
            Insn::Out => self.out[lane] = self.acc[lane],
        }
        self.pc[lane] = next_pc;
    }

    /// Packs one per-lane register into output planes, bit by bit.
    fn pack(values: &[u8; LANES], width: usize) -> Vec<LogicPlanes> {
        let mut planes = Vec::with_capacity(width);
        for bit in 0..width {
            let mut ones = 0u64;
            for (lane, v) in values.iter().enumerate() {
                ones |= u64::from((v >> bit) & 1) << lane;
            }
            planes.push(LogicPlanes::from_bool_mask(ones));
        }
        planes
    }
}

impl WordComponent for WordTinyCpu {
    fn eval(&mut self, ctx: &mut WordEvalContext<'_>) {
        let clk = ctx.input_bit(0);
        let rst = ctx.input_bit(1);
        let mask = ctx.eval_mask();
        let rising = mask & !self.prev_clk.is_high_mask() & clk.is_high_mask();
        if rising != 0 {
            let mut reset = rising & rst.is_high_mask();
            let mut exec = rising & !reset;
            while reset != 0 {
                let lane = reset.trailing_zeros() as usize;
                reset &= reset - 1;
                self.acc[lane] = 0;
                self.pc[lane] = 0;
                self.nonzero &= !(1 << lane);
                self.out[lane] = 0;
            }
            while exec != 0 {
                let lane = exec.trailing_zeros() as usize;
                exec &= exec - 1;
                self.execute_one(lane);
            }
        }
        self.prev_clk = self.prev_clk.select(mask, clk);
        ctx.drive(0, Self::pack(&self.out, 8), self.delay);
        ctx.drive(1, Self::pack(&self.pc, PC_BITS), self.delay);
    }

    fn flip_state_bit(&mut self, lane: usize, bit: usize) {
        if bit < 8 {
            self.acc[lane] ^= 1 << bit;
        } else if bit < 8 + PC_BITS {
            self.pc[lane] ^= 1 << (bit - 8);
        } else if bit == 8 + PC_BITS {
            self.nonzero ^= 1 << lane;
        } else {
            let b = bit - 8 - PC_BITS - 1;
            self.ram[lane][b / 8] ^= 1 << (b % 8);
        }
    }

    fn force_state(&mut self, lane: usize, value: u64) {
        self.pc[lane] = (value as u8) % self.program.len() as u8;
    }

    fn lanes_equal(&self, a: usize, b: usize) -> bool {
        self.acc[a] == self.acc[b]
            && self.pc[a] == self.pc[b]
            && (self.nonzero >> a) & 1 == (self.nonzero >> b) & 1
            && self.ram[a] == self.ram[b]
            && self.out[a] == self.out[b]
            && self.prev_clk.lane(a) == self.prev_clk.lane(b)
    }
}

/// A self-checking benchmark program: a counter-mixed checksum over a RAM
/// table.
///
/// The program initialises `ram[0..=3]` with constants and keeps a loop
/// counter in `ram[4]`; every iteration emits `counter + Σ table` on `out`
/// — a deterministic stream with period 256 in which any upset of the live
/// architectural state (table entries, counter, accumulator in flight,
/// program counter) shows up quickly, while upsets in the unused RAM words
/// `5..=15` stay invisible (masked).
pub fn checksum_program() -> Vec<Insn> {
    vec![
        // init table and counter
        Insn::Ldi(0x11),
        Insn::Sta(0),
        Insn::Ldi(0x22),
        Insn::Sta(1),
        Insn::Ldi(0x33),
        Insn::Sta(2),
        Insn::Ldi(0x44),
        Insn::Sta(3),
        Insn::Ldi(0),
        Insn::Sta(4),
        // loop (pc = 10): counter += 1
        Insn::Ldi(1),
        Insn::Add(4),
        Insn::Sta(4),
        // acc = counter + table sum
        Insn::Add(0),
        Insn::Add(1),
        Insn::Add(2),
        Insn::Add(3),
        Insn::Out,
        // exercise the flag path: counter wrap takes the JMP leg
        Insn::Lda(4),
        Insn::Jnz(10),
        Insn::Jmp(10),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use amsfi_digital::{cells, Netlist, Simulator};

    fn cpu_bench(program: Vec<Insn>) -> (Simulator, amsfi_digital::ComponentId) {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let out = net.signal("out", 8);
        let pc = net.signal("pc", 6);
        net.add("ck", cells::ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
        let cpu = net.add(
            "cpu",
            TinyCpu::new(program, Time::ZERO),
            &[clk, rst],
            &[out, pc],
        );
        let mut sim = Simulator::new(net);
        sim.monitor_name("out");
        (sim, cpu)
    }

    #[test]
    fn checksum_program_matches_reference_interpreter() {
        let program = checksum_program();
        let (mut sim, _) = cpu_bench(program.clone());
        let out_sig = sim.signal_id("out").unwrap();
        // Reference: the out register after each executed instruction.
        let mut reference = Vec::new();
        {
            let mut acc = 0u8;
            let mut pc = 0usize;
            let mut nz = false;
            let mut ram = [0u8; RAM_SIZE];
            let mut out = 0u8;
            for _ in 0..200 {
                let insn = program[pc];
                let mut next = (pc + 1) % program.len();
                match insn {
                    Insn::Ldi(v) => {
                        acc = v;
                        nz = v != 0;
                    }
                    Insn::Lda(a) => {
                        acc = ram[a as usize];
                        nz = acc != 0;
                    }
                    Insn::Sta(a) => ram[a as usize] = acc,
                    Insn::Add(a) => {
                        acc = acc.wrapping_add(ram[a as usize]);
                        nz = acc != 0;
                    }
                    Insn::Sub(a) => {
                        acc = acc.wrapping_sub(ram[a as usize]);
                        nz = acc != 0;
                    }
                    Insn::Jmp(a) => next = a as usize,
                    Insn::Jnz(a) => {
                        if nz {
                            next = a as usize;
                        }
                    }
                    Insn::Out => out = acc,
                }
                pc = next;
                reference.push(out);
            }
        }
        // Edges at 5, 15, ... ns: sample 1 ns after each edge.
        for (k, &expect) in reference.iter().enumerate() {
            let t = Time::from_ns(5 + 10 * k as i64 + 1);
            sim.run_until(t).unwrap();
            assert_eq!(
                sim.value(out_sig).to_u64(),
                Some(expect as u64),
                "after instruction {k}"
            );
        }
    }

    #[test]
    fn out_stream_is_nontrivial() {
        let (mut sim, _) = cpu_bench(checksum_program());
        let out_sig = sim.signal_id("out").unwrap();
        let mut seen = std::collections::HashSet::new();
        for k in 1..=100 {
            sim.run_until(Time::from_ns(80 * k)).unwrap();
            seen.insert(sim.value(out_sig).to_u64());
        }
        assert!(seen.len() > 20, "output must keep changing: {}", seen.len());
    }

    #[test]
    fn table_seu_corrupts_the_stream() {
        let (mut golden, _) = cpu_bench(checksum_program());
        let (mut faulty, cpu) = cpu_bench(checksum_program());
        golden.run_until(Time::from_us(10)).unwrap();
        faulty.run_until(Time::from_us(2)).unwrap();
        // ram[1] holds table entry 0x22, read on every loop iteration.
        let ram1_bit0 = 8 + 6 + 1 + 8;
        faulty.flip_state(cpu, ram1_bit0);
        faulty.run_until(Time::from_us(10)).unwrap();
        assert_ne!(golden.trace(), faulty.trace());
    }

    #[test]
    fn unused_ram_seu_is_masked() {
        let (mut golden, _) = cpu_bench(checksum_program());
        let (mut faulty, cpu) = cpu_bench(checksum_program());
        golden.run_until(Time::from_us(10)).unwrap();
        faulty.run_until(Time::from_us(2)).unwrap();
        // RAM word 9 is never read by the checksum program.
        let ram9_bit0 = 8 + 6 + 1 + 9 * 8;
        faulty.flip_state(cpu, ram9_bit0);
        faulty.run_until(Time::from_us(10)).unwrap();
        assert_eq!(golden.trace(), faulty.trace(), "dead RAM upset must mask");
    }

    #[test]
    fn pc_force_models_control_flow_upset() {
        let (mut sim, cpu) = cpu_bench(checksum_program());
        sim.run_until(Time::from_us(1)).unwrap();
        sim.force_state(cpu, 0); // jump back to the init sequence
        sim.run_until(Time::from_us(1) + Time::from_ns(15)).unwrap();
        let pc_sig = sim.signal_id("pc").unwrap();
        assert!(sim.value(pc_sig).to_u64().unwrap() <= 2);
    }

    #[test]
    fn program_validation() {
        assert!(std::panic::catch_unwind(|| TinyCpu::new(vec![], Time::ZERO)).is_err());
        assert!(
            std::panic::catch_unwind(|| TinyCpu::new(vec![Insn::Lda(99)], Time::ZERO)).is_err()
        );
        assert!(std::panic::catch_unwind(|| TinyCpu::new(vec![Insn::Jmp(5)], Time::ZERO)).is_err());
    }

    #[test]
    fn mutant_labels_cover_architecture() {
        let cpu = TinyCpu::new(checksum_program(), Time::ZERO);
        assert_eq!(cpu.state_bits(), 8 + 6 + 1 + 128);
        assert_eq!(cpu.state_label(0), "acc[0]");
        assert_eq!(cpu.state_label(8), "pc[0]");
        assert_eq!(cpu.state_label(14), "flag_nz");
        assert_eq!(cpu.state_label(15), "ram[0][0]");
        assert_eq!(cpu.state_label(15 + 77), "ram[9][5]");
    }

    #[test]
    fn word_batch_matches_scalar_for_cpu_seus() {
        use amsfi_digital::{LaneOutcome, WordBatchSimulator};
        const T_END: Time = Time::from_us(4);
        // Representative mutant surface: acc, pc, the flag, a live RAM bit
        // (table entry) and a dead RAM bit (masked upset).
        let bits = [0usize, 9, 14, 15 + 8, 15 + 9 * 8];
        let times = [Time::from_ns(905), Time::from_us(2)];

        let (golden, cpu) = cpu_bench(checksum_program());
        let mut batch = WordBatchSimulator::new(golden, T_END);
        let mut cases = Vec::new();
        for &at in &times {
            for &bit in &bits {
                batch.add_lane(at);
                cases.push((at, bit));
            }
        }
        let report = batch
            .run(
                |lane, sim| {
                    sim.flip_state(cpu, cases[lane].1);
                    Ok(())
                },
                |_, _| {},
            )
            .unwrap();

        for (lane, &(at, bit)) in cases.iter().enumerate() {
            let (mut scalar, cpu) = cpu_bench(checksum_program());
            scalar.run_until(at).unwrap();
            scalar.flip_state(cpu, bit);
            scalar.run_until(T_END).unwrap();
            let scalar_trace = scalar.into_trace();
            match &report.outcomes[lane] {
                LaneOutcome::Completed { trace, .. } => {
                    assert_eq!(trace, &scalar_trace, "lane {lane} (bit {bit} @ {at})");
                }
                LaneOutcome::Failed { error } => panic!("lane {lane}: {error}"),
            }
        }
    }

    #[test]
    fn insn_display() {
        assert_eq!(Insn::Ldi(0x11).to_string(), "LDI 0x11");
        assert_eq!(Insn::Jnz(8).to_string(), "JNZ 8");
        assert_eq!(Insn::Out.to_string(), "OUT");
    }
}
