//! The behavioural PLL of the paper's Fig. 5, with its digital payload.
//!
//! Hierarchy (paper names in parentheses):
//!
//! ```text
//!  f_ref ──► SequentialPfd ──► up/dn ──► ChargePump ──► icp ──► LeadLagFilter
//!  (F_in)    (Sequential        │          (Charge      ▲        (Low-pass
//!            Phase-frequency    │           Pump)       │         Filter)
//!            Detector)          │                  AnalogSaboteur │
//!    ▲                          │              (current pulse     ▼
//!    │                          │               injection)      vctrl
//!    fb ◄── ClockDivider ◄── f_out ◄── Digitizer ◄── vco_out ◄── Vco
//!           (Divider)         (F_out)  (Comparator,              (Analog VCO)
//!                                       Threshold 2.5 V)
//! ```
//!
//! Operating point from the paper: 500 kHz reference, ÷100 feedback,
//! 50 MHz / 20 ns generated clock, 2.5 V digitizer threshold. The injections
//! of Figs. 6–8 land on the `icp` node (charge-pump output / filter input).

use crate::pfd::SequentialPfd;
use amsfi_analog::{blocks, AnalogCircuit, AnalogSolver, BlockId, NodeKind};
use amsfi_digital::{cells, Netlist, Simulator};
use amsfi_faults::PulseShape;
use amsfi_mixed::MixedSimulator;
use amsfi_waves::{measure, Fnv1a, ForkableSim, Time, Trace};
use std::sync::Arc;

/// Parameters of the PLL test bench. [`PllConfig::default`] reproduces the
/// paper's operating point with loop dynamics that lock comfortably before
/// the paper's 0.17 ms injection instant.
#[derive(Debug, Clone)]
pub struct PllConfig {
    /// Reference frequency (paper: 500 kHz).
    pub f_ref_hz: f64,
    /// Feedback division ratio (paper: 100, for a 50 MHz output).
    pub divide: u64,
    /// Charge-pump current (A).
    pub icp_a: f64,
    /// Loop-filter resistor (Ω).
    pub r_ohm: f64,
    /// Loop-filter zero capacitor (F).
    pub c1_f: f64,
    /// Loop-filter ripple capacitor (F).
    pub c2_f: f64,
    /// VCO sensitivity (Hz/V).
    pub kvco_hz_per_v: f64,
    /// VCO centre frequency (Hz) at `v_center`.
    pub f0_hz: f64,
    /// Control voltage for `f0_hz` (paper digitizer threshold: 2.5 V).
    pub v_center: f64,
    /// Digitizer threshold (paper: 2.5 V).
    pub threshold_v: f64,
    /// Digitizer hysteresis band (V).
    pub hysteresis_v: f64,
    /// Initial control voltage (pre-charged loop filter).
    pub initial_vctrl: f64,
    /// Analog base step.
    pub base_dt: Time,
    /// Instantiate the digital payload block clocked by `f_out`.
    pub payload: bool,
    /// Optional current-pulse fault on the `icp` node: `(pulse, time)`.
    pub fault: Option<(Arc<dyn PulseShape>, Time)>,
}

impl Default for PllConfig {
    fn default() -> Self {
        PllConfig {
            f_ref_hz: 500e3,
            divide: 100,
            icp_a: 200e-6,
            r_ohm: 20e3,
            c1_f: 1e-9,
            c2_f: 50e-12,
            kvco_hz_per_v: 30e6,
            f0_hz: 50e6,
            v_center: 2.5,
            threshold_v: 2.5,
            hysteresis_v: 0.2,
            initial_vctrl: 2.0,
            base_dt: Time::from_ns(1),
            payload: false,
            fault: None,
        }
    }
}

impl PllConfig {
    /// Arms the built-in saboteur on the filter input with `pulse` at `at`
    /// (the paper's injection location for Figs. 6–8).
    #[must_use]
    pub fn with_fault<P: PulseShape + 'static>(mut self, pulse: P, at: Time) -> Self {
        self.fault = Some((Arc::new(pulse), at));
        self
    }

    /// A fast-locking variant for campaigns and tests: 5 MHz reference,
    /// ÷10 feedback — the same 50 MHz generated clock as the paper's
    /// operating point, but with a 10x wider loop bandwidth so that the PLL
    /// locks within a few microseconds of simulated time.
    pub fn fast() -> Self {
        PllConfig {
            f_ref_hz: 5e6,
            divide: 10,
            icp_a: 500e-6,
            r_ohm: 10e3,
            c1_f: 200e-12,
            c2_f: 30e-12,
            initial_vctrl: 2.3,
            ..PllConfig::default()
        }
    }

    /// Nominal output period `divide / f_ref`.
    pub fn nominal_period(&self) -> Time {
        Time::from_secs_f64(1.0 / (self.f_ref_hz * self.divide as f64))
    }
}

/// Well-known signal and node names of the built PLL bench.
pub mod names {
    /// Digital reference clock (the paper's `F_in`).
    pub const F_REF: &str = "f_ref";
    /// Divided feedback clock.
    pub const FB: &str = "fb";
    /// PFD UP output (digital).
    pub const UP: &str = "up";
    /// PFD DOWN output (digital).
    pub const DN: &str = "dn";
    /// Generated clock (the paper's `F_out`, digitizer output).
    pub const F_OUT: &str = "f_out";
    /// Charge-pump output / loop-filter input current node — the paper's
    /// injection target.
    pub const ICP: &str = "icp";
    /// VCO control voltage (the "VCO input" plotted in Figs. 6–8).
    pub const VCTRL: &str = "vctrl";
    /// Raw VCO output voltage.
    pub const VCO_OUT: &str = "vco_out";
    /// Payload counter bus (when the payload is instantiated).
    pub const COUNT: &str = "count";
    /// Payload shift-register bus.
    pub const SHIFT: &str = "shift";
    /// Payload shift-register serial output.
    pub const SHIFT_OUT: &str = "shift_out";
    /// Payload parity bit.
    pub const PARITY: &str = "parity";
}

/// The built PLL test bench: the mixed-mode simulator plus the ids needed
/// for instrumentation.
#[derive(Debug, Clone)]
pub struct PllBench {
    /// The coupled simulator, ready to run.
    pub mixed: MixedSimulator,
    /// The saboteur block on the `icp` node (armed or transparent).
    pub saboteur: BlockId,
    /// The PFD component (digital mutant target).
    pub pfd: amsfi_digital::ComponentId,
    /// The divider component (digital mutant target).
    pub divider: amsfi_digital::ComponentId,
    /// Payload component ids, in instantiation order, when built with
    /// `payload: true`: counter, parity, shift register.
    pub payload: Vec<amsfi_digital::ComponentId>,
    nominal_period: Time,
}

impl PllBench {
    /// Monitors the signals the paper's figures plot: `vctrl` (VCO input),
    /// `f_out`, `fb`, and the payload outputs when present.
    pub fn monitor_standard(&mut self) {
        self.mixed.analog_mut().monitor_name(names::VCTRL);
        self.mixed.digital_mut().monitor_name(names::F_OUT);
        self.mixed.digital_mut().monitor_name(names::FB);
        if !self.payload.is_empty() {
            self.mixed.digital_mut().monitor_name(names::COUNT);
            self.mixed.digital_mut().monitor_name(names::SHIFT_OUT);
        }
    }

    /// Runs until `t_end`.
    ///
    /// # Errors
    ///
    /// Propagates digital kernel errors.
    pub fn run_until(&mut self, t_end: Time) -> Result<(), amsfi_digital::SimError> {
        self.mixed.run_until(t_end)
    }

    /// The current VCO control voltage.
    pub fn vctrl(&self) -> f64 {
        let node = self.mixed.analog().node_id(names::VCTRL).expect("built");
        self.mixed.analog().value(node)
    }

    /// The merged digital + analog trace.
    pub fn trace(&self) -> Trace {
        self.mixed.merged_trace()
    }

    /// The nominal generated-clock period (20 ns at the paper's operating
    /// point).
    pub fn nominal_period(&self) -> Time {
        self.nominal_period
    }

    /// Mean `f_out` frequency over `[from, to]`, from the recorded trace
    /// (requires [`PllBench::monitor_standard`] before running).
    pub fn measured_fout(&self, from: Time, to: Time) -> Option<f64> {
        let trace = self.mixed.digital().trace();
        measure::mean_frequency(trace.digital(names::F_OUT)?, from, to)
    }

    /// Installs a [`amsfi_waves::SimBudget`] on the co-simulation loop (see
    /// [`MixedSimulator::set_budget`]): step/deadline budgets, the `min_dt`
    /// timestep floor and the per-step non-finite node scan all apply to
    /// every subsequent [`PllBench::run_until`].
    pub fn set_budget(&mut self, budget: amsfi_waves::SimBudget) {
        self.mixed.set_budget(budget);
    }

    /// Arms (or re-arms) the built-in saboteur on the `icp` node in place:
    /// inject `pulse` at `at`. Campaigns build the bench once, disarmed,
    /// and arm the per-case pulse on a forked copy — the instrumented and
    /// pristine circuits are structurally identical, so checkpoints
    /// transfer between them.
    pub fn arm_saboteur(&mut self, pulse: Arc<dyn PulseShape>, at: Time) {
        self.mixed
            .analog_mut()
            .block_mut(self.saboteur)
            .as_any_mut()
            .downcast_mut::<blocks::AnalogSaboteur>()
            .expect("saboteur block id points at an AnalogSaboteur")
            .arm(pulse, at);
    }
}

impl ForkableSim for PllBench {
    type Error = amsfi_digital::SimError;

    fn advance_to(&mut self, t: Time) -> Result<(), amsfi_digital::SimError> {
        self.mixed.run_until(t)
    }

    fn current_time(&self) -> Time {
        self.mixed.now()
    }

    fn snapshot_trace(&self) -> Trace {
        self.mixed.merged_trace()
    }

    fn structural_fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str("amsfi-pll-bench");
        h.eat();
        h.write_u64(self.mixed.fingerprint());
        h.eat();
        h.write_u64(self.nominal_period.as_fs() as u64);
        h.finish()
    }

    fn install_budget(&mut self, budget: amsfi_waves::SimBudget) {
        self.set_budget(budget);
    }

    fn install_observer(&mut self, observer: amsfi_waves::SimObserver) {
        self.mixed.set_observer(observer);
    }
}

/// Builds the paper's PLL test bench from a configuration.
///
/// # Examples
///
/// ```no_run
/// use amsfi_circuits::pll;
/// use amsfi_waves::Time;
///
/// let mut bench = pll::build(&pll::PllConfig::default());
/// bench.monitor_standard();
/// bench.run_until(Time::from_us(100))?;
/// let f = bench.measured_fout(Time::from_us(80), Time::from_us(100)).unwrap();
/// assert!((f - 50e6).abs() / 50e6 < 0.01);
/// # Ok::<(), amsfi_digital::SimError>(())
/// ```
pub fn build(config: &PllConfig) -> PllBench {
    assert!(
        config.divide >= 2 && config.divide.is_multiple_of(2),
        "divide must be even"
    );
    // ---- digital half -------------------------------------------------
    let mut net = Netlist::new();
    let f_ref = net.signal(names::F_REF, 1);
    let fb = net.signal(names::FB, 1);
    let up = net.signal(names::UP, 1);
    let dn = net.signal(names::DN, 1);
    let f_out = net.signal(names::F_OUT, 1); // driven by the digitizer
    let ref_period = Time::from_secs_f64(1.0 / config.f_ref_hz);
    net.add("refclk", cells::ClockGen::new(ref_period), &[], &[f_ref]);
    let pfd = net.add("pfd", SequentialPfd::default(), &[f_ref, fb], &[up, dn]);
    let divider = net.add(
        "divider",
        cells::ClockDivider::new(config.divide, Time::ZERO),
        &[f_out],
        &[fb],
    );
    let mut payload_ids = Vec::new();
    if config.payload {
        let rst = net.signal("payload_rst", 1);
        let en = net.signal("payload_en", 1);
        let count = net.signal(names::COUNT, 8);
        let parity = net.signal(names::PARITY, 1);
        let shift = net.signal(names::SHIFT, 8);
        let shift_out = net.signal(names::SHIFT_OUT, 1);
        net.add(
            "rst0",
            cells::ConstVector::bit(amsfi_waves::Logic::Zero),
            &[],
            &[rst],
        );
        net.add(
            "en1",
            cells::ConstVector::bit(amsfi_waves::Logic::One),
            &[],
            &[en],
        );
        let ctr = net.add(
            "payload_counter",
            cells::Counter::new(8, Time::ZERO),
            &[f_out, rst, en],
            &[count],
        );
        let par = net.add(
            "payload_parity",
            cells::Parity::new(8, Time::ZERO),
            &[count],
            &[parity],
        );
        let sr = net.add(
            "payload_shift",
            cells::ShiftReg::new(8, Time::ZERO),
            &[f_out, parity],
            &[shift, shift_out],
        );
        payload_ids.extend([ctr, par, sr]);
    }

    // ---- analog half ---------------------------------------------------
    let mut ckt = AnalogCircuit::new();
    let up_v = ckt.node("up_v", NodeKind::Voltage);
    let dn_v = ckt.node("dn_v", NodeKind::Voltage);
    let icp = ckt.node(names::ICP, NodeKind::Current);
    let vctrl = ckt.node(names::VCTRL, NodeKind::Voltage);
    let vco_out = ckt.node(names::VCO_OUT, NodeKind::Voltage);
    ckt.add(
        "charge_pump",
        blocks::ChargePump::symmetric(config.icp_a),
        &[up_v, dn_v],
        &[icp],
    );
    let mut sab = blocks::AnalogSaboteur::new();
    if let Some((pulse, at)) = &config.fault {
        sab = sab.with_pulse_arc(Arc::clone(pulse), *at);
    }
    let saboteur = ckt.add("saboteur", sab, &[], &[icp]);
    ckt.add(
        "loop_filter",
        blocks::LeadLagFilter::new(config.r_ohm, config.c1_f, config.c2_f)
            .with_initial(config.initial_vctrl),
        &[icp],
        &[vctrl],
    );
    ckt.add(
        "vco",
        blocks::Vco::new(
            config.f0_hz,
            config.kvco_hz_per_v,
            config.v_center,
            config.v_center, // amplitude: swing 0 .. 2·v_center
            config.v_center, // offset
        ),
        &[vctrl],
        &[vco_out],
    );

    // ---- couple the domains ---------------------------------------------
    let mut mixed =
        MixedSimulator::new(Simulator::new(net), AnalogSolver::new(ckt, config.base_dt));
    mixed.bind_driver(names::UP, "up_v", 0.0, 5.0);
    mixed.bind_driver(names::DN, "dn_v", 0.0, 5.0);
    mixed.bind_digitizer(
        names::VCO_OUT,
        names::F_OUT,
        config.threshold_v,
        config.hysteresis_v,
    );
    PllBench {
        mixed,
        saboteur,
        pfd,
        divider,
        payload: payload_ids,
        nominal_period: config.nominal_period(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> PllConfig {
        PllConfig::fast()
    }

    #[test]
    fn fast_pll_locks_to_n_times_reference() {
        let mut bench = build(&fast_config());
        bench.monitor_standard();
        bench.run_until(Time::from_us(30)).unwrap();
        let f = bench
            .measured_fout(Time::from_us(25), Time::from_us(30))
            .expect("edges");
        assert!(
            (f - 50e6).abs() / 50e6 < 5e-3,
            "locked frequency {f:.3e} should be 50 MHz"
        );
        // Mean control voltage near the VCO centre. (The instantaneous
        // value carries charge-pump ripple on the small C2, so average.)
        let w = bench.trace();
        let vctrl = w.analog(names::VCTRL).unwrap();
        let samples: Vec<f64> = vctrl
            .samples()
            .iter()
            .filter(|(t, _)| *t >= Time::from_us(25))
            .map(|&(_, v)| v)
            .collect();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.5).abs() < 0.15, "mean vctrl {mean}");
    }

    #[test]
    fn locked_pll_divider_tracks_reference() {
        let mut bench = build(&fast_config());
        bench.monitor_standard();
        bench.run_until(Time::from_us(30)).unwrap();
        let trace = bench.mixed.digital().trace();
        let fb_f = measure::mean_frequency(
            trace.digital(names::FB).unwrap(),
            Time::from_us(25),
            Time::from_us(30),
        )
        .unwrap();
        assert!((fb_f - 5e6).abs() / 5e6 < 5e-3, "fb {fb_f:.3e}");
    }

    #[test]
    fn transparent_saboteur_does_not_change_lock() {
        let clean = {
            let mut b = build(&fast_config());
            b.run_until(Time::from_us(20)).unwrap();
            b.vctrl()
        };
        let instrumented = {
            // Explicitly no fault: the saboteur block exists but is inert.
            let cfg = fast_config();
            assert!(cfg.fault.is_none());
            let mut b = build(&cfg);
            b.run_until(Time::from_us(20)).unwrap();
            b.vctrl()
        };
        assert_eq!(clean, instrumented);
    }

    #[test]
    fn payload_counts_generated_clock() {
        let mut cfg = fast_config();
        cfg.payload = true;
        let mut bench = build(&cfg);
        bench.monitor_standard();
        bench.run_until(Time::from_us(10)).unwrap();
        let count = bench
            .mixed
            .digital()
            .value(bench.mixed.digital().signal_id(names::COUNT).unwrap())
            .to_u64()
            .expect("binary count");
        // ~10 us at ~50 MHz: hundreds of edges, modulo 256.
        assert!(count > 0, "payload counter never ticked");
        assert_eq!(bench.payload.len(), 3);
    }

    #[test]
    fn injected_pulse_perturbs_control_voltage() {
        let pulse = amsfi_faults::TrapezoidPulse::from_ma_ps(10.0, 100, 300, 500).unwrap();
        let at = Time::from_us(20);
        let mut faulty = build(&fast_config().with_fault(pulse, at));
        faulty.monitor_standard();
        faulty.run_until(Time::from_us(25)).unwrap();
        let mut golden = build(&fast_config());
        golden.monitor_standard();
        golden.run_until(Time::from_us(25)).unwrap();
        let dev = measure::deviation(
            golden.trace().analog(names::VCTRL).unwrap(),
            faulty.trace().analog(names::VCTRL).unwrap(),
            at - Time::from_us(1),
            Time::from_us(25),
            5e-3,
        );
        assert!(dev.peak > 0.05, "peak deviation {} too small", dev.peak);
        // The perturbation outlives the 800 ps pulse by orders of magnitude.
        assert!(
            dev.duration() > Time::from_ns(100),
            "duration {}",
            dev.duration()
        );
    }

    #[test]
    fn arming_in_place_equals_arming_at_build() {
        let at = Time::from_us(20);
        let end = Time::from_us(22);
        let pulse = amsfi_faults::TrapezoidPulse::from_ma_ps(10.0, 100, 300, 500).unwrap();

        // Reference: saboteur armed when the bench is built.
        let mut built = build(&fast_config().with_fault(pulse, at));
        built.monitor_standard();
        built.run_until(at).unwrap();
        built.run_until(end).unwrap();

        // Same pulse armed mid-run on a disarmed bench, pausing at the
        // injection instant so both runs share the stop sequence.
        let mut armed = build(&fast_config());
        armed.monitor_standard();
        armed.run_until(at).unwrap();
        armed.arm_saboteur(Arc::new(pulse), at);
        armed.run_until(end).unwrap();

        assert_eq!(armed.trace(), built.trace());
        // Arming is behavioural, not structural: checkpoints transfer.
        assert_eq!(
            armed.structural_fingerprint(),
            built.structural_fingerprint()
        );
    }

    #[test]
    fn forked_bench_equals_scratch_bench() {
        let stop = Time::from_us(5);
        let end = Time::from_us(8);
        let mut golden = build(&fast_config());
        golden.monitor_standard();
        golden.advance_to(stop).unwrap();
        let cp = amsfi_waves::Checkpoint::capture(&golden);

        let mut fork = cp.fork();
        fork.advance_to(end).unwrap();

        let mut scratch = build(&fast_config());
        scratch.monitor_standard();
        scratch.advance_to(stop).unwrap();
        scratch.advance_to(end).unwrap();
        assert_eq!(fork.snapshot_trace(), scratch.snapshot_trace());
    }

    #[test]
    fn budget_guard_interrupts_the_bench() {
        use amsfi_waves::{GuardViolation, SimBudget};
        let mut bench = build(&fast_config());
        bench.install_budget(SimBudget::unlimited().with_max_steps(100));
        let err = bench.run_until(Time::from_us(30)).unwrap_err();
        assert!(matches!(
            err,
            amsfi_digital::SimError::Guard(GuardViolation::StepBudgetExhausted { .. })
        ));
    }

    #[test]
    fn build_rejects_odd_divider() {
        let result = std::panic::catch_unwind(|| {
            let cfg = PllConfig {
                divide: 3,
                ..PllConfig::default()
            };
            build(&cfg)
        });
        assert!(result.is_err());
    }
}
