//! Analog-to-digital converters: the paper's future-work target.
//!
//! The conclusion of the paper singles out "functional blocks including both
//! analog and digital circuitry, e.g. analog to digital converters" as the
//! next application of the flow, citing \[9\] (Singh & Koren), whose
//! transistor-level analysis found "that the analog part of the converter can
//! be more sensitive than the digital part". This module provides two
//! behavioural converters to test that claim with the high-level flow:
//!
//! * a 3-bit **flash ADC** — analog comparator bank + digital thermometer
//!   encoder and output register;
//! * a 4-bit **SAR ADC** — digital successive-approximation controller,
//!   digital-to-analog feedback path and an analog comparator.
//!
//! Both expose the same fault surfaces as the PLL: an [`AnalogSaboteur`]
//! contributing an input-referred current strike (through an injection
//! resistance), and mutant state bits in the digital logic.
//!
//! [`AnalogSaboteur`]: amsfi_analog::blocks::AnalogSaboteur

use amsfi_analog::{
    blocks, AnalogBlock, AnalogCircuit, AnalogContext, AnalogSolver, BlockId, NodeKind,
    UnknownParamError,
};
use amsfi_digital::{cells, Component, ComponentId, EvalContext, Netlist, PortSpec, Simulator};
use amsfi_faults::PulseShape;
use amsfi_mixed::MixedSimulator;
use amsfi_waves::{Logic, LogicVector, Time};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Local analog helper blocks
// ---------------------------------------------------------------------------

/// `v_out = v_in + r · i_inj`: adds the voltage drop of an injected current
/// across an injection resistance — the input-referred strike model shared
/// by both converters.
#[derive(Debug, Clone)]
struct CurrentOffset {
    r_ohm: f64,
}

impl AnalogBlock for CurrentOffset {
    fn step(&mut self, ctx: &mut AnalogContext<'_>) {
        let v = ctx.input(0) + self.r_ohm * ctx.input(1);
        ctx.set(0, v);
    }

    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("r_ohm", self.r_ohm)]
    }

    fn set_param(&mut self, name: &str, value: f64) -> Result<(), UnknownParamError> {
        if name == "r_ohm" {
            self.r_ohm = value;
            Ok(())
        } else {
            Err(UnknownParamError {
                name: name.to_owned(),
            })
        }
    }
}

/// `v_out = Σ wᵢ · vᵢ`: the resistive summing network of the SAR feedback
/// DAC (binary weights over the level-driven bit nodes).
#[derive(Debug, Clone)]
struct WeightedSum {
    weights: Vec<f64>,
}

impl AnalogBlock for WeightedSum {
    fn step(&mut self, ctx: &mut AnalogContext<'_>) {
        let v = self
            .weights
            .iter()
            .enumerate()
            .map(|(i, w)| w * ctx.input(i))
            .sum();
        ctx.set(0, v);
    }
}

// ---------------------------------------------------------------------------
// Digital helper components
// ---------------------------------------------------------------------------

/// Thermometer-to-binary encoder: counts the high inputs (ones-counting is
/// inherently bubble-tolerant). Inputs: `levels` scalar thermometer bits →
/// output: a `ceil(log2(levels+1))`-bit code.
#[derive(Debug, Clone)]
pub struct ThermometerEncoder {
    levels: usize,
    out_width: usize,
    delay: Time,
}

impl ThermometerEncoder {
    /// Creates an encoder for `levels` thermometer inputs.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero.
    pub fn new(levels: usize, delay: Time) -> Self {
        assert!(levels > 0, "need at least one level");
        let out_width = (usize::BITS - levels.leading_zeros()) as usize;
        ThermometerEncoder {
            levels,
            out_width,
            delay,
        }
    }

    /// The binary output width.
    pub fn out_width(&self) -> usize {
        self.out_width
    }
}

impl Component for ThermometerEncoder {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let mut count = 0u64;
        let mut any_meta = false;
        for i in 0..self.levels {
            match ctx.input_bit(i).to_bool() {
                Some(true) => count += 1,
                Some(false) => {}
                None => any_meta = true,
            }
        }
        let out = if any_meta {
            LogicVector::filled(Logic::Unknown, self.out_width)
        } else {
            LogicVector::from_u64(count, self.out_width)
        };
        ctx.drive(0, out, self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec {
            inputs: (0..self.levels).map(|i| (format!("t{i}"), 1)).collect(),
            outputs: vec![("code".to_owned(), self.out_width)],
        }
    }
}

/// The successive-approximation controller of the SAR ADC.
///
/// Ports: `clk`, `cmp` → `dac_code[bits]`, `result[bits]`, `done`.
///
/// Free-running: each conversion takes `bits + 1` clock cycles (one to load
/// the first trial, one per remaining bit, one to publish). `cmp` high means
/// "input is above the DAC voltage", so the trial bit is kept.
///
/// The approximation register and the bit pointer are exposed as mutant
/// targets: an SEU here corrupts the *digital* half of the converter.
#[derive(Debug, Clone)]
pub struct SarController {
    bits: usize,
    delay: Time,
    acc: u64,
    bit: usize, // bits = idle/publish marker, otherwise the trial bit index
    running: bool,
    prev_clk: Logic,
    result: u64,
}

impl SarController {
    /// Creates a controller for a `bits`-wide conversion.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or above 32.
    pub fn new(bits: usize, delay: Time) -> Self {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        SarController {
            bits,
            delay,
            acc: 0,
            bit: 0,
            running: false,
            prev_clk: Logic::Uninitialized,
            result: 0,
        }
    }
}

impl Component for SarController {
    fn eval(&mut self, ctx: &mut EvalContext<'_>) {
        let clk = ctx.input_bit(0);
        let mut done = false;
        if !self.prev_clk.is_high() && clk.is_high() {
            if !self.running {
                // Load the first trial (MSB).
                self.running = true;
                self.bit = self.bits - 1;
                self.acc = 1 << self.bit;
            } else {
                // Resolve the current trial bit from the comparator.
                let keep = ctx.input_bit(1).is_high();
                if !keep {
                    self.acc &= !(1 << self.bit);
                }
                if self.bit == 0 {
                    self.result = self.acc;
                    self.running = false;
                    done = true;
                } else {
                    self.bit -= 1;
                    self.acc |= 1 << self.bit;
                }
            }
        }
        self.prev_clk = clk;
        ctx.drive(0, LogicVector::from_u64(self.acc, self.bits), self.delay);
        ctx.drive(1, LogicVector::from_u64(self.result, self.bits), self.delay);
        ctx.drive_bit(2, Logic::from_bool(done), self.delay);
    }

    fn port_spec(&self) -> PortSpec {
        PortSpec::new(
            &[("clk", 1), ("cmp", 1)],
            &[("dac_code", self.bits), ("result", self.bits), ("done", 1)],
        )
    }

    fn state_bits(&self) -> usize {
        self.bits + self.bits // approximation register + published result
    }

    fn flip_state_bit(&mut self, bit: usize) {
        if bit < self.bits {
            self.acc ^= 1 << bit;
        } else {
            self.result ^= 1 << (bit - self.bits);
        }
    }

    fn state_label(&self, bit: usize) -> String {
        if bit < self.bits {
            format!("acc[{bit}]")
        } else {
            format!("result[{}]", bit - self.bits)
        }
    }

    fn state_value(&self) -> Option<u64> {
        Some(self.acc | self.result << self.bits)
    }
}

// ---------------------------------------------------------------------------
// Converter input stimuli
// ---------------------------------------------------------------------------

/// The analog input applied to a converter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdcInput {
    /// A constant level (volts).
    Dc(f64),
    /// A linear ramp from `from` to `to` volts over `over`.
    Ramp {
        /// Start voltage.
        from: f64,
        /// End voltage.
        to: f64,
        /// Ramp duration.
        over: Time,
    },
    /// A sine `offset + amplitude·sin(2π·freq·t)`.
    Sine {
        /// Frequency (Hz).
        freq_hz: f64,
        /// Amplitude (V).
        amplitude: f64,
        /// Offset (V).
        offset: f64,
    },
}

pub(crate) fn add_input(ckt: &mut AnalogCircuit, input: AdcInput, node: amsfi_analog::NodeId) {
    match input {
        AdcInput::Dc(v) => {
            ckt.add("input", blocks::DcSource::new(v), &[], &[node]);
        }
        AdcInput::Ramp { from, to, over } => {
            ckt.add(
                "input",
                blocks::PwlSource::new([(Time::ZERO, from), (over, to)]),
                &[],
                &[node],
            );
        }
        AdcInput::Sine {
            freq_hz,
            amplitude,
            offset,
        } => {
            ckt.add(
                "input",
                blocks::SineSource::new(freq_hz, amplitude, offset),
                &[],
                &[node],
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Flash ADC
// ---------------------------------------------------------------------------

/// Configuration of the 3-bit flash converter.
#[derive(Debug, Clone)]
pub struct FlashAdcConfig {
    /// Full-scale reference (V); thresholds sit at `k·v_ref/8`, `k = 1..=7`.
    pub v_ref: f64,
    /// Output register sampling period.
    pub sample_period: Time,
    /// Analog input stimulus.
    pub input: AdcInput,
    /// Injection resistance for the input-referred current strike (Ω).
    pub r_inj: f64,
    /// Analog base step.
    pub base_dt: Time,
    /// Optional current-pulse fault on the input node.
    pub fault: Option<(Arc<dyn PulseShape>, Time)>,
}

impl Default for FlashAdcConfig {
    fn default() -> Self {
        FlashAdcConfig {
            v_ref: 5.0,
            sample_period: Time::from_ns(100),
            input: AdcInput::Dc(2.2),
            r_inj: 100.0,
            base_dt: Time::from_ns(5),
            fault: None,
        }
    }
}

impl FlashAdcConfig {
    /// Arms the input-referred saboteur.
    #[must_use]
    pub fn with_fault<P: PulseShape + 'static>(mut self, pulse: P, at: Time) -> Self {
        self.fault = Some((Arc::new(pulse), at));
        self
    }
}

/// The built flash converter bench.
#[derive(Debug, Clone)]
pub struct FlashAdcBench {
    /// The coupled simulator.
    pub mixed: MixedSimulator,
    /// The input saboteur block.
    pub saboteur: BlockId,
    /// The digital output register (mutant target).
    pub register: ComponentId,
    /// The thermometer encoder component.
    pub encoder: ComponentId,
}

/// Signal names of the flash bench: sampled output code.
pub const FLASH_CODE: &str = "code_q";

/// Builds the 3-bit flash ADC bench.
pub fn build_flash(config: &FlashAdcConfig) -> FlashAdcBench {
    let mut ckt = AnalogCircuit::new();
    let vin_raw = ckt.node("vin_raw", NodeKind::Voltage);
    let iinj = ckt.node("iinj", NodeKind::Current);
    let vin = ckt.node("vin", NodeKind::Voltage);
    add_input(&mut ckt, config.input, vin_raw);
    let mut sab = blocks::AnalogSaboteur::new();
    if let Some((pulse, at)) = &config.fault {
        sab = sab.with_pulse_arc(Arc::clone(pulse), *at);
    }
    let saboteur = ckt.add("saboteur", sab, &[], &[iinj]);
    ckt.add(
        "front_end",
        CurrentOffset {
            r_ohm: config.r_inj,
        },
        &[vin_raw, iinj],
        &[vin],
    );
    // Comparator bank.
    let mut cmp_nodes = Vec::new();
    for k in 1..=7usize {
        let out = ckt.node(&format!("cmp{k}"), NodeKind::Voltage);
        let threshold = config.v_ref * k as f64 / 8.0;
        ckt.add(
            &format!("comparator{k}"),
            blocks::Comparator::new(threshold, 0.02, 0.0, 5.0),
            &[vin],
            &[out],
        );
        cmp_nodes.push(out);
    }

    let mut net = Netlist::new();
    let clk = net.signal("sample_clk", 1);
    let therm: Vec<_> = (1..=7).map(|k| net.signal(&format!("t{k}"), 1)).collect();
    let code = net.signal("code", 3);
    let rst = net.signal("rst", 1);
    let code_q = net.signal(FLASH_CODE, 3);
    net.add(
        "ck",
        cells::ClockGen::new(config.sample_period),
        &[],
        &[clk],
    );
    net.add("r0", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
    let encoder = net.add(
        "encoder",
        ThermometerEncoder::new(7, Time::ZERO),
        &therm,
        &[code],
    );
    let register = net.add(
        "out_reg",
        cells::Register::new(3, Time::ZERO),
        &[clk, rst, code],
        &[code_q],
    );

    let mut mixed =
        MixedSimulator::new(Simulator::new(net), AnalogSolver::new(ckt, config.base_dt));
    for k in 1..=7usize {
        mixed.bind_digitizer(&format!("cmp{k}"), &format!("t{k}"), 2.5, 0.2);
    }
    FlashAdcBench {
        mixed,
        saboteur,
        register,
        encoder,
    }
}

// ---------------------------------------------------------------------------
// SAR ADC
// ---------------------------------------------------------------------------

/// Configuration of the 4-bit SAR converter.
#[derive(Debug, Clone)]
pub struct SarAdcConfig {
    /// Full-scale reference (V).
    pub v_ref: f64,
    /// Conversion clock period.
    pub clk_period: Time,
    /// Analog input stimulus.
    pub input: AdcInput,
    /// Injection resistance for the input-referred strike (Ω).
    pub r_inj: f64,
    /// Analog base step.
    pub base_dt: Time,
    /// Optional current-pulse fault on the comparator input.
    pub fault: Option<(Arc<dyn PulseShape>, Time)>,
}

impl Default for SarAdcConfig {
    fn default() -> Self {
        SarAdcConfig {
            v_ref: 5.0,
            clk_period: Time::from_ns(100),
            input: AdcInput::Dc(2.2),
            r_inj: 100.0,
            base_dt: Time::from_ns(5),
            fault: None,
        }
    }
}

impl SarAdcConfig {
    /// Arms the input-referred saboteur.
    #[must_use]
    pub fn with_fault<P: PulseShape + 'static>(mut self, pulse: P, at: Time) -> Self {
        self.fault = Some((Arc::new(pulse), at));
        self
    }

    /// Wall-clock duration of one full conversion (bits + 1 clock cycles).
    pub fn conversion_time(&self) -> Time {
        self.clk_period * 5
    }
}

/// The built SAR converter bench.
#[derive(Debug, Clone)]
pub struct SarAdcBench {
    /// The coupled simulator.
    pub mixed: MixedSimulator,
    /// The input saboteur block.
    pub saboteur: BlockId,
    /// The SAR controller (mutant target: approximation register).
    pub controller: ComponentId,
}

/// Signal name of the published SAR result bus.
pub const SAR_RESULT: &str = "result";

/// Builds the 4-bit SAR ADC bench.
pub fn build_sar(config: &SarAdcConfig) -> SarAdcBench {
    const BITS: usize = 4;
    let mut ckt = AnalogCircuit::new();
    let vin_raw = ckt.node("vin_raw", NodeKind::Voltage);
    let iinj = ckt.node("iinj", NodeKind::Current);
    let vin = ckt.node("vin", NodeKind::Voltage);
    add_input(&mut ckt, config.input, vin_raw);
    let mut sab = blocks::AnalogSaboteur::new();
    if let Some((pulse, at)) = &config.fault {
        sab = sab.with_pulse_arc(Arc::clone(pulse), *at);
    }
    let saboteur = ckt.add("saboteur", sab, &[], &[iinj]);
    ckt.add(
        "front_end",
        CurrentOffset {
            r_ohm: config.r_inj,
        },
        &[vin_raw, iinj],
        &[vin],
    );
    // DAC: level-driven bit nodes summed with binary weights.
    let bit_nodes: Vec<_> = (0..BITS)
        .map(|i| ckt.node(&format!("dac_bit{i}"), NodeKind::Voltage))
        .collect();
    let vdac = ckt.node("vdac", NodeKind::Voltage);
    // Bit i driven to 0/5 V; weight so that code/2^BITS scales to v_ref:
    // vdac = sum(bit_i * 2^i) * v_ref / (5 * 2^BITS).
    let weights: Vec<f64> = (0..BITS)
        .map(|i| config.v_ref * (1 << i) as f64 / (5.0 * (1 << BITS) as f64))
        .collect();
    ckt.add("dac_sum", WeightedSum { weights }, &bit_nodes, &[vdac]);
    // Comparator: vin vs vdac, fast pole, 0/5 V rails.
    let vcmp = ckt.node("vcmp", NodeKind::Voltage);
    ckt.add(
        "comparator",
        blocks::OpAmp::new(1e4, 0.0, 5.0, 200e6),
        &[vin, vdac],
        &[vcmp],
    );

    let mut net = Netlist::new();
    let clk = net.signal("clk", 1);
    let cmp = net.signal("cmp", 1);
    let dac_code = net.signal("dac_code", BITS);
    let result = net.signal(SAR_RESULT, BITS);
    let done = net.signal("done", 1);
    net.add("ck", cells::ClockGen::new(config.clk_period), &[], &[clk]);
    let controller = net.add(
        "sar",
        SarController::new(BITS, Time::ZERO),
        &[clk, cmp],
        &[dac_code, result, done],
    );

    let mut mixed =
        MixedSimulator::new(Simulator::new(net), AnalogSolver::new(ckt, config.base_dt));
    // Each dac_code bit drives its DAC leg node.
    for i in 0..BITS {
        mixed.bind_driver_bit("dac_code", i, &format!("dac_bit{i}"), 0.0, 5.0);
    }
    // Comparator decision crosses back into the digital domain.
    mixed.bind_digitizer("vcmp", "cmp", 2.5, 0.2);
    SarAdcBench {
        mixed,
        saboteur,
        controller,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amsfi_faults::TrapezoidPulse;

    fn flash_code(bench: &FlashAdcBench) -> Option<u64> {
        let sig = bench.mixed.digital().signal_id(FLASH_CODE).unwrap();
        bench.mixed.digital().value(sig).to_u64()
    }

    fn sar_result(bench: &SarAdcBench) -> Option<u64> {
        let sig = bench.mixed.digital().signal_id(SAR_RESULT).unwrap();
        bench.mixed.digital().value(sig).to_u64()
    }

    #[test]
    fn flash_converts_dc_levels_correctly() {
        // Code = number of thresholds below vin = floor(vin * 8 / v_ref),
        // clamped to 7.
        for (vin, expect) in [(0.2, 0u64), (0.7, 1), (2.2, 3), (3.2, 5), (4.9, 7)] {
            let cfg = FlashAdcConfig {
                input: AdcInput::Dc(vin),
                ..FlashAdcConfig::default()
            };
            let mut bench = build_flash(&cfg);
            bench.mixed.run_until(Time::from_us(1)).unwrap();
            assert_eq!(flash_code(&bench), Some(expect), "vin = {vin}");
        }
    }

    #[test]
    fn flash_tracks_a_slow_ramp_monotonically() {
        let cfg = FlashAdcConfig {
            input: AdcInput::Ramp {
                from: 0.0,
                to: 5.0,
                over: Time::from_us(20),
            },
            ..FlashAdcConfig::default()
        };
        let mut bench = build_flash(&cfg);
        let sig = bench.mixed.digital().signal_id(FLASH_CODE).unwrap();
        let mut last = 0u64;
        let mut seen = std::collections::BTreeSet::new();
        for step in 1..=40 {
            bench
                .mixed
                .run_until(Time::from_us(20) * step / 40)
                .unwrap();
            if let Some(code) = bench.mixed.digital().value(sig).to_u64() {
                assert!(code >= last, "ramp must be monotonic: {code} < {last}");
                last = code;
                seen.insert(code);
            }
        }
        assert_eq!(seen.len(), 8, "all codes visited: {seen:?}");
    }

    #[test]
    fn flash_input_strike_corrupts_sampled_code() {
        // A 2 mA pulse across 100 ohm lifts the input by 0.2 V... too small
        // to cross a 0.625 V LSB from mid-code; use 10 mA = 1 V: 1-2 codes.
        let pulse = TrapezoidPulse::from_ma_ps(10.0, 100, 100, 200_000).unwrap();
        // Strike just before a sampling edge (edges at 50, 150, ... ns).
        let cfg = FlashAdcConfig {
            input: AdcInput::Dc(2.2),
            ..FlashAdcConfig::default()
        }
        .with_fault(pulse, Time::from_ns(349_900));
        let mut bench = build_flash(&cfg);
        let sig = bench.mixed.digital().signal_id(FLASH_CODE).unwrap();
        bench.mixed.run_until(Time::from_ns(340_000)).unwrap();
        assert_eq!(bench.mixed.digital().value(sig).to_u64(), Some(3));
        // The 200 ns pulse spans the 350.05 us edge: the register samples a
        // wrong code.
        bench.mixed.run_until(Time::from_ns(350_080)).unwrap();
        let corrupted = bench.mixed.digital().value(sig).to_u64().unwrap();
        assert!(corrupted > 3, "strike must raise the code: {corrupted}");
        // After the pulse the next sample is clean again.
        bench.mixed.run_until(Time::from_ns(360_000)).unwrap();
        assert_eq!(bench.mixed.digital().value(sig).to_u64(), Some(3));
    }

    #[test]
    fn sar_converges_to_dc_input() {
        // 4-bit over 5 V: LSB = 0.3125 V. vin = 2.2 V -> code 7 (2.1875 V).
        for (vin, expect) in [(0.1, 0u64), (1.0, 3), (2.2, 7), (3.4, 10), (4.8, 15)] {
            let cfg = SarAdcConfig {
                input: AdcInput::Dc(vin),
                ..SarAdcConfig::default()
            };
            let mut bench = build_sar(&cfg);
            // Two full conversions to be safe.
            bench.mixed.run_until(cfg.conversion_time() * 3).unwrap();
            assert_eq!(sar_result(&bench), Some(expect), "vin = {vin}");
        }
    }

    #[test]
    fn sar_seu_in_accumulator_corrupts_one_conversion() {
        let cfg = SarAdcConfig {
            input: AdcInput::Dc(2.2),
            ..SarAdcConfig::default()
        };
        let mut bench = build_sar(&cfg);
        let conv = cfg.conversion_time();
        bench.mixed.run_until(conv * 2).unwrap();
        assert_eq!(sar_result(&bench), Some(7));
        // Flip the MSB of the approximation register *after* its trial has
        // been resolved (a flip during the trial is re-resolved by the
        // comparator and masked): load edge, MSB edge, then strike.
        let controller = bench.controller;
        bench
            .mixed
            .run_until(conv * 2 + cfg.clk_period + cfg.clk_period / 2)
            .unwrap();
        bench.mixed.digital_mut().flip_state(controller, 3);
        bench.mixed.run_until(conv * 3 + cfg.clk_period).unwrap();
        let corrupted = sar_result(&bench);
        assert_ne!(corrupted, Some(7), "SEU must corrupt the conversion");
        // The following conversion is clean: the error was transient.
        bench.mixed.run_until(conv * 5).unwrap();
        assert_eq!(sar_result(&bench), Some(7));
    }

    #[test]
    fn thermometer_encoder_counts_ones() {
        use amsfi_digital::{Netlist, Simulator};
        let mut net = Netlist::new();
        let bits: Vec<_> = (0..7).map(|i| net.signal(&format!("b{i}"), 1)).collect();
        let code = net.signal("code", 3);
        for (i, &b) in bits.iter().enumerate() {
            let v = if i < 5 { Logic::One } else { Logic::Zero };
            net.add(&format!("c{i}"), cells::ConstVector::bit(v), &[], &[b]);
        }
        net.add(
            "enc",
            ThermometerEncoder::new(7, Time::ZERO),
            &bits,
            &[code],
        );
        let mut sim = Simulator::new(net);
        sim.run_until(Time::from_ns(1)).unwrap();
        assert_eq!(sim.value(code).to_u64(), Some(5));
    }

    #[test]
    fn sar_controller_mutant_labels() {
        let sar = SarController::new(4, Time::ZERO);
        assert_eq!(sar.state_bits(), 8);
        assert_eq!(sar.state_label(3), "acc[3]");
        assert_eq!(sar.state_label(5), "result[1]");
    }
}
