//! Property-based tests for the case-study circuits.

use amsfi_circuits::adc::{self, AdcInput};
use amsfi_circuits::pfd::SequentialPfd;
use amsfi_digital::{cells, Netlist, Simulator};
use amsfi_waves::{Logic, Time};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn flash_adc_converts_any_dc_level(vin in 0.05f64..4.95) {
        let mut bench = adc::build_flash(&adc::FlashAdcConfig {
            input: AdcInput::Dc(vin),
            ..adc::FlashAdcConfig::default()
        });
        bench.mixed.run_until(Time::from_us(1)).unwrap();
        let sig = bench.mixed.digital().signal_id(adc::FLASH_CODE).unwrap();
        let code = bench.mixed.digital().value(sig).to_u64().unwrap();
        let expect = ((vin / 5.0 * 8.0) as u64).min(7);
        // Comparator hysteresis (20 mV) can move codes near a threshold by
        // one; away from thresholds the code is exact.
        let dist_to_threshold = (vin / 0.625).fract().min(1.0 - (vin / 0.625).fract());
        if dist_to_threshold > 0.05 {
            prop_assert_eq!(code, expect, "vin = {}", vin);
        } else {
            prop_assert!((code as i64 - expect as i64).abs() <= 1);
        }
    }

    #[test]
    fn sar_adc_converts_any_dc_level(vin in 0.05f64..4.95) {
        let cfg = adc::SarAdcConfig {
            input: AdcInput::Dc(vin),
            ..adc::SarAdcConfig::default()
        };
        let mut bench = adc::build_sar(&cfg);
        bench.mixed.run_until(cfg.conversion_time() * 3).unwrap();
        let sig = bench.mixed.digital().signal_id(adc::SAR_RESULT).unwrap();
        let code = bench.mixed.digital().value(sig).to_u64().unwrap();
        let expect = ((vin / 5.0 * 16.0) as u64).min(15);
        let dist_to_threshold = (vin / 0.3125).fract().min(1.0 - (vin / 0.3125).fract());
        if dist_to_threshold > 0.05 {
            prop_assert_eq!(code, expect, "vin = {}", vin);
        } else {
            prop_assert!((code as i64 - expect as i64).abs() <= 1);
        }
    }

    #[test]
    fn pfd_outputs_never_both_high(ref_ns in 40i64..200, fb_ns in 40i64..200, skew in 0i64..100) {
        let mut net = Netlist::new();
        let r = net.signal("ref", 1);
        let f = net.signal("fb", 1);
        let up = net.signal("up", 1);
        let dn = net.signal("dn", 1);
        net.add("ckr", cells::ClockGen::new(Time::from_ns(ref_ns)), &[], &[r]);
        net.add(
            "ckf",
            cells::ClockGen::new(Time::from_ns(fb_ns)).with_start(Time::from_ns(skew)),
            &[],
            &[f],
        );
        net.add("pfd", SequentialPfd::default(), &[r, f], &[up, dn]);
        let mut sim = Simulator::new(net);
        sim.monitor_name("up");
        sim.monitor_name("dn");
        sim.run_until(Time::from_us(3)).unwrap();
        let trace = sim.trace();
        let up_w = trace.digital("up").unwrap();
        let dn_w = trace.digital("dn").unwrap();
        // Sample at every transition of either output: the three-state PFD
        // with instantaneous clear never drives both outputs high at once.
        for &(t, _) in up_w.transitions().iter().chain(dn_w.transitions()) {
            let both = up_w.value_at(t) == Logic::One && dn_w.value_at(t) == Logic::One;
            prop_assert!(!both, "both outputs high at {t}");
        }
    }

    #[test]
    fn pfd_net_drive_sign_follows_frequency_difference(ref_ns in 60i64..160, delta in 10i64..60) {
        // Faster feedback -> DN dominates; slower feedback -> UP dominates.
        for (fb_ns, expect_up) in [(ref_ns + delta, true), (ref_ns - delta, false)] {
            let mut net = Netlist::new();
            let r = net.signal("ref", 1);
            let f = net.signal("fb", 1);
            let up = net.signal("up", 1);
            let dn = net.signal("dn", 1);
            net.add("ckr", cells::ClockGen::new(Time::from_ns(ref_ns)), &[], &[r]);
            net.add("ckf", cells::ClockGen::new(Time::from_ns(fb_ns)), &[], &[f]);
            net.add("pfd", SequentialPfd::default(), &[r, f], &[up, dn]);
            let mut sim = Simulator::new(net);
            sim.monitor_name("up");
            sim.monitor_name("dn");
            sim.run_until(Time::from_us(10)).unwrap();
            let trace = sim.trace();
            let high = |name: &str| {
                amsfi_waves::measure::duty_cycle(
                    trace.digital(name).unwrap(),
                    Time::ZERO,
                    Time::from_us(10),
                )
                .unwrap()
            };
            let (u, d) = (high("up"), high("dn"));
            if expect_up {
                prop_assert!(u > d, "fb slower: up {u} vs dn {d}");
            } else {
                prop_assert!(d > u, "fb faster: up {u} vs dn {d}");
            }
        }
    }
}
