//! A minimal property-based-testing harness exposing the subset of the
//! `proptest` crate API this workspace's test suites use.
//!
//! The build environment has no access to crates.io, so the workspace
//! aliases `proptest` to this crate (see `[workspace.dependencies]`).
//! Semantics compared to the real proptest:
//!
//! * strategies generate values directly (no value trees, **no shrinking**);
//!   a failing case panics with the generated inputs so it can be minimised
//!   by hand;
//! * each test function draws from a deterministic RNG seeded from the test
//!   name, so failures are reproducible run-over-run;
//! * `prop_assert*` and `prop_assume!` follow the real control flow (early
//!   `return Err(..)` from the case closure, rejected cases don't count as
//!   failures).
//!
//! Supported surface: `proptest!` (with optional `#![proptest_config(..)]`),
//! range strategies over the primitive numeric types, `any::<T>()`,
//! tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! `Strategy::prop_map`, `Just`, and `ProptestConfig::with_cases`.

#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::fmt;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    use amsfi_rand::{RngCore, RngExt};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real proptest this generates values directly instead of
    /// value trees, which removes shrinking but keeps the API shape.
    pub trait Strategy {
        /// The type of the generated values.
        type Value: fmt::Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (mirrors
        /// `proptest::strategy::Strategy::prop_map`).
        fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The output of [`Strategy::prop_map`].
    #[derive(Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
        O: fmt::Debug,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(i64, u64, i32, u32, usize, u8, u16, f64);

    /// Values produced by [`crate::arbitrary::any`].
    #[derive(Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized + fmt::Debug {
        /// Generates an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, symmetric around zero, spanning many magnitudes.
            let mantissa = rng.random_range(-1.0f64..1.0);
            let exp = rng.random_range(-300i32..300);
            mantissa * 2f64.powi(exp)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+ ))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! The [`any`] entry point.

    use crate::strategy::{Any, Arbitrary};
    use std::marker::PhantomData;

    /// A strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use amsfi_rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange { lo, hi }
        }
    }

    /// A strategy generating `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The output of [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample::select`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use amsfi_rand::RngExt;
    use std::fmt;

    /// A strategy picking uniformly from a fixed list of values.
    pub fn select<T: Clone + fmt::Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "cannot select from an empty list");
        Select { items }
    }

    /// The output of [`select`].
    #[derive(Debug)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.random_range(0..self.items.len())].clone()
        }
    }
}

pub mod test_runner {
    //! Configuration and the per-test RNG.

    use amsfi_rand::rngs::StdRng;
    use amsfi_rand::{RngCore, SeedableRng};

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default (256) makes simulation-heavy suites slow;
            // 64 keeps good coverage at interactive test times.
            ProptestConfig { cases: 64 }
        }
    }

    /// The deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds a generator from a test name, so every test has its own
        /// reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; not a failure.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

pub mod prelude {
    //! Everything the `proptest::prelude::*` imports in this workspace need.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` module alias used by `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn it_holds(x in 0i64..100, flag in any::<bool>()) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case_nr in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "property failed at case #{case_nr}: {msg}\n  inputs: {inputs}"
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            l,
            format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (does not count as a failure) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_generate_in_bounds(x in 5i64..25, y in 0.0f64..=1.0) {
            prop_assert!((5..25).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn vec_respects_size_range(
            v in prop::collection::vec(any::<bool>(), 2..6),
            exact in prop::collection::vec(0u32..9, 4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn select_draws_from_the_list(v in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!([1, 2, 3].contains(&v));
        }

        #[test]
        fn prop_map_applies(d in (0i64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(d % 2, 0);
            prop_assert_ne!(d, 19);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = 0i64..1_000_000;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    // The macro expands to an inner `#[test]` fn; here it is called directly.
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #[test]
            fn always_fails(x in 0i64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
