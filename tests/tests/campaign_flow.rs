//! Integration of the campaign engine with real mixed-signal circuits:
//! parallel equals sequential, reports render, and the propagation model
//! reflects the physical error path.

use amsfi_circuits::pll::{self, names};
use amsfi_core::{
    plan, report, run_campaign, run_campaign_parallel, ClassifySpec, FaultCase, FaultClass,
    PropagationModel,
};
use amsfi_faults::TrapezoidPulse;
use amsfi_integration::fast_pll;
use amsfi_waves::{Time, Tolerance, Trace};

const T_END: Time = Time::from_us(25);

fn spec() -> ClassifySpec {
    ClassifySpec::new((Time::from_us(10), T_END), vec![names::FB.to_owned()])
        .with_internals(vec![names::VCTRL.to_owned(), names::F_OUT.to_owned()])
        // The tolerance sits above the residual charge-pump ripple on vctrl
        // (the paper's Section 4.1: "avoid non significant error
        // identifications").
        .with_tolerance(Tolerance::new(0.05, 0.0))
        // The loop nulls phase error asymptotically; sub-5-ns residual skew on
        // the 200 ns feedback clock is not an error.
        .with_digital_skew(Time::from_ns(5))
}

fn runner<'a>(
    pulses: &'a [TrapezoidPulse],
    times: &'a [Time],
) -> impl Fn(Option<usize>) -> Result<Trace, Box<dyn std::error::Error + Send + Sync>> + Sync + 'a {
    move |case| {
        let cfg = match case {
            Some(i) => {
                let pulse = pulses[i / times.len()];
                let at = times[i % times.len()];
                fast_pll().with_fault(pulse, at)
            }
            None => fast_pll(),
        };
        let mut bench = pll::build(&cfg);
        bench.monitor_standard();
        bench.run_until(T_END)?;
        Ok(bench.trace())
    }
}

fn cases(pulses: &[TrapezoidPulse], times: &[Time]) -> Vec<FaultCase> {
    let mut out = Vec::new();
    for p in pulses {
        for &at in times {
            out.push(FaultCase::new(format!("icp {p}"), at));
        }
    }
    out
}

#[test]
fn parallel_campaign_equals_sequential_on_real_circuit() {
    let pulses = plan::pulse_grid(&[2.0, 10.0], &[100], &[300], &[500]);
    let times = plan::uniform_times(Time::from_us(12), Time::from_us(14), 2);
    let spec = spec();
    let seq = run_campaign(&spec, cases(&pulses, &times), runner(&pulses, &times)).unwrap();
    let par =
        run_campaign_parallel(&spec, cases(&pulses, &times), 4, runner(&pulses, &times)).unwrap();
    assert_eq!(seq.summary(), par.summary());
    for (a, b) in seq.cases.iter().zip(&par.cases) {
        assert_eq!(a.outcome, b.outcome, "case {}", a.case);
    }
}

#[test]
fn small_pulse_is_no_effect_big_pulse_disturbs() {
    // 0.05 mA barely moves the 200 pF loop; 10 mA clearly does.
    let pulses = plan::pulse_grid(&[0.05, 10.0], &[100], &[300], &[500]);
    let times = vec![Time::from_us(13)];
    let spec = spec();
    let result = run_campaign(&spec, cases(&pulses, &times), runner(&pulses, &times)).unwrap();
    assert_eq!(
        result.cases[0].outcome.class,
        FaultClass::NoEffect,
        "small-pulse outcome: {:?}",
        result.cases[0].outcome
    );

    assert_ne!(result.cases[1].outcome.class, FaultClass::NoEffect);
}

#[test]
fn reports_render_for_real_campaign() {
    let pulses = plan::pulse_grid(&[10.0], &[100], &[300], &[500]);
    let times = vec![Time::from_us(13)];
    let spec = spec();
    let result = run_campaign(&spec, cases(&pulses, &times), runner(&pulses, &times)).unwrap();
    let table = report::summary_table(&result);
    assert!(table.contains("total"));
    let csv = report::cases_csv(&result);
    assert_eq!(csv.lines().count(), 2);
    let targets = report::per_target_table(&result);
    assert!(targets.contains("icp"));
}

#[test]
fn propagation_model_shows_analog_to_digital_path() {
    let pulses = plan::pulse_grid(&[10.0, 20.0], &[100], &[300], &[1_000]);
    let times = plan::uniform_times(Time::from_us(12), Time::from_us(14), 2);
    let spec = spec();
    let mut faulty_traces = Vec::new();
    let run = runner(&pulses, &times);
    let result = run_campaign(&spec, cases(&pulses, &times), |case| {
        let trace = run(case)?;
        if case.is_some() {
            faulty_traces.push(trace.clone());
        }
        Ok(trace)
    })
    .unwrap();
    let model = PropagationModel::from_traces(&spec, &result, &faulty_traces);
    assert!(model.cases > 0);
    // The strike lands on the analog node first; it must lead the orderings.
    assert!(model.node_hits.contains_key(names::VCTRL));
    let vctrl_to_fout = model
        .edges
        .iter()
        .find(|e| e.from == names::VCTRL && e.to == names::F_OUT);
    assert!(
        vctrl_to_fout.is_some(),
        "expected vctrl -> f_out ordering, edges: {:?}",
        model.edges
    );
    let dot = model.to_dot();
    assert!(dot.contains(names::VCTRL));
}

#[test]
fn campaign_error_propagates_from_failed_run() {
    let spec = spec();
    let err = run_campaign(
        &spec,
        vec![FaultCase::new("x", Time::ZERO)],
        |case| match case {
            None => {
                let mut bench = pll::build(&fast_pll());
                bench.monitor_standard();
                bench.run_until(Time::from_us(1))?;
                Ok(bench.trace())
            }
            Some(_) => Err("injection machinery exploded".into()),
        },
    )
    .unwrap_err();
    assert_eq!(err.case, Some(0));
    assert!(err.to_string().contains("exploded"));
}
