//! Integration: the ADC case studies under the campaign engine — the
//! paper's future-work scenario exercised end to end.

use amsfi_circuits::adc::{self, AdcInput};
use amsfi_core::{run_campaign, ClassifySpec, FaultCase, FaultClass};
use amsfi_faults::TrapezoidPulse;
use amsfi_waves::Time;

const T_END: Time = Time::from_us(5);

#[test]
fn flash_and_sar_agree_on_dc_codes() {
    // Both converters digitise the same DC level; their codes must agree
    // once rescaled (3-bit vs 4-bit).
    for vin in [0.4, 1.3, 2.2, 3.6, 4.6] {
        let mut flash = adc::build_flash(&adc::FlashAdcConfig {
            input: AdcInput::Dc(vin),
            ..adc::FlashAdcConfig::default()
        });
        flash.mixed.run_until(T_END).unwrap();
        let fsig = flash.mixed.digital().signal_id(adc::FLASH_CODE).unwrap();
        let fcode = flash.mixed.digital().value(fsig).to_u64().unwrap();

        let mut sar = adc::build_sar(&adc::SarAdcConfig {
            input: AdcInput::Dc(vin),
            ..adc::SarAdcConfig::default()
        });
        sar.mixed.run_until(T_END).unwrap();
        let ssig = sar.mixed.digital().signal_id(adc::SAR_RESULT).unwrap();
        let scode = sar.mixed.digital().value(ssig).to_u64().unwrap();

        // flash: floor(vin/5*8) clamped to 7; sar: floor(vin/5*16).
        let expect_flash = ((vin / 5.0 * 8.0) as u64).min(7);
        let expect_sar = ((vin / 5.0 * 16.0) as u64).min(15);
        assert_eq!(fcode, expect_flash, "flash at {vin} V");
        assert_eq!(scode, expect_sar, "sar at {vin} V");
        // Cross-check: the SAR's top 3 bits equal the flash code.
        assert_eq!(scode >> 1, fcode, "converters disagree at {vin} V");
    }
}

#[test]
fn flash_campaign_classifies_strike_amplitudes() {
    let base = adc::FlashAdcConfig {
        input: AdcInput::Dc(2.2),
        ..adc::FlashAdcConfig::default()
    };
    // 1 mA (0.1 V across 100 ohm, below the 0.3 V margin to the next level)
    // must be a no-effect; 10 mA (1 V) must disturb.
    let amplitudes = [1.0, 10.0];
    let at = Time::from_ns(2_960); // straddles the 3.05 us sampling edge
    let spec = ClassifySpec::new(
        (Time::from_us(1), T_END),
        (0..3)
            .map(|i| format!("{}[{i}]", adc::FLASH_CODE))
            .collect(),
    );
    let cases = amplitudes
        .iter()
        .map(|pa| FaultCase::new(format!("{pa} mA"), at))
        .collect();
    let result = run_campaign(&spec, cases, |case| {
        let mut cfg = base.clone();
        if let Some(i) = case {
            let pulse = TrapezoidPulse::from_ma_ps(amplitudes[i], 100, 100, 200_000)?;
            cfg = cfg.with_fault(pulse, at);
        }
        let mut bench = adc::build_flash(&cfg);
        bench.mixed.digital_mut().monitor_name(adc::FLASH_CODE);
        bench.mixed.run_until(T_END)?;
        Ok(bench.mixed.merged_trace())
    })
    .unwrap();
    assert_eq!(result.cases[0].outcome.class, FaultClass::NoEffect);
    assert_eq!(result.cases[1].outcome.class, FaultClass::Transient);
}

#[test]
fn sar_digital_seu_campaign_is_mostly_transient() {
    let base = adc::SarAdcConfig {
        input: AdcInput::Dc(2.2),
        ..adc::SarAdcConfig::default()
    };
    let probe = adc::build_sar(&base);
    let targets = probe.mixed.digital().mutant_targets();
    assert_eq!(targets.len(), 8, "4 acc + 4 result bits");
    let at = Time::from_ns(2_580); // mid-conversion
    let spec = ClassifySpec::new(
        (Time::from_us(1), T_END),
        (0..4)
            .map(|i| format!("{}[{i}]", adc::SAR_RESULT))
            .collect(),
    );
    let cases = targets
        .iter()
        .map(|t| FaultCase::new(t.to_string(), at))
        .collect();
    let result = run_campaign(&spec, cases, |case| {
        let mut bench = adc::build_sar(&base);
        bench.mixed.digital_mut().monitor_name(adc::SAR_RESULT);
        if let Some(i) = case {
            bench.mixed.run_until(at)?;
            let t = &targets[i];
            bench.mixed.digital_mut().flip_state(t.component, t.bit);
        }
        bench.mixed.run_until(T_END)?;
        Ok(bench.mixed.merged_trace())
    })
    .unwrap();
    let summary = result.summary();
    // No SEU in the SAR registers survives to the end of the window: the
    // next conversion overwrites everything (transient or masked).
    assert_eq!(summary[3], (FaultClass::Failure, 0), "{summary:?}");
    let transient = summary[2].1;
    assert!(
        transient >= 4,
        "expected several transients, got {transient}"
    );
}
