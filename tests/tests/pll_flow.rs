//! End-to-end integration: the paper's Fig. 6 experiment shape on the
//! fast-locking PLL — strike the filter input, observe a perturbation far
//! longer than the pulse and a multi-cycle clock disturbance.

use amsfi_circuits::pll::names;
use amsfi_core::{classify, ClassifySpec, FaultClass};
use amsfi_faults::{DoubleExponential, PulseShape, TrapezoidPulse};
use amsfi_integration::{fast_pll, run_pll};
use amsfi_waves::{measure, Time, Tolerance};

const T_END: Time = Time::from_us(40);
const T_STRIKE: Time = Time::from_us(20);

#[test]
fn strike_perturbation_outlives_pulse_by_orders_of_magnitude() {
    let pulse = TrapezoidPulse::from_ma_ps(10.0, 100, 300, 500).unwrap();
    let golden = run_pll(&fast_pll(), T_END);
    let faulty = run_pll(&fast_pll().with_fault(pulse, T_STRIKE), T_END);
    let dev = measure::deviation(
        golden.analog(names::VCTRL).unwrap(),
        faulty.analog(names::VCTRL).unwrap(),
        T_STRIKE - Time::from_us(1),
        T_END,
        0.02,
    );
    // Fig. 6's headline: the 800 ps pulse perturbs the VCO input during a
    // much larger time.
    assert!(
        dev.duration() > pulse.support() * 100,
        "duration {} vs pulse {}",
        dev.duration(),
        pulse.support()
    );
    assert!(dev.peak > 0.1, "peak {} too small", dev.peak);
}

#[test]
fn clock_is_perturbed_for_many_cycles_not_one() {
    let pulse = TrapezoidPulse::from_ma_ps(10.0, 100, 300, 500).unwrap();
    let faulty = run_pll(&fast_pll().with_fault(pulse, T_STRIKE), T_END);
    let (cycles, worst) = measure::perturbed_cycles(
        faulty.digital(names::F_OUT).unwrap(),
        T_STRIKE - Time::from_us(1),
        T_END,
        Time::from_ns(20),
        Time::from_ps(200),
    );
    assert!(cycles > 10, "only {cycles} perturbed cycles");
    let worst = worst.expect("some perturbed period");
    assert!(
        (worst - Time::from_ns(20)).abs() > Time::from_ps(200),
        "worst period {worst} not actually perturbed"
    );
}

#[test]
fn fig7_shape_trapezoid_and_double_exp_agree_at_system_level() {
    let de = DoubleExponential::from_peak(10e-3, Time::from_ps(50), Time::from_ps(200)).unwrap();
    let trap = TrapezoidPulse::fit(&de);
    let golden = run_pll(&fast_pll(), T_END);
    let with_de = run_pll(&fast_pll().with_fault(de, T_STRIKE), T_END);
    let with_trap = run_pll(&fast_pll().with_fault(trap, T_STRIKE), T_END);
    let window = (T_STRIKE - Time::from_us(1), T_END);
    let dev_de = measure::deviation(
        golden.analog(names::VCTRL).unwrap(),
        with_de.analog(names::VCTRL).unwrap(),
        window.0,
        window.1,
        0.02,
    );
    let dev_trap = measure::deviation(
        golden.analog(names::VCTRL).unwrap(),
        with_trap.analog(names::VCTRL).unwrap(),
        window.0,
        window.1,
        0.02,
    );
    // "Very similar, numeric values slightly different": peaks within 20 %.
    let rel = (dev_de.peak - dev_trap.peak).abs() / dev_de.peak;
    assert!(
        rel < 0.2,
        "peak mismatch {rel:.2} (de {} trap {})",
        dev_de.peak,
        dev_trap.peak
    );
}

#[test]
fn fig8_shape_larger_charge_larger_disturbance() {
    let golden = run_pll(&fast_pll(), T_END);
    let mut peaks = Vec::new();
    for (pa, pw) in [(2.0, 300), (8.0, 300), (10.0, 540)] {
        let pulse = TrapezoidPulse::from_ma_ps(pa, 100, 100, pw).unwrap();
        let faulty = run_pll(&fast_pll().with_fault(pulse, T_STRIKE), T_END);
        let dev = measure::deviation(
            golden.analog(names::VCTRL).unwrap(),
            faulty.analog(names::VCTRL).unwrap(),
            T_STRIKE - Time::from_us(1),
            T_END,
            0.01,
        );
        peaks.push((pulse.charge(), dev.peak));
    }
    // Cumulative effect: sorted by charge, peaks must be increasing.
    peaks.sort_by(|a, b| a.0.total_cmp(&b.0));
    assert!(
        peaks.windows(2).all(|w| w[1].1 > w[0].1),
        "peaks not monotone in charge: {peaks:?}"
    );
}

#[test]
fn classification_of_strike_on_locked_pll_recovers() {
    // The loop corrects the disturbance: vctrl is back within tolerance by
    // the end of the window -> transient, not failure.
    let pulse = TrapezoidPulse::from_ma_ps(10.0, 100, 300, 500).unwrap();
    let golden = run_pll(&fast_pll(), T_END);
    let faulty = run_pll(&fast_pll().with_fault(pulse, T_STRIKE), T_END);
    let spec = ClassifySpec::new(
        (T_STRIKE - Time::from_us(1), T_END),
        vec![names::VCTRL.to_owned()],
    )
    .with_tolerance(Tolerance::new(0.05, 0.0));
    let outcome = classify(&spec, &golden, &faulty);
    assert_eq!(outcome.class, FaultClass::Transient, "{outcome:?}");
    assert!(outcome.error_onset.is_some());
    assert!(outcome.latency_from(T_STRIKE).unwrap() < Time::from_us(1));
}

#[test]
fn unarmed_fault_configuration_matches_golden_exactly() {
    let a = run_pll(&fast_pll(), Time::from_us(15));
    let b = run_pll(&fast_pll(), Time::from_us(15));
    assert_eq!(a, b, "identical configurations must give identical traces");
}
