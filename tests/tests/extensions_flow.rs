//! Compact integration versions of the extension experiments' headline
//! claims, so `cargo test` guards what the `amsfi-bench` binaries
//! demonstrate.

use amsfi_circuits::adc::AdcInput;
use amsfi_circuits::cpu::{checksum_program, TinyCpu};
use amsfi_circuits::sdm::{self, SdmConfig, SDM_CODE};
use amsfi_core::{run_campaign, ClassifySpec, FaultCase, FaultClass};
use amsfi_digital::{cells, DigitalSaboteur, Netlist, Simulator};
use amsfi_faults::{DigitalFault, DigitalFaultKind, TrapezoidPulse};
use amsfi_waves::{Logic, LogicVector, Time};

/// Ext. D in miniature: a TMR accumulator masks every single stored-bit SEU
/// that the plain accumulator turns into a failure.
#[test]
fn tmr_masks_what_plain_storage_fails() {
    fn build(tmr: bool) -> (Simulator, amsfi_digital::ComponentId) {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let cin = net.signal("cin", 1);
        let one = net.signal("one", 4);
        let q = net.signal("q", 4);
        let next = net.signal("next", 4);
        let cout = net.signal("cout", 1);
        net.add("ck", cells::ClockGen::new(Time::from_ns(20)), &[], &[clk]);
        net.add(
            "r",
            cells::Stimulus::bits([(Time::ZERO, true), (Time::from_ns(15), false)]),
            &[],
            &[rst],
        );
        net.add("c0", cells::ConstVector::bit(Logic::Zero), &[], &[cin]);
        net.add(
            "inc",
            cells::ConstVector::new(LogicVector::from_u64(1, 4)),
            &[],
            &[one],
        );
        net.add(
            "add",
            cells::Adder::new(4, Time::ZERO),
            &[q, one, cin],
            &[next, cout],
        );
        let store = if tmr {
            net.add(
                "store",
                cells::TmrRegister::new(4, Time::ZERO),
                &[clk, rst, next],
                &[q],
            )
        } else {
            net.add(
                "store",
                cells::Register::new(4, Time::ZERO),
                &[clk, rst, next],
                &[q],
            )
        };
        let mut sim = Simulator::new(net);
        sim.monitor_name("q");
        (sim, store)
    }
    let spec = ClassifySpec::new(
        (Time::ZERO, Time::from_us(1)),
        (0..4).map(|i| format!("q[{i}]")).collect(),
    );
    for (tmr, expect) in [(false, FaultClass::Failure), (true, FaultClass::NoEffect)] {
        let bits = if tmr { 12 } else { 4 };
        let cases = (0..bits)
            .map(|b| FaultCase::new(format!("bit{b}"), Time::from_ns(333)))
            .collect();
        let result = run_campaign(&spec, cases, |case| {
            let (mut sim, store) = build(tmr);
            if let Some(b) = case {
                sim.run_until(Time::from_ns(333))?;
                sim.flip_state(store, b);
            }
            sim.run_until(Time::from_us(1))?;
            Ok(sim.into_trace())
        })
        .unwrap();
        for c in &result.cases {
            assert_eq!(c.outcome.class, expect, "tmr={tmr}, case {}", c.case);
        }
    }
}

/// Ext. G in miniature: an analog strike corrupts exactly one Σ-Δ word.
#[test]
fn sdm_strike_is_bounded_to_one_word() {
    let cfg = SdmConfig {
        input: AdcInput::Dc(2.5),
        ..SdmConfig::default()
    };
    let word = cfg.word_time();
    let pulse = TrapezoidPulse::from_ma_ps(20.0, 100, 100, 1_000_000).unwrap();
    let faulty_cfg = cfg.clone().with_fault(pulse, word * 3 + Time::from_ns(200));
    let read = |cfg: &SdmConfig, w: i64| {
        let mut bench = sdm::build(cfg);
        bench
            .mixed
            .run_until(word * w + cfg.clk_period)
            .expect("run");
        let sig = bench.mixed.digital().signal_id(SDM_CODE).unwrap();
        bench.mixed.digital().value(sig).to_u64().unwrap_or(0)
    };
    assert_ne!(read(&cfg, 4), read(&faulty_cfg, 4), "struck word differs");
    let g6 = read(&cfg, 6) as i64;
    let f6 = read(&faulty_cfg, 6) as i64;
    assert!((g6 - f6).abs() <= 1, "later word clean: {g6} vs {f6}");
}

/// Ext. H in miniature: dead-memory SEUs mask, live-table SEUs fail.
#[test]
fn cpu_masking_follows_dataflow() {
    fn build() -> (Simulator, amsfi_digital::ComponentId) {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let out = net.signal("out", 8);
        let pc = net.signal("pc", 6);
        net.add("ck", cells::ClockGen::new(Time::from_ns(10)), &[], &[clk]);
        net.add("r", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
        let cpu = net.add(
            "cpu",
            TinyCpu::new(checksum_program(), Time::ZERO),
            &[clk, rst],
            &[out, pc],
        );
        let mut sim = Simulator::new(net);
        sim.monitor_name("out");
        (sim, cpu)
    }
    let spec = ClassifySpec::new(
        (Time::from_us(2), Time::from_us(10)),
        (0..8).map(|i| format!("out[{i}]")).collect(),
    );
    // Dead word 9 bit 0 vs live table word 1 bit 0.
    let dead_bit = 8 + 6 + 1 + 9 * 8;
    let live_bit = 8 + 6 + 1 + 8;
    let cases = vec![
        FaultCase::new("ram[9][0]", Time::from_us(3)),
        FaultCase::new("ram[1][0]", Time::from_us(3)),
    ];
    let result = run_campaign(&spec, cases, |case| {
        let (mut sim, cpu) = build();
        if let Some(i) = case {
            sim.run_until(Time::from_us(3))?;
            sim.flip_state(cpu, if i == 0 { dead_bit } else { live_bit });
        }
        sim.run_until(Time::from_us(10))?;
        Ok(sim.into_trace())
    })
    .unwrap();
    assert_eq!(result.cases[0].outcome.class, FaultClass::NoEffect);
    assert_eq!(result.cases[1].outcome.class, FaultClass::Failure);
}

/// Ext. I in miniature: clock-wire SETs are far more dangerous than
/// data-wire SETs.
#[test]
fn clock_wire_sets_dominate_data_wire_sets() {
    fn run_with_set(wire: &str, at: Time) -> amsfi_waves::Trace {
        let mut net = Netlist::new();
        let clk = net.signal("clk", 1);
        let rst = net.signal("rst", 1);
        let en = net.signal("en", 1);
        let q = net.signal("q", 8);
        net.add("ck", cells::ClockGen::new(Time::from_ns(20)), &[], &[clk]);
        net.add("r", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
        net.add("e", cells::ConstVector::bit(Logic::One), &[], &[en]);
        net.add(
            "ctr",
            cells::Counter::new(8, Time::ZERO),
            &[clk, rst, en],
            &[q],
        );
        if !wire.is_empty() {
            let target = net.signal_id(wire).unwrap();
            let fault = DigitalFault::new(
                DigitalFaultKind::SetPulse {
                    width: Time::from_ns(4),
                },
                at,
            );
            net.insert_saboteur(target, Box::new(DigitalSaboteur::new(1).with_fault(fault)));
        }
        let mut sim = Simulator::new(net);
        sim.monitor_name("q");
        sim.run_until(Time::from_us(2)).expect("run");
        sim.into_trace()
    }
    let spec = ClassifySpec::new(
        (Time::ZERO, Time::from_us(2)),
        (0..8).map(|i| format!("q[{i}]")).collect(),
    );
    let golden = run_with_set("", Time::ZERO);
    let mut clk_hits = 0;
    let mut en_hits = 0;
    for phase in 0..10i64 {
        let at = Time::from_us(1) + Time::from_ns(2 * phase);
        let c = amsfi_core::classify(&spec, &golden, &run_with_set("clk", at));
        if c.class != FaultClass::NoEffect {
            clk_hits += 1;
        }
        let c = amsfi_core::classify(&spec, &golden, &run_with_set("en", at));
        if c.class != FaultClass::NoEffect {
            en_hits += 1;
        }
    }
    assert!(clk_hits > en_hits, "clk {clk_hits} vs en {en_hits}");
    assert!(clk_hits >= 8, "clock SETs nearly always count: {clk_hits}");
}
