//! Cross-domain invariants: instrumentation transparency, determinism and
//! boundary-timing accuracy on the full mixed-signal PLL.

use amsfi_circuits::pll::names;
use amsfi_faults::TrapezoidPulse;
use amsfi_integration::{fast_pll, run_pll};
use amsfi_waves::{compare_analog, measure, Time, Tolerance};

#[test]
fn instrumented_but_unarmed_pll_is_bit_identical_to_itself() {
    // The saboteur is always present in the netlist. Two builds with no
    // fault must produce identical traces — the "instrument once" guarantee.
    let a = run_pll(&fast_pll(), Time::from_us(20));
    let b = run_pll(&fast_pll(), Time::from_us(20));
    assert_eq!(a, b);
}

#[test]
fn fault_before_vs_after_comparison_window() {
    // A fault injected after the observation window must look like no fault
    // at all within the window.
    let pulse = TrapezoidPulse::from_ma_ps(10.0, 100, 300, 500).unwrap();
    let golden = run_pll(&fast_pll(), Time::from_us(20));
    let late_fault = run_pll(
        &fast_pll().with_fault(pulse, Time::from_us(25)),
        Time::from_us(20),
    );
    let cmp = compare_analog(
        golden.analog(names::VCTRL).unwrap(),
        late_fault.analog(names::VCTRL).unwrap(),
        Time::ZERO,
        Time::from_us(20),
        Tolerance::exact(),
        Time::from_ns(100),
    );
    assert!(cmp.is_match(), "late fault leaked into the window: {cmp:?}");
}

#[test]
fn disturbance_tracks_the_exact_injection_instant() {
    // Section 4.1: the designer specifies "the exact injection time (and
    // not only the injection cycle)". The flow honours it: the onset of the
    // disturbance follows the injection instant at sub-cycle resolution,
    // and a locked (time-invariant) loop responds with the same magnitude.
    let golden = run_pll(&fast_pll(), Time::from_us(30));
    let mut peaks = Vec::new();
    for offset_ns in [0i64, 37, 81, 143] {
        let pulse = TrapezoidPulse::from_ma_ps(10.0, 100, 300, 500).unwrap();
        let at = Time::from_us(20) + Time::from_ns(offset_ns);
        let faulty = run_pll(&fast_pll().with_fault(pulse, at), Time::from_us(30));
        let dev = measure::deviation(
            golden.analog(names::VCTRL).unwrap(),
            faulty.analog(names::VCTRL).unwrap(),
            Time::from_us(19),
            Time::from_us(30),
            0.01,
        );
        let onset = dev.onset.expect("strike must disturb");
        let lag = onset - at;
        assert!(
            lag >= Time::ZERO && lag < Time::from_ns(20),
            "onset {onset} does not track injection at {at}"
        );
        peaks.push(dev.peak);
    }
    // Time-invariance of the locked loop: same pulse, same peak response.
    let min = peaks.iter().cloned().fold(f64::MAX, f64::min);
    let max = peaks.iter().cloned().fold(f64::MIN, f64::max);
    assert!(max / min < 1.2, "implausible spread: {peaks:?}");
}

#[test]
fn locked_fout_periods_are_uniform() {
    let trace = run_pll(&fast_pll(), Time::from_us(25));
    let periods: Vec<Time> = measure::periods(trace.digital(names::F_OUT).unwrap())
        .into_iter()
        .filter(|&(start, _)| start >= Time::from_us(20))
        .map(|(_, p)| p)
        .collect();
    assert!(periods.len() > 100);
    let mean_ns: f64 = periods.iter().map(|p| p.as_ns_f64()).sum::<f64>() / periods.len() as f64;
    assert!((mean_ns - 20.0).abs() < 0.05, "mean period {mean_ns} ns");
    for p in &periods {
        assert!(
            (*p - Time::from_ns(20)).abs() < Time::from_ns(1),
            "period {p} far from 20 ns"
        );
    }
}

#[test]
fn analog_recording_is_dense_enough_for_comparison() {
    // The adaptive trace recording must not decimate away the fault
    // transient: the faulty trace must contain samples within the pulse
    // response.
    let pulse = TrapezoidPulse::from_ma_ps(10.0, 100, 300, 500).unwrap();
    let at = Time::from_us(20);
    let faulty = run_pll(&fast_pll().with_fault(pulse, at), Time::from_us(22));
    let vctrl = faulty.analog(names::VCTRL).unwrap();
    let in_window = vctrl
        .samples()
        .iter()
        .filter(|(t, _)| *t >= at && *t <= at + Time::from_us(1))
        .count();
    assert!(
        in_window >= 10,
        "only {in_window} samples in the first microsecond after the strike"
    );
}

#[test]
fn pll_trace_exports_to_well_formed_vcd() {
    use amsfi_faults::TrapezoidPulse;
    let pulse = TrapezoidPulse::from_ma_ps(10.0, 100, 300, 500).unwrap();
    let trace = run_pll(
        &fast_pll().with_fault(pulse, Time::from_us(10)),
        Time::from_us(15),
    );
    let vcd = amsfi_waves::vcd::to_vcd(&trace, "integration");
    assert!(vcd.contains("$timescale 1 fs $end"));
    assert!(vcd.contains("$enddefinitions $end"));
    // Both domains appear: the digital clock as a wire, vctrl as a real.
    assert!(vcd.contains(" f_out $end"));
    assert!(vcd.contains("$var real 64"));
    assert!(vcd.contains(" vctrl $end"));
    // Time stamps are monotone.
    let mut last = -1i64;
    for line in vcd.lines() {
        if let Some(stamp) = line.strip_prefix('#') {
            let t: i64 = stamp.parse().expect("numeric timestamp");
            assert!(t >= last, "timestamps must be monotone");
            last = t;
        }
    }
    assert!(last > 0, "some changes recorded");
    // Substantial content: thousands of clock edges over 15 us.
    assert!(vcd.lines().count() > 1_000);
}
