//! Shared helpers for the `amsfi` integration test suite.

use amsfi_circuits::pll;
use amsfi_waves::{Time, Trace};

/// Builds, monitors and runs a PLL bench to `t_end`, returning its trace.
///
/// # Panics
///
/// Panics if the simulation reports an error.
pub fn run_pll(config: &pll::PllConfig, t_end: Time) -> Trace {
    let mut bench = pll::build(config);
    bench.monitor_standard();
    bench.run_until(t_end).expect("pll simulation");
    bench.trace()
}

/// The fast-locking PLL configuration used throughout the integration tests.
pub fn fast_pll() -> pll::PllConfig {
    pll::PllConfig::fast()
}
