//! Evaluate an FSM hardening decision with the digital flow: compare the
//! SEU sensitivity of a plain sequence-detector FSM against a variant with
//! a self-recovering (safe-state) transition table — the "validate the
//! efficiency of the implemented mechanisms" use case of the paper's
//! introduction.
//!
//! ```text
//! cargo run --release -p amsfi-examples --bin digital_fsm_hardening
//! ```

use amsfi_core::{plan, run_campaign, ClassifySpec, FaultCase, FaultClass};
use amsfi_digital::{cells, Netlist, Simulator};
use amsfi_waves::{Logic, Time};

/// A 4-state "detect three ones in a row" Moore machine.
///
/// With `recovering = false`, unreachable (corrupted) states are absorbing:
/// state 3 loops on itself whatever the input — a design whose encoding
/// wastes the fourth state. With `recovering = true`, every state (including
/// the spare one) routes back into the live set on a zero input.
fn detector(recovering: bool) -> cells::Fsm {
    // States: 0 = idle, 1 = one seen, 2 = two seen, 3 = spare.
    // Transitions indexed [state][input].
    let spare_on_zero = if recovering { 0 } else { 3 };
    let spare_on_one = if recovering { 1 } else { 3 };
    cells::Fsm::new(
        4,
        1,
        1,
        vec![
            0,
            1, // state 0
            0,
            2, // state 1
            0,
            2, // state 2 (output fires here)
            spare_on_zero,
            spare_on_one, // state 3: absorbing or recovering
        ],
        vec![0, 0, 1, 0],
        Time::ZERO,
    )
    .expect("valid table")
}

fn build(recovering: bool) -> (Simulator, amsfi_digital::ComponentId) {
    let mut net = Netlist::new();
    let clk = net.signal("clk", 1);
    let rst = net.signal("rst", 1);
    let din = net.signal("din", 1);
    let out = net.signal("out", 1);
    let state = net.signal("state", 2);
    net.add("ck", cells::ClockGen::new(Time::from_ns(10)), &[], &[clk]);
    net.add("r", cells::ConstVector::bit(Logic::Zero), &[], &[rst]);
    // Stimulus pattern with plenty of zeros, so a recovering FSM can heal.
    net.add(
        "lfsr",
        cells::Lfsr::new(1, 1, 1, Time::ZERO),
        &[clk],
        &[din],
    );
    let fsm = net.add("fsm", detector(recovering), &[clk, rst, din], &[out, state]);
    let mut sim = Simulator::new(net);
    sim.monitor_name("out");
    (sim, fsm)
}

fn campaign(recovering: bool) -> Result<[usize; 4], amsfi_core::RunError> {
    let t_end = Time::from_us(2);
    let spec = ClassifySpec::new((Time::ZERO, t_end), vec!["out".to_owned()]);
    // Flip each state bit at each of 20 injection instants, plus force the
    // spare state directly (the erroneous-transition model of [11]).
    let times = plan::uniform_times(Time::from_ns(100), Time::from_us(1), 20);
    let mut cases = Vec::new();
    for (ti, at) in times.iter().enumerate() {
        for bit in 0..2 {
            cases.push(FaultCase::new(format!("state[{bit}] t{ti}"), *at));
        }
        cases.push(FaultCase::new(format!("force-spare t{ti}"), *at));
    }
    let result = run_campaign(&spec, cases, |case| {
        let (mut sim, fsm) = build(recovering);
        if let Some(i) = case {
            let (ti, kind) = (i / 3, i % 3);
            sim.run_until(times[ti])?;
            match kind {
                0 | 1 => sim.flip_state(fsm, kind),
                _ => sim.force_state(fsm, 3),
            }
        }
        sim.run_until(t_end)?;
        Ok(sim.into_trace())
    })?;
    let summary = result.summary();
    Ok([summary[0].1, summary[1].1, summary[2].1, summary[3].1])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("SEU campaign over the detector FSM, 60 faults per variant:\n");
    println!(
        "{:<22} {:>10} {:>8} {:>10} {:>9}",
        "variant", "no-effect", "latent", "transient", "failure"
    );
    let plain = campaign(false)?;
    let hardened = campaign(true)?;
    for (name, s) in [
        ("absorbing spare state", plain),
        ("recovering spare state", hardened),
    ] {
        println!(
            "{:<22} {:>10} {:>8} {:>10} {:>9}",
            name, s[0], s[1], s[2], s[3]
        );
    }
    let _ = FaultClass::Failure; // (class order documented in amsfi-core)
    println!(
        "\nThe recovering transition table turns the absorbing-state failures\n\
         into transients: the early analysis quantifies the benefit of the\n\
         hardening before any gate-level design exists."
    );
    assert!(
        hardened[3] < plain[3],
        "hardening must reduce failures ({} vs {})",
        hardened[3],
        plain[3]
    );
    Ok(())
}
