//! Compare how a flash ADC responds to input-referred current strikes of
//! increasing charge — a miniature of the paper's future-work experiment on
//! converters with both analog and digital circuitry.
//!
//! ```text
//! cargo run --release -p amsfi-examples --bin adc_sensitivity
//! ```

use amsfi_circuits::adc::{self, AdcInput};
use amsfi_faults::{PulseShape, TrapezoidPulse};
use amsfi_waves::{compare_digital, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = adc::FlashAdcConfig {
        input: AdcInput::Dc(2.2), // mid code 3 on the 3-bit scale
        ..adc::FlashAdcConfig::default()
    };
    let t_end = Time::from_us(5);

    // Golden run.
    let mut golden = adc::build_flash(&base);
    golden.mixed.digital_mut().monitor_name(adc::FLASH_CODE);
    golden.mixed.run_until(t_end)?;
    let golden_trace = golden.mixed.merged_trace();

    println!("flash ADC, DC input 2.2 V (code 3); strike at 2.96 us, width 200 ns:");
    println!(
        "{:>10} {:>10} {:>16} {:>14}",
        "PA [mA]", "Q [pC]", "code disturbed?", "mismatch time"
    );

    // Sweep the strike amplitude: small strikes vanish below the LSB,
    // large ones corrupt the sampled code.
    for pa_ma in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let pulse = TrapezoidPulse::from_ma_ps(pa_ma, 100, 100, 200_000)?;
        let charge = pulse.charge();
        // Place the strike across a sampling edge (edges at 50 + k*100 ns).
        let cfg = base.clone().with_fault(pulse, Time::from_ns(2_960));
        let mut bench = adc::build_flash(&cfg);
        bench.mixed.digital_mut().monitor_name(adc::FLASH_CODE);
        bench.mixed.run_until(t_end)?;
        let faulty_trace = bench.mixed.merged_trace();

        let mut total = Time::ZERO;
        let mut any = false;
        for bit in 0..3 {
            let name = format!("{}[{bit}]", adc::FLASH_CODE);
            let cmp = compare_digital(
                golden_trace.digital(&name).expect("monitored"),
                faulty_trace.digital(&name).expect("monitored"),
                Time::from_us(1),
                t_end,
                Time::from_ns(100),
            );
            any |= !cmp.is_match();
            total += cmp.total_mismatch();
        }
        println!(
            "{:>10.1} {:>10.2} {:>16} {:>14}",
            pa_ma,
            charge * 1e12,
            if any { "yes" } else { "no" },
            total.to_string()
        );
    }
    println!(
        "\nThe threshold sits where the strike's voltage excursion (PA x R_inj\n\
         = PA x 100 ohm) crosses the distance to the next comparator level —\n\
         the converter's analog sensitivity profile."
    );
    Ok(())
}
