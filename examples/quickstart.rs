//! Quickstart: inject the paper's reference SEU current pulse into the PLL
//! and watch the consequences — the whole flow in ~40 lines.
//!
//! ```text
//! cargo run --release -p amsfi-examples --bin quickstart
//! ```

use amsfi_circuits::pll::{self, names};
use amsfi_faults::{PulseShape, TrapezoidPulse};
use amsfi_waves::{measure, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The fault: the paper's reference current spike —
    //    PA = 10 mA, RT = 100 ps, FT = 300 ps, PW = 500 ps.
    let pulse = TrapezoidPulse::from_ma_ps(10.0, 100, 300, 500)?;
    let strike_at = Time::from_us(20);

    // 2. The circuit: the Fig. 5 PLL (fast-locking variant), with the
    //    saboteur on the loop-filter input armed with our pulse.
    let golden_cfg = pll::PllConfig::fast();
    let faulty_cfg = golden_cfg.clone().with_fault(pulse, strike_at);

    // 3. Run both: a golden (fault-free) reference and the faulty circuit.
    let mut traces = Vec::new();
    for cfg in [&golden_cfg, &faulty_cfg] {
        let mut bench = pll::build(cfg);
        bench.monitor_standard();
        bench.run_until(Time::from_us(40))?;
        traces.push(bench.trace());
    }
    let (golden, faulty) = (&traces[0], &traces[1]);

    // 4. Measure the consequences on the VCO control voltage...
    let deviation = measure::deviation(
        golden.analog(names::VCTRL).expect("monitored"),
        faulty.analog(names::VCTRL).expect("monitored"),
        strike_at - Time::from_us(1),
        Time::from_us(40),
        0.01,
    );
    println!(
        "VCO input: peak deviation {:.1} mV, perturbed for {} \
         ({}x the {} pulse)",
        deviation.peak * 1e3,
        deviation.duration(),
        deviation.duration() / pulse.support(),
        pulse.support(),
    );

    // 5. ...and on the generated 50 MHz clock.
    let (cycles, worst) = measure::perturbed_cycles(
        faulty.digital(names::F_OUT).expect("monitored"),
        strike_at - Time::from_us(1),
        Time::from_us(40),
        Time::from_ns(20),
        Time::from_ps(100),
    );
    println!(
        "Generated clock: {cycles} perturbed cycles, worst period {}",
        worst.map_or("-".to_owned(), |w| w.to_string())
    );

    // 6. Dump the faulty run for a waveform viewer.
    std::fs::write(
        "quickstart_faulty.vcd",
        amsfi_waves::vcd::to_vcd(faulty, "quickstart faulty PLL run"),
    )?;
    println!("Wrote quickstart_faulty.vcd (open with GTKWave).");
    Ok(())
}
