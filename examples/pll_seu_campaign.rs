//! A complete mixed-signal fault-injection campaign on the PLL: current
//! pulses of varying charge on the analog filter input *and* SEU bit-flips
//! in the digital blocks, classified against a golden run — the "global
//! flow" of the paper end to end.
//!
//! ```text
//! cargo run --release -p amsfi-examples --bin pll_seu_campaign
//! ```

use amsfi_circuits::pll::{self, names};
use amsfi_core::{plan, report, run_campaign_parallel, ClassifySpec, FaultCase};
use amsfi_waves::{Time, Tolerance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = pll::PllConfig::fast();
    config.payload = true;
    let t_end = Time::from_us(30);

    // --- fault list -------------------------------------------------------
    // Analog: a pulse-parameter grid on the filter input (Section 4.1: the
    // designer gives "the range of the parameters for the pulse
    // specification and the injection times").
    let pulses = plan::pulse_grid(&[2.0, 10.0], &[100], &[300], &[500, 1_500]);
    let times = plan::random_times(Time::from_us(12), Time::from_us(16), 3, 2004);
    // Digital: every memorised bit of the PFD, divider and payload.
    let targets = pll::build(&config).mixed.digital().mutant_targets();

    #[derive(Clone)]
    enum Plan {
        Pulse(usize, usize),
        Seu(usize, usize),
    }
    let mut cases = Vec::new();
    let mut plans = Vec::new();
    for (pi, p) in pulses.iter().enumerate() {
        for (ti, &at) in times.iter().enumerate() {
            cases.push(FaultCase::new(format!("analog: icp {p}"), at));
            plans.push(Plan::Pulse(pi, ti));
        }
    }
    for (gi, t) in targets.iter().enumerate() {
        for (ti, &at) in times.iter().enumerate() {
            cases.push(FaultCase::new(format!("digital: {t}"), at));
            plans.push(Plan::Seu(gi, ti));
        }
    }
    println!(
        "campaign: {} analog + {} digital = {} fault cases",
        pulses.len() * times.len(),
        targets.len() * times.len(),
        cases.len()
    );

    // --- classification spec ----------------------------------------------
    let mut outputs: Vec<String> = (0..8).map(|i| format!("{}[{i}]", names::COUNT)).collect();
    outputs.push(names::SHIFT_OUT.to_owned());
    let spec = ClassifySpec::new((Time::from_us(12), t_end), outputs)
        .with_internals(vec![names::VCTRL.to_owned(), names::FB.to_owned()])
        .with_tolerance(Tolerance::new(0.05, 0.01))
        // Sub-2-ns edge displacement on the 20 ns payload clock is residual
        // phase skew, not an error; a genuinely lost or gained count cycle
        // displaces edges by a full period and still registers.
        .with_digital_skew(Time::from_ns(2));

    // --- run (parallel over all cores) -------------------------------------
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let started = std::time::Instant::now();
    let result = run_campaign_parallel(&spec, cases, workers, |case| {
        let mut cfg = config.clone();
        let mut seu = None;
        if let Some(i) = case {
            match plans[i] {
                Plan::Pulse(pi, ti) => cfg = cfg.with_fault(pulses[pi], times[ti]),
                Plan::Seu(gi, ti) => seu = Some((gi, ti)),
            }
        }
        let mut bench = pll::build(&cfg);
        bench.monitor_standard();
        if let Some((gi, ti)) = seu {
            bench.run_until(times[ti])?;
            let t = &targets[gi];
            bench.mixed.digital_mut().flip_state(t.component, t.bit);
        }
        bench.run_until(t_end)?;
        Ok(bench.trace())
    })?;
    println!(
        "completed on {workers} workers in {:?}\n",
        started.elapsed()
    );

    // --- reports ------------------------------------------------------------
    println!("{}", report::summary_table(&result));
    println!("{}", report::per_target_table(&result));
    Ok(())
}
